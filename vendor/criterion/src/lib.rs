//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the `e*` benches in
//! `crates/bench` link against this vendored harness. It keeps the same
//! surface — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with a much simpler measurement model:
//!
//! * Run under `cargo bench` (the harness receives `--bench`), each
//!   benchmark is calibrated once, then timed for `sample_size` samples
//!   and reported as `min / median / max` ns per iteration on stdout.
//! * Run under `cargo test` (no `--bench` argument), each benchmark body
//!   executes exactly once as a smoke test and nothing is printed, so the
//!   tier-1 test suite stays fast.
//!
//! There are no plots, no statistics beyond the median, and no baseline
//! comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measure: false, sample_size: 20 }
    }
}

impl Criterion {
    /// Reads the harness mode from the process arguments: `cargo bench`
    /// passes `--bench`, which switches measurement on.
    pub fn configure_from_args(mut self) -> Self {
        self.measure = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(&id.into_benchmark_id(), sample_size, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, id: &str, sample_size: usize, f: F) {
        let mut bencher = Bencher { measure: self.measure, sample_size, stats: None };
        f(&mut bencher);
        if let Some(s) = bencher.stats {
            println!(
                "{id:<60} median {:>12.0} ns/iter (min {:.0} .. max {:.0})",
                s.median_ns, s.min_ns, s.max_ns
            );
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, |b| f(b));
        self
    }

    /// Runs a benchmark in this group, passing `input` through to the
    /// closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, n, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration timing. In smoke
    /// mode (`cargo test`) it runs `f` exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.measure {
            black_box(f());
            return;
        }
        // Calibrate: aim for samples of at least ~2ms so Instant
        // granularity stays negligible for sub-microsecond bodies.
        let start = Instant::now();
        black_box(f());
        let once_ns = start.elapsed().as_nanos().max(1);
        let iters = (Duration::from_millis(2).as_nanos() / once_ns).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.stats = Some(Stats {
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            max_ns: samples[samples.len() - 1],
        });
    }
}

/// A benchmark identifier: a function name, optionally parameterised.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion into the string form of a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion::default(); // measure = false
        let mut runs = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group
                .bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| b.iter(|| runs += x - 6));
            group.finish();
        }
        assert_eq!(runs, 2);
    }

    #[test]
    fn measure_mode_produces_ordered_stats() {
        let mut c = Criterion { measure: true, sample_size: 3 };
        let mut bencher = Bencher { measure: true, sample_size: 3, stats: None };
        let mut acc = 0u64;
        bencher.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        let s = bencher.stats.expect("stats recorded");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.min_ns > 0.0);
        // silence unused warnings through the public path too
        c.bench_function("noop", |b| b.iter(|| ()));
    }
}
