//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the property tests
//! run against this vendored harness instead of upstream proptest. It
//! keeps the same surface the tests are written against — the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! attribute, `prop_assert!`/`prop_assert_eq!`, integer-range and tuple
//! strategies, [`collection::vec`], [`sample::select`],
//! [`sample::subsequence`], [`strategy::Just`], and `prop_map` — with two
//! deliberate simplifications:
//!
//! * **No shrinking.** A failing case panics with its values' `Debug`
//!   output; cases are seeded deterministically from the test's module
//!   path, so every failure reproduces exactly under `cargo test`.
//! * **String "regex" strategies are approximate.** A `&str` strategy
//!   generates unstructured character soup rather than matching the
//!   pattern; the only pattern in use (`"\\PC*"`) wants exactly that.
//!
//! Case counts honour `ProptestConfig { cases }` and the
//! `PROPTEST_CASES` environment variable.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range_i128(self.start as i128, self.end as i128 - 1)
                        as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range_i128(*self.start() as i128, *self.end() as i128)
                        as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Characters the `&str` strategy draws from: ASCII identifier and
    /// punctuation characters the parsers care about, plus whitespace and a
    /// few multi-byte code points to exercise UTF-8 handling.
    const STR_POOL: &[char] = &[
        'a', 'b', 'p', 'q', 'z', 'A', 'X', 'Y', 'Z', '0', '1', '7', '9', '(', ')', ',', '.', ':',
        '-', '?', '_', '%', '=', '&', '"', '\'', ' ', '\t', '\n', '±', 'λ', '素', '🦀',
    ];

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.gen_range_i128(0, 48) as usize;
            (0..len)
                .map(|_| STR_POOL[rng.gen_range_i128(0, STR_POOL.len() as i128 - 1) as usize])
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        pub(crate) fn pick(self, rng: &mut TestRng) -> usize {
            rng.gen_range_i128(self.min as i128, self.max as i128) as usize
        }

        pub(crate) fn clamp_to(self, limit: usize) -> SizeRange {
            SizeRange { min: self.min.min(limit), max: self.max.min(limit) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for `Vec`s whose length lies in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding one element of `items`, uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range_i128(0, self.items.len() as i128 - 1) as usize;
            self.items[i].clone()
        }
    }

    /// A strategy yielding an order-preserving subsequence of `items`
    /// whose length lies in `size`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence { size: size.into().clamp_to(items.len()), items }
    }

    /// Strategy returned by [`subsequence`].
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let count = self.size.pick(rng);
            let mut chosen: Vec<usize> = Vec::with_capacity(count);
            while chosen.len() < count {
                let i = rng.gen_range_i128(0, self.items.len() as i128 - 1) as usize;
                if !chosen.contains(&i) {
                    chosen.push(i);
                }
            }
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration. Only `cases` is honoured; the remaining
    /// fields exist so `ProptestConfig { cases, ..Default::default() }`
    /// struct-update syntax from upstream-flavoured tests compiles.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; failures always print their inputs.
        pub verbose: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases, max_shrink_iters: 0, verbose: 0 }
        }
    }

    /// A failed `prop_assert!`-style check.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-case random source handed to strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        fn new(seed: u64) -> Self {
            TestRng { inner: StdRng::seed_from_u64(seed) }
        }

        /// Draws uniformly from the inclusive range `[lo, hi]`.
        pub fn gen_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
            assert!(lo <= hi, "empty range");
            let width = (hi - lo) as u128 + 1;
            lo + (self.inner.next_u64() as u128 % width) as i128
        }
    }

    /// Drives the cases of one property.
    pub struct TestRunner {
        config: ProptestConfig,
        seed_base: u64,
    }

    impl TestRunner {
        /// Creates a runner whose case seeds derive from `name`, so each
        /// property sees a distinct but reproducible stream.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner { config, seed_base: h }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The random source for case number `case`.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::new(self.seed_base ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `cases` generated
/// inputs. An optional leading `#![proptest_config(expr)]` overrides the
/// configuration for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut proptest_case_rng = runner.rng_for_case(case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_case_rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!(
                        "proptest {}: case {} of {} failed: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current proptest case (by early-returning an error) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current proptest case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn ranges_stay_in_bounds(n in 3u32..17, m in -4i64..=4) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-4..=4).contains(&m));
        }

        #[test]
        fn vec_sizes_honour_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn subsequence_preserves_order(
            s in crate::sample::subsequence(vec![0usize, 1, 2, 3], 1..=4)
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        }

        #[test]
        fn prop_map_and_tuples_compose(
            (a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x + 1, y + 1))
        ) {
            prop_assert!((1..=10).contains(&a) && (1..=10).contains(&b));
        }

        #[test]
        fn just_yields_its_value(x in Just(41usize)) {
            prop_assert_eq!(x, 41);
        }
    }

    #[test]
    fn same_seed_means_same_cases() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::new(ProptestConfig::default(), "fixed");
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let a: Vec<Vec<u64>> =
            (0..10).map(|c| strat.generate(&mut runner.rng_for_case(c))).collect();
        let b: Vec<Vec<u64>> =
            (0..10).map(|c| strat.generate(&mut runner.rng_for_case(c))).collect();
        assert_eq!(a, b);
    }
}
