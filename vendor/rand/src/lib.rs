//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the few entry points `sepra-gen` actually calls: `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `SliceRandom::shuffle`. The generator
//! is SplitMix64 — deterministic, seedable, and statistically adequate for
//! workload generation. Its output stream intentionally makes no attempt to
//! match upstream `StdRng`; every consumer in this repo only requires
//! *stable* seeded sequences, not rand-compatible ones.

use core::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed element of the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called on an empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called on an empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Permutes the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
