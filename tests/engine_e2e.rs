//! End-to-end tests of the query processor: strategy agreement across
//! fixture programs, fallbacks, cyclic data, and the Lemma 2.1 path.

use separable::{QueryProcessor, Strategy, StrategyChoice};

/// Builds a processor from program+fact text.
fn processor(src: &str) -> QueryProcessor {
    let mut qp = QueryProcessor::new();
    qp.load(src).expect("fixture loads");
    qp
}

/// Runs `query` under every strategy in `strategies` and asserts identical
/// answer sets (compared as rendered, order-insensitive relations).
fn assert_agreement(src: &str, query: &str, strategies: &[Strategy]) {
    let mut reference: Option<Vec<String>> = None;
    for &strategy in strategies {
        let mut qp = processor(src);
        let result = qp
            .query_with(query, StrategyChoice::Force(strategy))
            .unwrap_or_else(|e| panic!("{strategy} on {query}: {e}"));
        let mut rendered: Vec<String> =
            result.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
        rendered.sort();
        match &reference {
            None => reference = Some(rendered),
            Some(expected) => {
                assert_eq!(&rendered, expected, "{strategy} disagrees on {query}\nprogram:\n{src}")
            }
        }
    }
}

const ALL: &[Strategy] = &[
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::Counting,
    Strategy::HenschenNaqvi,
    Strategy::SemiNaive,
    Strategy::Naive,
];

const NO_COUNTING: &[Strategy] = &[
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::SemiNaive,
    Strategy::Naive,
];

#[test]
fn agreement_on_acyclic_buys_fixtures() {
    let one_class = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                     buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                     buys(X, Y) :- perfectFor(X, Y).\n\
                     friend(tom, sue). friend(sue, joe). idol(tom, liz). idol(liz, joe).\n\
                     perfectFor(joe, widget). perfectFor(liz, tonic). perfectFor(sue, book).\n";
    assert_agreement(one_class, "buys(tom, Y)?", ALL);
    assert_agreement(one_class, "buys(liz, Y)?", ALL);
    assert_agreement(one_class, "buys(nobody, Y)?", ALL);
    assert_agreement(one_class, "buys(X, widget)?", NO_COUNTING);
    assert_agreement(one_class, "buys(tom, tonic)?", NO_COUNTING);
}

#[test]
fn agreement_on_two_class_fixture() {
    let two_class = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                     buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                     buys(X, Y) :- perfectFor(X, Y).\n\
                     friend(tom, sue). friend(sue, joe).\n\
                     perfectFor(joe, widget). perfectFor(tom, yacht).\n\
                     cheaper(bargain, widget). cheaper(steal, bargain). cheaper(dinghy, yacht).\n";
    assert_agreement(two_class, "buys(tom, Y)?", ALL);
    assert_agreement(two_class, "buys(X, steal)?", NO_COUNTING);
    assert_agreement(two_class, "buys(sue, dinghy)?", NO_COUNTING);
}

#[test]
fn agreement_on_cyclic_data() {
    let cyclic = "t(X, Y) :- e(X, W), t(W, Y).\n\
                  t(X, Y) :- e(X, Y).\n\
                  e(a, b). e(b, c). e(c, a). e(c, d).\n";
    // Counting correctly refuses cyclic data, so exclude it.
    assert_agreement(cyclic, "t(a, Y)?", NO_COUNTING);
    assert_agreement(cyclic, "t(X, d)?", NO_COUNTING);
    assert_agreement(cyclic, "t(a, a)?", NO_COUNTING);
}

#[test]
fn agreement_on_partial_selection() {
    let prog = "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
                t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
                t(X, Y, Z) :- t0(X, Y, Z).\n\
                a(c, d, e, f). a(e, f, g, h). a(c, x, e, f).\n\
                t0(g, h, w0). t0(e, f, w1). t0(c, d, w2).\n\
                b(w0, w3). b(w1, w4). b(w3, w5).\n";
    // Partial: binds one of the two e1 columns -> Lemma 2.1 path.
    assert_agreement(prog, "t(c, Y, Z)?", NO_COUNTING);
    assert_agreement(prog, "t(X, d, Z)?", NO_COUNTING);
    // Full selections for completeness.
    assert_agreement(prog, "t(c, d, Z)?", NO_COUNTING);
    assert_agreement(prog, "t(X, Y, w5)?", NO_COUNTING);
}

#[test]
fn multi_atom_bodies_agree() {
    // Rules whose nonrecursive part is a chain of two atoms.
    let prog = "reach(X, Y) :- hop(X, M), hop2(M, W), reach(W, Y).\n\
                reach(X, Y) :- base(X, Y).\n\
                hop(a, m1). hop2(m1, b). hop(b, m2). hop2(m2, c).\n\
                base(c, goal). base(a, start).\n";
    assert_agreement(prog, "reach(a, Y)?", ALL);
}

#[test]
fn multiple_exit_rules_agree() {
    let prog = "t(X, Y) :- e(X, W), t(W, Y).\n\
                t(X, Y) :- base1(X, Y).\n\
                t(X, Y) :- base2(Y, X).\n\
                e(a, b). e(b, c).\n\
                base1(c, win). base2(prize, b).\n";
    assert_agreement(prog, "t(a, Y)?", NO_COUNTING);
    assert_agreement(prog, "t(X, prize)?", NO_COUNTING);
}

#[test]
fn nonseparable_falls_back_to_magic() {
    let mut qp = processor(
        "sg(X, Y) :- flat(X, Y).\n\
         sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
         up(a, p). up(b, q). flat(p, q). down(q, b2).\n",
    );
    let r = qp.query("sg(a, Y)?").unwrap();
    assert_eq!(r.strategy, Strategy::MagicSets);
    assert_eq!(r.answers.len(), 1);
    // And the explanation names the violated condition.
    let text = qp.explain("sg(a, Y)?").unwrap();
    assert!(text.contains("not a separable recursion"), "{text}");
}

#[test]
fn shifting_variables_fall_back() {
    // t(X, Y) :- a(X, W), t(Y, W) shifts Y: not separable.
    let mut qp = processor(
        "t(X, Y) :- a(X, W), t(Y, W).\n\
         t(X, Y) :- e(X, Y).\n\
         a(u, k). e(v, k). e(u, z).\n",
    );
    let r = qp.query("t(u, Y)?").unwrap();
    assert_eq!(r.strategy, Strategy::MagicSets);
    // Semi-naive agrees.
    let mut qp2 = processor(
        "t(X, Y) :- a(X, W), t(Y, W).\n\
         t(X, Y) :- e(X, Y).\n\
         a(u, k). e(v, k). e(u, z).\n",
    );
    let r2 = qp2.query_with("t(u, Y)?", StrategyChoice::Force(Strategy::SemiNaive)).unwrap();
    assert_eq!(r.answers.len(), r2.answers.len());
}

#[test]
fn deep_chain_is_fast_and_linear() {
    let mut src = String::from(
        "t(X, Y) :- e(X, W), t(W, Y).\n\
         t(X, Y) :- e(X, Y).\n",
    );
    for i in 0..2000 {
        src.push_str(&format!("e(n{i}, n{}).\n", i + 1));
    }
    let mut qp = processor(&src);
    let r = qp.query("t(n0, Y)?").unwrap();
    assert_eq!(r.strategy, Strategy::Separable);
    assert_eq!(r.answers.len(), 2000);
    assert!(r.stats.max_relation_size() <= 2001);
}

#[test]
fn separable_handles_queries_with_both_columns_bound() {
    let prog = "t(X, Y) :- e(X, W), t(W, Y).\n\
                t(X, Y) :- e(X, Y).\n\
                e(a, b). e(b, c).\n";
    assert_agreement(prog, "t(a, c)?", NO_COUNTING);
    assert_agreement(prog, "t(a, missing)?", NO_COUNTING);
}

#[test]
fn three_ary_persistent_selections() {
    // Two persistent columns: binding one, both, or a persistent column
    // plus a class column must all agree with the general algorithms.
    let prog = "t(X, Y, Z) :- e(X, W), t(W, Y, Z).\n\
                t(X, Y, Z) :- t0(X, Y, Z).\n\
                e(a, b). e(b, c). e(z, a).\n\
                t0(c, p1, q1). t0(b, p1, q2). t0(c, p2, q1).\n";
    assert_agreement(prog, "t(X, p1, Z)?", NO_COUNTING);
    assert_agreement(prog, "t(X, p1, q1)?", NO_COUNTING);
    assert_agreement(prog, "t(a, p2, Z)?", NO_COUNTING);
    assert_agreement(prog, "t(a, Y, Z)?", NO_COUNTING);
}

#[test]
fn partial_selection_with_support_predicates() {
    // The Lemma 2.1 decomposition must see materialized non-recursive IDB
    // base predicates in both branches.
    let prog = "link(X, Y, U, V) :- raw(X, Y, U, V).\n\
                t(X, Y, Z) :- link(X, Y, U, V), t(U, V, Z).\n\
                t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
                t(X, Y, Z) :- t0(X, Y, Z).\n\
                raw(c, d, e, f). raw(e, f, g, h).\n\
                t0(g, h, w0). t0(e, f, w1).\n\
                b(w0, w2). b(w1, w3).\n";
    let mut qp = processor(prog);
    let r = qp.query("t(c, Y, Z)?").unwrap();
    assert_eq!(r.strategy, Strategy::Separable);
    let mut qp2 = processor(prog);
    let r2 = qp2.query_with("t(c, Y, Z)?", StrategyChoice::Force(Strategy::SemiNaive)).unwrap();
    assert_eq!(r.answers.len(), r2.answers.len());
    assert!(!r.answers.is_empty());
}

#[test]
fn width_two_phase_two_class() {
    // Class {0} drives phase 1; class {1,2} (width 2) is traversed upward
    // in phase 2 through a 4-ary base predicate.
    let prog = "t(A, B, C) :- e(A, A2), t(A2, B, C).\n\
                t(A, B, C) :- t(A, B2, C2), f(B, C, B2, C2).\n\
                t(A, B, C) :- t0(A, B, C).\n\
                e(a, b). e(b, c).\n\
                t0(c, m0, n0). t0(b, m1, n1).\n\
                f(m2, n2, m0, n0). f(m3, n3, m2, n2). f(m4, n4, m1, n1).\n";
    assert_agreement(prog, "t(a, Y, Z)?", NO_COUNTING);
    assert_agreement(prog, "t(X, m2, n2)?", NO_COUNTING);
    assert_agreement(prog, "t(X, m2, Z)?", NO_COUNTING); // partial on {1,2}
}

#[test]
fn cartesian_guard_rules_agree() {
    // A rule whose nonrecursive body shares nothing with t (empty-column
    // class): semantically a guard; it must not disturb evaluation.
    let prog = "t(X, Y) :- enabled(F), t(X, Y).\n\
                t(X, Y) :- e(X, W), t(W, Y).\n\
                t(X, Y) :- t0(X, Y).\n\
                enabled(yes). e(a, b). t0(b, goal).\n";
    assert_agreement(prog, "t(a, Y)?", NO_COUNTING);
    assert_agreement(prog, "t(X, goal)?", NO_COUNTING);
}

#[test]
fn repeated_query_variables() {
    let prog = "t(X, Y) :- e(X, W), t(W, Y).\n\
                t(X, Y) :- e(X, Y).\n\
                e(a, b). e(b, a). e(b, b).\n";
    // t(a, a)? and the loops: repeated variables apply after evaluation.
    assert_agreement(prog, "t(a, a)?", NO_COUNTING);
}
