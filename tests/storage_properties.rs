//! Property tests for the storage substrate: relation set semantics,
//! insertion-order stability, index/linear-scan agreement, and value
//! round-trips.

use proptest::prelude::*;

use separable::ast::Sym;
use separable::storage::index::Index;
use separable::storage::relation::Relation;
use separable::storage::tuple::Tuple;
use separable::storage::value::{Value, INT_MIN};
use separable::storage::Database;

fn tuple2(a: u32, b: u32) -> Tuple {
    Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b))])
}

proptest! {
    /// Relation behaves as a set: size, membership, and idempotent insert
    /// all agree with a reference BTreeSet.
    #[test]
    fn relation_matches_reference_set(pairs in proptest::collection::vec((0u32..30, 0u32..30), 0..200)) {
        let mut relation = Relation::new(2);
        let mut reference = std::collections::BTreeSet::new();
        for &(a, b) in &pairs {
            let was_new = relation.insert(tuple2(a, b));
            let ref_new = reference.insert((a, b));
            prop_assert_eq!(was_new, ref_new);
            prop_assert_eq!(relation.len(), reference.len());
        }
        for &(a, b) in &pairs {
            prop_assert!(relation.contains(&tuple2(a, b)));
        }
        prop_assert!(!relation.contains(&tuple2(99, 99)));
    }

    /// Insertion order is first-occurrence order.
    #[test]
    fn relation_preserves_first_occurrence_order(pairs in proptest::collection::vec((0u32..10, 0u32..10), 0..100)) {
        let mut relation = Relation::new(2);
        let mut expected = Vec::new();
        for &(a, b) in &pairs {
            if relation.insert(tuple2(a, b)) {
                expected.push((a, b));
            }
        }
        let got: Vec<(u32, u32)> = relation
            .iter()
            .map(|t| (t[0].as_sym().unwrap().0, t[1].as_sym().unwrap().0))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Union is commutative and monotone in size.
    #[test]
    fn union_laws(
        xs in proptest::collection::vec((0u32..15, 0u32..15), 0..60),
        ys in proptest::collection::vec((0u32..15, 0u32..15), 0..60),
    ) {
        let a = Relation::from_tuples(2, xs.iter().map(|&(x, y)| tuple2(x, y)));
        let b = Relation::from_tuples(2, ys.iter().map(|&(x, y)| tuple2(x, y)));
        let mut ab = a.clone();
        ab.union_in_place(&b);
        let mut ba = b.clone();
        ba.union_in_place(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.len() >= a.len().max(b.len()));
        prop_assert!(ab.len() <= a.len() + b.len());
    }

    /// Index probing returns exactly the tuples a linear filter returns,
    /// in the same (insertion) order, for any key column subset.
    #[test]
    fn index_agrees_with_linear_scan(
        triples in proptest::collection::vec((0u32..8, 0u32..8, 0u32..8), 1..120),
        key_cols in proptest::sample::subsequence(vec![0usize, 1, 2], 1..=3),
        probe in (0u32..8, 0u32..8, 0u32..8),
    ) {
        let relation = Relation::from_tuples(
            3,
            triples.iter().map(|&(a, b, c)| {
                Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b)), Value::sym(Sym(c))])
            }),
        );
        let index = Index::build(&relation, key_cols.clone());
        let probe_vals = [Value::sym(Sym(probe.0)), Value::sym(Sym(probe.1)), Value::sym(Sym(probe.2))];
        let key: Vec<Value> = key_cols.iter().map(|&c| probe_vals[c]).collect();
        let via_index: Vec<Tuple> = index.probe(&relation, &key).map(|t| t.to_tuple()).collect();
        let via_scan: Vec<Tuple> = relation
            .iter()
            .filter(|t| key_cols.iter().zip(&key) .all(|(&c, v)| &t[c] == v))
            .map(|t| t.to_tuple())
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    /// Value round-trips integers across the whole representable range.
    #[test]
    fn value_int_roundtrip(n in INT_MIN..(1i64 << 62) - 1) {
        let v = Value::int(n).unwrap();
        prop_assert_eq!(v.as_int(), Some(n));
        prop_assert!(v.as_sym().is_none());
    }
}

/// Incremental index extension equals a fresh build.
#[test]
fn incremental_index_equals_rebuild() {
    let mut relation = Relation::new(2);
    for i in 0..50 {
        relation.insert(tuple2(i % 7, i));
    }
    let mut incremental = Index::build(&relation, vec![0]);
    for i in 50..200 {
        relation.insert(tuple2(i % 7, i));
    }
    incremental.extend_to(&relation);
    let fresh = Index::build(&relation, vec![0]);
    for key in 0..7u32 {
        let k = [Value::sym(Sym(key))];
        let a: Vec<Tuple> = incremental.probe(&relation, &k).map(|t| t.to_tuple()).collect();
        let b: Vec<Tuple> = fresh.probe(&relation, &k).map(|t| t.to_tuple()).collect();
        assert_eq!(a, b, "key {key}");
    }
}

/// Databases deduplicate across all load paths.
#[test]
fn database_load_paths_deduplicate() {
    let mut db = Database::new();
    db.insert_named("e", &["a", "b"]).unwrap();
    db.load_fact_text("e(a, b). e(b, c).").unwrap();
    let e = db.intern("e");
    assert_eq!(db.relation(e).unwrap().len(), 2);
}
