//! Property tests for the Datalog frontend: the pretty-printer/parser
//! round trip, and semantic preservation of rectification.

use proptest::prelude::*;

use separable::ast::pretty::program_to_string;
use separable::ast::rectify::{is_head_rectified, rectify_program};
use separable::ast::{parse_program, Atom, Interner, Literal, Program, Rule, Sym, Term};
use separable::eval::seminaive;
use separable::storage::Database;

/// A strategy producing a random *safe* program over a tiny vocabulary.
///
/// Heads may contain repeated variables and constants (exercising
/// rectification); bodies are 1–3 atoms over variables/constants chosen so
/// that every head variable also appears in the body (safety).
fn arb_program() -> impl Strategy<Value = (Program, Interner)> {
    // Encode choices as plain integers so shrinking stays meaningful.
    let rule = (
        0..3usize,                                  // head predicate
        proptest::collection::vec(0..6usize, 1..3), // head terms (0-3 var, 4-5 const)
        proptest::collection::vec((0..3usize, proptest::collection::vec(0..6usize, 1..3)), 1..4), // body
    );
    proptest::collection::vec(rule, 1..5).prop_map(|raw_rules| {
        let mut interner = Interner::new();
        let preds: Vec<Sym> = (0..3).map(|i| interner.intern(&format!("p{i}"))).collect();
        let vars: Vec<Sym> = (0..4).map(|i| interner.intern(&format!("V{i}"))).collect();
        let consts: Vec<Sym> = (0..2).map(|i| interner.intern(&format!("c{i}"))).collect();
        let term = |code: usize| -> Term {
            if code < 4 {
                Term::Var(vars[code])
            } else {
                Term::sym(consts[code - 4])
            }
        };
        let mut rules = Vec::new();
        for (head_pred, head_terms, body) in raw_rules {
            // Arity consistency: force every predicate to arity 2 by
            // padding/truncating to exactly 2 terms.
            let fix = |mut ts: Vec<usize>| -> Vec<Term> {
                ts.resize(2, 4);
                ts.into_iter().map(term).collect()
            };
            let head = Atom::new(preds[head_pred], fix(head_terms));
            let mut body_lits: Vec<Literal> = body
                .into_iter()
                .map(|(p, ts)| Literal::Atom(Atom::new(preds[p], fix(ts))))
                .collect();
            // Safety: append one atom containing every head variable.
            let head_vars = head.vars();
            if !head_vars.is_empty() {
                let mut ts: Vec<Term> = head_vars.iter().map(|&v| Term::Var(v)).collect();
                ts.resize(2, Term::sym(consts[0]));
                ts.truncate(2);
                // Ensure truly all head vars (arity 2 suffices since heads
                // have at most 2 distinct vars).
                body_lits.push(Literal::Atom(Atom::new(preds[0], ts)));
            }
            rules.push(Rule::new(head, body_lits));
        }
        (Program::new(rules), interner)
    })
}

proptest! {
    /// Pretty-printing a program and reparsing it yields the same AST.
    #[test]
    fn pretty_parse_roundtrip((program, interner) in arb_program()) {
        let rendered = program_to_string(&program, &interner);
        let mut interner2 = interner.clone();
        let reparsed = parse_program(&rendered, &mut interner2)
            .unwrap_or_else(|e| panic!("rendering failed to reparse: {e}\n{rendered}"));
        prop_assert_eq!(program, reparsed, "roundtrip mismatch for:\n{}", rendered);
    }

    /// Rectification produces rectified heads and preserves the semantics
    /// of the program under bottom-up evaluation.
    #[test]
    fn rectification_preserves_semantics((program, interner) in arb_program()) {
        let mut interner = interner;
        let rectified = rectify_program(&program, &mut interner);
        for rule in &rectified.rules {
            prop_assert!(is_head_rectified(rule));
        }
        // Evaluate both over a small fixed EDB.
        let mut db = Database::new();
        db.interner_mut().clone_from(&interner);
        db.load_fact_text(
            "p0(c0, c1). p0(c1, c0). p1(c0, c0). p2(c1, c1). p2(c0, c1).",
        )
        .expect("facts load");
        let before = seminaive(&program, &db).expect("original evaluates");
        let after = seminaive(&rectified, &db).expect("rectified evaluates");
        for (&pred, rel) in &before.relations {
            let rel2 = after
                .relations
                .get(&pred)
                .unwrap_or_else(|| panic!("missing relation after rectification"));
            prop_assert_eq!(rel, rel2, "pred {:?} differs after rectification", pred);
        }
    }
}

proptest! {
    /// The parser never panics: arbitrary byte soup either parses or
    /// returns a structured error with a 1-based position.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let mut interner = Interner::new();
        match parse_program(&input, &mut interner) {
            Ok(_) => {}
            Err(separable::ast::AstError::Parse { line, col, .. }) => {
                prop_assert!(line >= 1 && col >= 1);
            }
            Err(_) => {}
        }
        let mut interner2 = Interner::new();
        let _ = separable::ast::parse_query(&input, &mut interner2);
    }

    /// Datalog-looking fragments with random punctuation also never panic.
    #[test]
    fn parser_never_panics_on_near_datalog(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "p", "q", "X", "Y", "(", ")", ",", ".", ":-", "=", "&", "?",
                "?-", "42", "-7", "_w", "%c\n",
            ]),
            0..30,
        )
    ) {
        let input: String = tokens.join(" ");
        let mut interner = Interner::new();
        let _ = parse_program(&input, &mut interner);
        let _ = separable::ast::parse_query(&input, &mut interner);
    }
}

/// Deterministic spot checks of the round trip on tricky syntax.
#[test]
fn roundtrip_spot_checks() {
    let cases = [
        "p(X, Y) :- q(X, W), Y = W.\n",
        "p(X, Y) :- q(X, Y), X = c.\n",
        "zero.\np(X, X) :- q(X, X).\n",
        "p(X, -42) :- q(X, 7).\n",
    ];
    for src in cases {
        let mut i = Interner::new();
        let p1 = parse_program(src, &mut i).unwrap();
        let rendered = program_to_string(&p1, &i);
        let p2 = parse_program(&rendered, &mut i).unwrap();
        assert_eq!(p1, p2, "roundtrip of {src:?} via {rendered:?}");
    }
}
