//! Cross-validation of the Counting and Henschen–Naqvi baselines against
//! semi-naive ground truth on random *acyclic* scenarios (their
//! applicability domain), plus divergence checks on cyclic data.

use proptest::prelude::*;

use separable::ast::{parse_program, parse_query};
use separable::core::detect::detect_in_program;
use separable::eval::{query_answers, seminaive, EvalError};
use separable::gen::random::random_acyclic_full_selection_scenario;
use separable::rewrite::{counting_evaluate, hn_evaluate, CountingOptions, HnOptions};

fn check_baselines(seed: u64) -> Result<(), TestCaseError> {
    let mut scenario = random_acyclic_full_selection_scenario(seed);
    let program = parse_program(&scenario.program, scenario.db.interner_mut())
        .expect("generated program parses");
    let query =
        parse_query(&scenario.query, scenario.db.interner_mut()).expect("generated query parses");
    let db = scenario.db;

    let derived = seminaive(&program, &db).expect("semi-naive evaluates");
    let expected = query_answers(&query, &db, Some(&derived)).expect("answers extract");

    let mut db2 = db.clone();
    let sep = detect_in_program(&program, query.atom.pred, db2.interner_mut())
        .unwrap_or_else(|e| panic!("seed {seed}: not separable: {e}"));

    match counting_evaluate(&sep, &query, &db2, &CountingOptions::default()) {
        Ok(out) => prop_assert_eq!(
            &out.answers,
            &expected,
            "seed {}: counting disagrees\n{}\n{}",
            seed,
            scenario.program,
            scenario.query
        ),
        // The query may not fully bind one class after detection reorders
        // classes; that is a legitimate Unsupported, not a failure.
        Err(EvalError::Unsupported(_)) => {}
        Err(e) => panic!("seed {seed}: counting failed: {e}\n{}", scenario.program),
    }
    match hn_evaluate(&sep, &query, &db2, &HnOptions::default()) {
        Ok(out) => prop_assert_eq!(
            &out.answers,
            &expected,
            "seed {}: hn disagrees\n{}\n{}",
            seed,
            scenario.program,
            scenario.query
        ),
        Err(EvalError::Unsupported(_)) => {}
        Err(e) => panic!("seed {seed}: hn failed: {e}\n{}", scenario.program),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn baselines_agree_on_random_acyclic_scenarios(seed in 0u64..10_000) {
        check_baselines(seed)?;
    }
}

#[test]
fn first_hundred_acyclic_seeds_agree() {
    for seed in 0..100 {
        check_baselines(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Both baselines refuse cyclic data rather than looping (the paper notes
/// Henschen–Naqvi "fails for cyclic data"; Counting shares the
/// restriction).
#[test]
fn baselines_report_divergence_on_cycles() {
    let mut db = separable::storage::Database::new();
    separable::gen::graphs::add_cycle(&mut db, "e", "v", 4);
    let program =
        parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
            .unwrap();
    let query = parse_query("t(v0, Y)?", db.interner_mut()).unwrap();
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).unwrap();
    assert!(matches!(
        counting_evaluate(&sep, &query, &db, &CountingOptions::default()),
        Err(EvalError::Diverged { .. })
    ));
    assert!(matches!(
        hn_evaluate(&sep, &query, &db, &HnOptions::default()),
        Err(EvalError::Diverged { .. })
    ));
    // The Separable algorithm handles the same query fine.
    let evaluator = separable::core::evaluate::SeparableEvaluator::new(sep);
    let out = evaluator
        .evaluate(&query, &db, &Default::default())
        .expect("separable terminates on cycles");
    assert_eq!(out.answers.len(), 4);
}
