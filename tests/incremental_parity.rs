//! Live-mutation parity: a processor maintained incrementally through an
//! interleaving of inserts and retracts must answer every query exactly
//! like a processor built from scratch on the final fact set — for every
//! strategy, serial and parallel — and every post-mutation query must run
//! against a cached plan revalidated for statistics drift: retained while
//! the cardinalities that justified it still hold, recompiled once they
//! moved past the drift threshold.

use std::collections::BTreeSet;

use separable::engine::{ProcessorError, QueryProcessor, Strategy, StrategyChoice};
use separable::ExecOptions;

const RULES: &str = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";

const STRATEGIES: [Strategy; 7] = [
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::Counting,
    Strategy::HenschenNaqvi,
    Strategy::SemiNaive,
    Strategy::Naive,
];

/// Tracks the ground truth alongside the incrementally maintained
/// processor: a mirror of the EDB from which fresh processors are built.
struct Mirror {
    edges: BTreeSet<(String, String)>,
}

impl Mirror {
    fn fact_text(&self) -> String {
        let mut text = String::from(RULES);
        for (a, b) in &self.edges {
            text.push_str(&format!("e({a}, {b}).\n"));
        }
        text
    }

    fn apply(&mut self, inserts: &[(&str, &str)], retracts: &[(&str, &str)]) {
        for &(a, b) in retracts {
            self.edges.remove(&(a.to_string(), b.to_string()));
        }
        for &(a, b) in inserts {
            self.edges.insert((a.to_string(), b.to_string()));
        }
    }
}

fn edge_fact(a: &str, b: &str) -> String {
    format!("e({a}, {b}).")
}

/// Sorted display-rendered answers (the two processors intern symbols in
/// different orders, so raw `Sym` tuples are not comparable).
fn rendered(qp: &QueryProcessor, result: &separable::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> =
        result.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
    rows.sort();
    rows
}

/// Asserts the maintained processor and a from-scratch processor agree on
/// `query` under every strategy and thread count — equal answers, or the
/// same kind of strategy refusal.
fn assert_parity(qp: &mut QueryProcessor, mirror: &Mirror, query: &str, context: &str) {
    let mut fresh = QueryProcessor::new();
    fresh.load(&mirror.fact_text()).unwrap();
    for threads in [1usize, 3] {
        for strategy in STRATEGIES {
            qp.set_exec_options(ExecOptions { threads, ..ExecOptions::default() });
            fresh.set_exec_options(ExecOptions { threads, ..ExecOptions::default() });
            let a = qp.query_with(query, StrategyChoice::Force(strategy));
            let b = fresh.query_with(query, StrategyChoice::Force(strategy));
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        rendered(qp, &a),
                        rendered(&fresh, &b),
                        "{context}: {strategy} diverged at {threads} threads"
                    );
                }
                (Err(ProcessorError::StrategyUnavailable(_)), Err(_)) => {}
                (a, b) => panic!(
                    "{context}: {strategy} at {threads} threads: maintained {:?} vs fresh {:?}",
                    a.map(|r| r.answers.len()),
                    b.map(|r| r.answers.len()),
                ),
            }
        }
    }
}

#[test]
fn interleaved_mutations_match_from_scratch_for_every_strategy() {
    let chain = 12usize;
    let mut mirror = Mirror { edges: BTreeSet::new() };
    for i in 0..chain {
        mirror.apply(&[(&format!("n{i}"), &format!("n{}", i + 1))], &[]);
    }
    let mut qp = QueryProcessor::new();
    qp.load(&mirror.fact_text()).unwrap();
    qp.prepare().unwrap();

    // Each step is one all-or-none mutation mixing retracts (applied
    // first) and inserts; the mirror tracks the expected final EDB.
    type Edges<'a> = Vec<(&'a str, &'a str)>;
    let steps: [(&str, Edges, Edges); 5] = [
        // Grow the chain and add a diamond detour around n5 -> n6.
        ("grow + detour", vec![("n12", "n13"), ("n5", "m0"), ("m0", "n6")], vec![]),
        // Drop the direct edge: n6 now reachable only through the detour,
        // so every t(_, n6..) answer must be rederived, not deleted.
        ("force rederivation", vec![("n13", "n14")], vec![("n5", "n6")]),
        // Undo the detour and restore the direct edge in one mutation.
        ("restore", vec![("n5", "n6")], vec![("n5", "m0"), ("m0", "n6")]),
        // Cut the chain at its head: the selected closure empties.
        ("cut head", vec![], vec![("n0", "n1")]),
        // Splice the head back.
        ("splice head", vec![("n0", "n1")], vec![]),
    ];

    assert_parity(&mut qp, &mirror, "t(n0, Y)?", "before any mutation");
    for (context, inserts, retracts) in steps {
        let insert_facts: Vec<String> = inserts.iter().map(|(a, b)| edge_fact(a, b)).collect();
        let retract_facts: Vec<String> = retracts.iter().map(|(a, b)| edge_fact(a, b)).collect();
        let insert_refs: Vec<&str> = insert_facts.iter().map(String::as_str).collect();
        let retract_refs: Vec<&str> = retract_facts.iter().map(String::as_str).collect();
        let out = qp.apply_mutation(&insert_refs, &retract_refs).unwrap();
        assert_eq!(out.inserted, inserts.len(), "{context}: insert count");
        assert_eq!(out.retracted, retracts.len(), "{context}: retract count");
        mirror.apply(&inserts, &retracts);
        assert_parity(&mut qp, &mirror, "t(n0, Y)?", context);
        assert_parity(&mut qp, &mirror, "t(n3, Y)?", context);
    }
}

#[test]
fn post_mutation_queries_revalidate_cached_plans_against_drift() {
    let mut mirror = Mirror { edges: BTreeSet::new() };
    for i in 0..6 {
        mirror.apply(&[(&format!("n{i}"), &format!("n{}", i + 1))], &[]);
    }
    let mut qp = QueryProcessor::new();
    qp.load(&mirror.fact_text()).unwrap();
    qp.prepare().unwrap();

    let first = qp.query_with("t(n0, Y)?", StrategyChoice::Force(Strategy::Separable)).unwrap();
    assert_eq!(first.answers.len(), 6);
    let gen_before = qp.generation();
    assert_eq!(qp.plan_cache().generation(), gen_before);
    assert_eq!(qp.plan_cache().entries(), 1);
    let misses_before = qp.plan_cache().misses();

    let out = qp.apply_mutation(&["e(n6, n7)."], &[]).unwrap();
    assert_eq!(out.generation, gen_before + 1);
    assert_eq!(qp.generation(), gen_before + 1);
    // A mutation re-stamps the cache before any query runs, but a small
    // EDB change is within drift tolerance: the plan's statistics
    // snapshot is still representative, so the entry survives.
    assert_eq!(qp.plan_cache().entries(), 1);
    assert_eq!(qp.plan_cache().generation(), gen_before + 1);
    assert_eq!(qp.plan_cache().drift_invalidations(), 0);

    // The retained plan is served (a hit, not a recompile) and executes
    // against the mutated database — plans hold join orders, not data.
    let second = qp.query_with("t(n0, Y)?", StrategyChoice::Force(Strategy::Separable)).unwrap();
    assert_eq!(second.answers.len(), 7);
    assert_eq!(qp.plan_cache().misses(), misses_before);

    // Bulk growth pushes the cardinalities past the drift threshold: the
    // revalidation drops the stale plan and the next query recompiles.
    let bulk: Vec<String> = (0..40).map(|i| format!("e(x{i}, n0).")).collect();
    let bulk_refs: Vec<&str> = bulk.iter().map(String::as_str).collect();
    qp.apply_mutation(&bulk_refs, &[]).unwrap();
    for (a, b) in bulk.iter().map(|f| f.trim_end_matches('.')).map(|f| {
        let inner = f.strip_prefix("e(").unwrap().strip_suffix(')').unwrap();
        let (a, b) = inner.split_once(", ").unwrap();
        (a.to_string(), b.to_string())
    }) {
        mirror.apply(&[(&a, &b)], &[]);
    }
    assert_eq!(qp.plan_cache().entries(), 0);
    assert_eq!(qp.plan_cache().drift_invalidations(), 1);
    let third = qp.query_with("t(n0, Y)?", StrategyChoice::Force(Strategy::Separable)).unwrap();
    assert_eq!(third.answers.len(), 7);
    assert_eq!(qp.plan_cache().misses(), misses_before + 1);

    // The replanned processor still matches a from-scratch build.
    mirror.apply(&[("n6", "n7")], &[]);
    assert_parity(&mut qp, &mirror, "t(n0, Y)?", "after drift replan");

    // An ineffective mutation keeps both the generation and the cache.
    let generation = qp.generation();
    let entries = qp.plan_cache().entries();
    let out = qp.apply_mutation(&[], &["e(n90, n91)."]).unwrap();
    assert_eq!(out.retracted, 0);
    assert_eq!(qp.generation(), generation);
    assert_eq!(qp.plan_cache().entries(), entries);
}
