//! Parallel/serial parity: on randomly generated programs and databases,
//! the sharded parallel fixpoint engine (threads ≥ 2) must produce exactly
//! the answer sets of the serial engine (threads = 1) for semi-naive
//! evaluation, the Separable algorithm, and Magic Sets — and two parallel
//! runs must be byte-identical, including insertion order.
//!
//! Scenarios come from the three sepra-gen generators: separable by
//! construction, acyclic with full first-class selections, and general
//! linear (possibly non-separable, exercising the fallback paths).

use proptest::prelude::*;

use separable::ast::{parse_program, parse_query};
use separable::core::detect::detect_in_program;
use separable::core::evaluate::SeparableEvaluator;
use separable::core::exec::ExtraRelations;
use separable::eval::{query_answers, seminaive_with_options, EvalOptions};
use separable::gen::random::RandomScenario;
use separable::gen::random::{
    random_acyclic_full_selection_scenario, random_linear_scenario, random_separable_scenario,
};
use separable::rewrite::magic_evaluate_with_options;
use separable::ExecOptions;

const PARALLEL_THREADS: [usize; 2] = [2, 4];

fn exec_opts(threads: usize) -> ExecOptions {
    ExecOptions { threads, ..ExecOptions::default() }
}

/// Semi-naive and Magic Sets at 2 and 4 threads must match threads = 1.
/// Works on any generated scenario, separable or not.
fn check_general(seed: u64, mut scenario: RandomScenario) -> Result<(), TestCaseError> {
    let program = parse_program(&scenario.program, scenario.db.interner_mut())
        .expect("generated program parses");
    let query =
        parse_query(&scenario.query, scenario.db.interner_mut()).expect("generated query parses");
    let db = scenario.db;

    let serial =
        seminaive_with_options(&program, &db, &EvalOptions { threads: 1, ..Default::default() })
            .expect("serial semi-naive evaluates");
    let serial_answers = query_answers(&query, &db, Some(&serial)).expect("answers extract");
    let serial_magic = magic_evaluate_with_options(
        &program,
        &query,
        &db,
        &EvalOptions { threads: 1, ..Default::default() },
    )
    .expect("serial magic evaluates");

    for threads in PARALLEL_THREADS {
        let parallel =
            seminaive_with_options(&program, &db, &EvalOptions { threads, ..Default::default() })
                .expect("parallel semi-naive evaluates");
        prop_assert_eq!(
            &serial.relations,
            &parallel.relations,
            "seed {}: semi-naive IDB diverges at {} threads\nprogram:\n{}",
            seed,
            threads,
            scenario.program
        );
        let parallel_answers =
            query_answers(&query, &db, Some(&parallel)).expect("answers extract");
        prop_assert_eq!(
            &serial_answers,
            &parallel_answers,
            "seed {}: semi-naive answers diverge at {} threads",
            seed,
            threads
        );

        let parallel_magic = magic_evaluate_with_options(
            &program,
            &query,
            &db,
            &EvalOptions { threads, ..Default::default() },
        )
        .expect("parallel magic evaluates");
        prop_assert_eq!(
            &serial_magic.answers,
            &parallel_magic.answers,
            "seed {}: magic answers diverge at {} threads\nprogram:\n{}",
            seed,
            threads,
            scenario.program
        );
    }
    Ok(())
}

/// The Separable algorithm at 2 and 4 threads must match threads = 1.
/// Requires a scenario that is separable by construction.
fn check_separable(seed: u64, mut scenario: RandomScenario) -> Result<(), TestCaseError> {
    let program = parse_program(&scenario.program, scenario.db.interner_mut())
        .expect("generated program parses");
    let query =
        parse_query(&scenario.query, scenario.db.interner_mut()).expect("generated query parses");
    let mut db = scenario.db;
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut())
        .unwrap_or_else(|e| panic!("seed {seed}: not separable: {e}\n{}", scenario.program));

    let serial = SeparableEvaluator::with_options(sep.clone(), exec_opts(1))
        .evaluate(&query, &db, &ExtraRelations::default())
        .unwrap_or_else(|e| panic!("seed {seed}: serial separable failed: {e}"));

    for threads in PARALLEL_THREADS {
        let parallel = SeparableEvaluator::with_options(sep.clone(), exec_opts(threads))
            .evaluate(&query, &db, &ExtraRelations::default())
            .unwrap_or_else(|e| panic!("seed {seed}: parallel separable failed: {e}"));
        prop_assert_eq!(
            &serial.answers,
            &parallel.answers,
            "seed {}: separable answers diverge at {} threads\nprogram:\n{}\nquery: {}",
            seed,
            threads,
            scenario.program,
            scenario.query
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn seminaive_and_magic_parallel_parity_on_separable_scenarios(seed in 0u64..10_000) {
        check_general(seed, random_separable_scenario(seed))?;
    }

    #[test]
    fn seminaive_and_magic_parallel_parity_on_linear_scenarios(seed in 0u64..10_000) {
        check_general(seed, random_linear_scenario(seed))?;
    }

    #[test]
    fn separable_parallel_parity_on_random_scenarios(seed in 0u64..10_000) {
        check_separable(seed, random_separable_scenario(seed))?;
    }

    #[test]
    fn separable_parallel_parity_on_acyclic_scenarios(seed in 0u64..10_000) {
        check_separable(seed, random_acyclic_full_selection_scenario(seed))?;
    }
}

/// A fixed sweep independent of proptest's sampling, so the first seeds
/// are always exercised deterministically in CI.
#[test]
fn first_forty_seeds_parallel_parity() {
    for seed in 0..40 {
        check_general(seed, random_separable_scenario(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        check_separable(seed, random_separable_scenario(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Two parallel runs must be *byte-identical*: not just equal answer
/// sets, but the same tuples in the same insertion order. The sharded
/// merge concatenates worker buffers in shard order, so the interleaving
/// is a pure function of the input — no run-to-run nondeterminism.
#[test]
fn parallel_runs_are_byte_identical() {
    for seed in [0u64, 7, 19, 42, 101] {
        // Semi-naive: every derived relation's backing slice must match.
        let mut scenario = random_separable_scenario(seed);
        let program = parse_program(&scenario.program, scenario.db.interner_mut())
            .expect("generated program parses");
        let query = parse_query(&scenario.query, scenario.db.interner_mut())
            .expect("generated query parses");
        let mut db = scenario.db;
        let a = seminaive_with_options(
            &program,
            &db,
            &EvalOptions { threads: 4, ..Default::default() },
        )
        .unwrap();
        let b = seminaive_with_options(
            &program,
            &db,
            &EvalOptions { threads: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(a.relations.len(), b.relations.len(), "seed {seed}");
        for (pred, rel_a) in &a.relations {
            let rel_b = &b.relations[pred];
            assert!(
                rel_a.iter().eq(rel_b.iter()),
                "seed {seed}: semi-naive insertion order diverged between runs"
            );
        }

        // Separable: the answer relation's insertion order must match.
        let sep = detect_in_program(&program, query.atom.pred, db.interner_mut())
            .unwrap_or_else(|e| panic!("seed {seed}: not separable: {e}"));
        let x = SeparableEvaluator::with_options(sep.clone(), exec_opts(4))
            .evaluate(&query, &db, &ExtraRelations::default())
            .unwrap();
        let y = SeparableEvaluator::with_options(sep, exec_opts(4))
            .evaluate(&query, &db, &ExtraRelations::default())
            .unwrap();
        assert!(
            x.answers.iter().eq(y.answers.iter()),
            "seed {seed}: separable insertion order diverged between runs"
        );
    }
}
