//! Boundedness parity and soundness: a detected-bounded recursion is a
//! *claim* that the k-unfolded nonrecursive rewrite derives exactly the
//! fixpoint. Covered three ways: fixture programs (one per sufficient
//! condition) where forced `bounded` must match every fixpoint strategy
//! that accepts the query at 1 and 3 threads; mutation scripts where the
//! EDB drifts — including facts of the bounded predicate itself — and the
//! program-level verdict must not move; and generated programs, where
//! known-unbounded families must never be claimed bounded and any claimed
//! verdict on a random linear program must be semantically correct.

use std::collections::BTreeSet;

use proptest::prelude::*;

use separable::ast::{parse_program, parse_query, RecursiveDef};
use separable::core::bounded::analyze;
use separable::engine::{ProcessorError, QueryProcessor, Strategy, StrategyChoice};
use separable::eval::{query_answers, seminaive_with_options, EvalOptions, PlanMode};
use separable::gen::random::random_linear_scenario;
use separable::rewrite::bounded_evaluate;
use separable::storage::Tuple;
use separable::ExecOptions;

const STRATEGIES: [Strategy; 7] = [
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::Counting,
    Strategy::HenschenNaqvi,
    Strategy::SemiNaive,
    Strategy::Naive,
];

/// One fixture per sufficient condition of the analysis.
const VACUOUS: &str = "t(X, Y) :- e(X, Y), t(X, Y).\n\
                       t(X, Y) :- t0(X, Y).\n\
                       e(a, b). e(b, c). t0(a, b). t0(c, d).\n";
const EXIT_SUBSUMED: &str = "t(X, Y) :- e(X, Y), t(Y, X).\n\
                             t(X, Y) :- e(X, Y).\n\
                             e(a, b). e(b, a). e(c, d).\n";
const SWAP: &str = "t(X, Y) :- sym(X, Y), t(Y, X).\n\
                    t(X, Y) :- base(X, Y).\n\
                    sym(a, b). sym(b, a). sym(c, d).\n\
                    base(b, a). base(c, d). base(e, f).\n";

fn exec_opts(threads: usize) -> ExecOptions {
    ExecOptions { threads, ..ExecOptions::default() }
}

fn rendered(qp: &QueryProcessor, result: &separable::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> =
        result.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
    rows.sort();
    rows
}

/// Forced `bounded` against every fixpoint strategy at 1 and 3 threads:
/// equal answer sets whenever the strategy accepts the query, and zero
/// fixpoint iterations on the bounded side. Strategy refusals (counting
/// and HN want a full separable selection, separable wants a selection)
/// are fine — boundedness must not change *which* strategies apply.
fn assert_bounded_parity(text: &str, query: &str, prepare: bool, context: &str) {
    for threads in [1usize, 3] {
        let mut bounded = QueryProcessor::new();
        bounded.load(text).unwrap();
        bounded.set_exec_options(exec_opts(threads));
        if prepare {
            bounded.prepare().unwrap();
        }
        let b = bounded
            .query_with(query, StrategyChoice::Force(Strategy::Bounded))
            .unwrap_or_else(|e| panic!("{context}: bounded refused `{query}`: {e}"));
        assert_eq!(b.stats.iterations, 0, "{context}: bounded run iterated at {threads} threads");
        let b_rows = rendered(&bounded, &b);

        for strategy in STRATEGIES {
            let mut qp = QueryProcessor::new();
            qp.load(text).unwrap();
            qp.set_exec_options(exec_opts(threads));
            if prepare {
                qp.prepare().unwrap();
            }
            match qp.query_with(query, StrategyChoice::Force(strategy)) {
                Ok(r) => assert_eq!(
                    b_rows,
                    rendered(&qp, &r),
                    "{context}: bounded vs {strategy} diverged on `{query}` at {threads} threads"
                ),
                // A forced strategy may refuse the query shape (magic
                // wants a bound argument, counting/HN reject cyclic data
                // and partial selections) — refusals are fine; only an
                // accepted-but-different answer set is a parity failure.
                Err(ProcessorError::StrategyUnavailable(_)) | Err(ProcessorError::Eval(_)) => {}
                Err(e) => panic!("{context}: {strategy} failed on `{query}`: {e}"),
            }
        }
    }
}

#[test]
fn vacuous_fixture_matches_all_strategies() {
    for prepare in [false, true] {
        assert_bounded_parity(VACUOUS, "t(X, Y)?", prepare, "vacuous, unbound");
        assert_bounded_parity(VACUOUS, "t(a, Y)?", prepare, "vacuous, bound");
    }
}

#[test]
fn exit_subsumed_fixture_matches_all_strategies() {
    for prepare in [false, true] {
        assert_bounded_parity(EXIT_SUBSUMED, "t(X, Y)?", prepare, "exit-subsumed, unbound");
        assert_bounded_parity(EXIT_SUBSUMED, "t(a, Y)?", prepare, "exit-subsumed, bound");
    }
}

#[test]
fn swap_fixture_matches_all_strategies() {
    for prepare in [false, true] {
        assert_bounded_parity(SWAP, "t(X, Y)?", prepare, "swap, unbound");
        assert_bounded_parity(SWAP, "t(b, Y)?", prepare, "swap, bound");
    }
}

/// The verdict is program-only: a mutation script that grows and shrinks
/// the EDB — including facts of the bounded predicate itself — must never
/// flip the strategy away from `bounded`, and after every commit the
/// bounded answers must still equal a from-scratch semi-naive run on an
/// identically mutated twin.
#[test]
fn mutations_never_change_the_verdict() {
    let mut bounded = QueryProcessor::new();
    bounded.load(SWAP).unwrap();
    bounded.prepare().unwrap();
    let mut baseline = QueryProcessor::new();
    baseline.load(SWAP).unwrap();

    type Script<'a> = (&'a str, Vec<&'a str>, Vec<&'a str>);
    let steps: [Script; 4] = [
        // Facts of the recursive predicate itself: the analysis accounted
        // for them with the synthetic `t@edb` exit rule, so the verdict
        // holds and the new tuple must flow into the answers.
        ("insert t facts", vec!["t(d, c).", "t(g, h)."], vec![]),
        ("grow the cycle", vec!["sym(e, f).", "sym(f, e).", "base(f, e)."], vec![]),
        ("retract an exit edge", vec![], vec!["base(c, d)."]),
        ("mixed churn", vec!["base(a, c).", "sym(h, g)."], vec!["t(g, h).", "sym(c, d)."]),
    ];

    for (context, inserts, retracts) in steps {
        bounded.apply_mutation(&inserts, &retracts).unwrap();
        baseline.apply_mutation(&inserts, &retracts).unwrap();
        for query in ["t(X, Y)?", "t(a, Y)?"] {
            let b = bounded.query(query).unwrap();
            assert_eq!(
                b.strategy,
                Strategy::Bounded,
                "{context}: EDB mutation changed the program-level verdict"
            );
            assert_eq!(b.stats.iterations, 0, "{context}: bounded run iterated");
            let s = baseline.query_with(query, StrategyChoice::Force(Strategy::SemiNaive)).unwrap();
            assert_eq!(
                rendered(&bounded, &b),
                rendered(&baseline, &s),
                "{context}: bounded diverged from semi-naive on `{query}`"
            );
        }
    }
}

/// Mutating the EDB of an *unbounded* program must not conjure a bounded
/// verdict either: auto selection keeps picking a fixpoint strategy.
#[test]
fn mutations_never_invent_a_verdict() {
    let tc = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(a, b). e(b, c).\n";
    let mut qp = QueryProcessor::new();
    qp.load(tc).unwrap();
    qp.prepare().unwrap();
    qp.apply_mutation(&["t(z, z).", "e(c, d)."], &["e(a, b)."]).unwrap();
    let r = qp.query("t(X, Y)?").unwrap();
    assert_ne!(r.strategy, Strategy::Bounded, "transitive closure claimed bounded");
    let err = qp.query_with("t(X, Y)?", StrategyChoice::Force(Strategy::Bounded)).unwrap_err();
    assert!(matches!(err, ProcessorError::StrategyUnavailable(_)), "{err}");
}

/// Known-unbounded families, over a range of shapes: transitive closure
/// with an n-hop body, and same-generation. The analysis must return
/// `None` for every one of them.
#[test]
fn unbounded_families_are_never_claimed_bounded() {
    let mut sources = vec![(
        "sg(X, Y)?",
        "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
         flat(m, n). up(m, n). down(n, m).\n"
            .to_string(),
    )];
    for hops in 1..=3 {
        let mut src = String::from("t(X, Y) :- ");
        let mut from = "X".to_string();
        for h in 0..hops {
            src.push_str(&format!("e({from}, B{h}), "));
            from = format!("B{h}");
        }
        src.push_str(&format!("t({from}, Y).\nt(X, Y) :- e(X, Y).\ne(m, n). e(n, o).\n"));
        sources.push(("t(X, Y)?", src));
    }
    for (query, src) in sources {
        let mut qp = QueryProcessor::new();
        qp.load(&src).unwrap();
        let pred = qp.parse_query(query).unwrap().atom.pred;
        let program = qp.program().clone();
        let Ok(def) = RecursiveDef::extract(&program, pred, qp.db().interner()) else {
            panic!("family should be extractable:\n{src}");
        };
        let verdict = analyze(&def, qp.db_mut().interner_mut());
        assert!(verdict.is_none(), "unbounded family claimed bounded:\n{src}");
    }
}

fn tuple_set(rel: &separable::storage::Relation) -> BTreeSet<Tuple> {
    rel.iter().map(|t| t.to_tuple()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Soundness over generated linear programs: whenever the analysis
    /// claims a verdict, the rewrite's answers equal the fixpoint's. (Some
    /// generated programs are genuinely bounded — the property is that a
    /// claim is *correct*, not that claims never happen.)
    #[test]
    fn claimed_verdicts_are_semantically_correct(seed in 0u64..10_000) {
        let mut scenario = random_linear_scenario(seed);
        let program = parse_program(&scenario.program, scenario.db.interner_mut())
            .expect("generated program parses");
        let query = parse_query(&scenario.query, scenario.db.interner_mut())
            .expect("generated query parses");
        let mut db = scenario.db;
        let pred = query.atom.pred;
        if let Ok(def) = RecursiveDef::extract(&program, pred, db.interner()) {
            if let Some(bounded) = analyze(&def, db.interner_mut()) {
                let out = bounded_evaluate(&program, &query, &db, &bounded)
                    .expect("bounded rewrite evaluates");
                let derived =
                    seminaive_with_options(&program, &db, &EvalOptions::default())
                        .expect("semi-naive evaluates");
                let expected =
                    query_answers(&query, &db, Some(&derived)).expect("answers extract");
                prop_assert_eq!(
                    tuple_set(&out.answers),
                    tuple_set(&expected),
                    "seed {}: bounded rewrite diverges from fixpoint\nprogram:\n{}",
                    seed,
                    scenario.program
                );
            }
        }
    }

    /// Plan modes do not affect bounded evaluation: the rewrite runs on
    /// the same semi-naive engine, so cost-based and source-order planning
    /// must agree on bounded fixtures too.
    #[test]
    fn bounded_answers_are_plan_mode_invariant(threads in 1usize..4) {
        for text in [VACUOUS, EXIT_SUBSUMED, SWAP] {
            let mut rows = Vec::new();
            for mode in [PlanMode::SourceOrder, PlanMode::CostBased] {
                let mut qp = QueryProcessor::new();
                qp.load(text).unwrap();
                qp.set_exec_options(ExecOptions { threads, plan_mode: mode, ..ExecOptions::default() });
                let r = qp
                    .query_with("t(X, Y)?", StrategyChoice::Force(Strategy::Bounded))
                    .unwrap();
                rows.push(rendered(&qp, &r));
            }
            prop_assert_eq!(&rows[0], &rows[1], "plan modes diverged at {} threads", threads);
        }
    }
}
