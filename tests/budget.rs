//! Budget enforcement across every fixpoint engine: an exhausted
//! [`Budget`] must surface as a structured `EvalError::BudgetExceeded`
//! naming the limit that was hit — never a panic, a wrong answer, or a
//! poisoned evaluator. These are the guarantees `sepra serve` relies on
//! for per-request deadlines and shutdown cancellation.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use separable::ast::{parse_program, parse_query, Program, Query};
use separable::core::detect::detect_in_program;
use separable::core::evaluate::SeparableEvaluator;
use separable::core::exec::ExtraRelations;
use separable::eval::{
    naive_with_options, seminaive_with_options, Budget, BudgetResource, EvalError, EvalOptions,
};
use separable::rewrite::{
    counting_evaluate, hn_evaluate, magic_evaluate_supplementary_with_options,
    magic_evaluate_with_options, CountingOptions, HnOptions,
};
use separable::{Database, ExecOptions};

const TC: &str = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";

/// A transitive-closure scenario over a 30-edge chain (acyclic, so the
/// Counting and Henschen-Naqvi descents apply too).
fn scenario() -> (Database, Program, Query) {
    let mut db = Database::new();
    for i in 0..30 {
        db.insert_named("e", &[&format!("n{i}"), &format!("n{}", i + 1)]).unwrap();
    }
    let program = parse_program(TC, db.interner_mut()).unwrap();
    let query = parse_query("t(n0, Y)?", db.interner_mut()).unwrap();
    (db, program, query)
}

fn expired_deadline() -> Budget {
    Budget { deadline: Some(Instant::now() - Duration::from_millis(1)), ..Budget::default() }
}

fn assert_exceeded<T: std::fmt::Debug>(
    result: Result<T, EvalError>,
    expect: BudgetResource,
    engine: &str,
) {
    match result {
        Err(EvalError::BudgetExceeded { resource, .. }) => {
            assert_eq!(resource, expect, "{engine}: wrong resource");
        }
        other => panic!("{engine}: expected BudgetExceeded({expect:?}), got {other:?}"),
    }
}

#[test]
fn seminaive_honours_deadline_tuples_and_iterations() {
    let (db, program, _) = scenario();
    let opts = |budget: Budget| EvalOptions { threads: 1, budget, ..EvalOptions::default() };
    assert_exceeded(
        seminaive_with_options(&program, &db, &opts(expired_deadline())),
        BudgetResource::Deadline,
        "semi-naive",
    );
    assert_exceeded(
        seminaive_with_options(&program, &db, &opts(Budget::unlimited().tuples(1))),
        BudgetResource::Tuples,
        "semi-naive",
    );
    assert_exceeded(
        seminaive_with_options(&program, &db, &opts(Budget::unlimited().iterations(1))),
        BudgetResource::Iterations,
        "semi-naive",
    );
}

#[test]
fn parallel_seminaive_honours_cancellation() {
    let (db, program, _) = scenario();
    let flag = Arc::new(AtomicBool::new(true)); // cancelled before it starts
    let options = EvalOptions {
        threads: 4,
        budget: Budget::unlimited().cancellable(flag),
        ..EvalOptions::default()
    };
    assert_exceeded(
        seminaive_with_options(&program, &db, &options),
        BudgetResource::Cancelled,
        "parallel semi-naive",
    );
}

#[test]
fn naive_honours_the_budget() {
    let (db, program, _) = scenario();
    let options = EvalOptions {
        threads: 1,
        budget: Budget::unlimited().iterations(1),
        ..EvalOptions::default()
    };
    assert_exceeded(
        naive_with_options(&program, &db, &options),
        BudgetResource::Iterations,
        "naive",
    );
}

#[test]
fn separable_closures_honour_the_budget() {
    let (mut db, program, query) = scenario();
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).unwrap();
    for (budget, expect) in [
        (expired_deadline(), BudgetResource::Deadline),
        (Budget::unlimited().tuples(1), BudgetResource::Tuples),
        (Budget::unlimited().iterations(1), BudgetResource::Iterations),
    ] {
        let opts = ExecOptions { budget, ..ExecOptions::default() };
        let evaluator = SeparableEvaluator::with_options(sep.clone(), opts);
        assert_exceeded(
            evaluator.evaluate(&query, &db, &ExtraRelations::default()),
            expect,
            "separable",
        );
    }
    // Parallel closures must honour cancellation raised mid-flight too; a
    // pre-raised flag exercises the worker probe and the barrier re-check.
    let flag = Arc::new(AtomicBool::new(true));
    let opts = ExecOptions {
        threads: 4,
        budget: Budget::unlimited().cancellable(flag),
        ..ExecOptions::default()
    };
    let evaluator = SeparableEvaluator::with_options(sep, opts);
    assert_exceeded(
        evaluator.evaluate(&query, &db, &ExtraRelations::default()),
        BudgetResource::Cancelled,
        "parallel separable",
    );
}

#[test]
fn magic_rewrites_honour_the_budget() {
    let (db, program, query) = scenario();
    let options = EvalOptions {
        threads: 1,
        budget: Budget::unlimited().iterations(1),
        ..EvalOptions::default()
    };
    assert_exceeded(
        magic_evaluate_with_options(&program, &query, &db, &options),
        BudgetResource::Iterations,
        "magic sets",
    );
    assert_exceeded(
        magic_evaluate_supplementary_with_options(&program, &query, &db, &options),
        BudgetResource::Iterations,
        "magic supplementary",
    );
}

#[test]
fn counting_and_hn_descents_honour_the_budget() {
    let (mut db, program, query) = scenario();
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).unwrap();
    let exec = ExecOptions { budget: Budget::unlimited().iterations(1), ..ExecOptions::default() };
    let counting = CountingOptions { exec: exec.clone(), ..CountingOptions::default() };
    assert_exceeded(
        counting_evaluate(&sep, &query, &db, &counting),
        BudgetResource::Iterations,
        "counting",
    );
    let hn = HnOptions { exec, ..HnOptions::default() };
    assert_exceeded(hn_evaluate(&sep, &query, &db, &hn), BudgetResource::Iterations, "hn");
}

/// A budget error must not poison anything: re-running the identical
/// evaluation with an unlimited budget yields the full answer set.
#[test]
fn budget_errors_do_not_poison_later_runs() {
    let (mut db, program, query) = scenario();
    let sep = detect_in_program(&program, query.atom.pred, db.interner_mut()).unwrap();

    let strict = ExecOptions { budget: Budget::unlimited().tuples(1), ..ExecOptions::default() };
    let evaluator = SeparableEvaluator::with_options(sep.clone(), strict);
    assert!(evaluator.evaluate(&query, &db, &ExtraRelations::default()).is_err());

    let evaluator = SeparableEvaluator::with_options(sep, ExecOptions::default());
    let outcome = evaluator.evaluate(&query, &db, &ExtraRelations::default()).unwrap();
    assert_eq!(outcome.answers.len(), 30); // n1..n30

    let strict = EvalOptions {
        threads: 1,
        budget: Budget::unlimited().iterations(1),
        ..EvalOptions::default()
    };
    assert!(seminaive_with_options(&program, &db, &strict).is_err());
    let derived = seminaive_with_options(&program, &db, &EvalOptions::default()).unwrap();
    let t = db.intern("t");
    assert_eq!(derived.relation(t).unwrap().len(), 30 * 31 / 2);
}
