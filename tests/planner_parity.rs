//! Planner parity: cost-based subgoal ordering is a pure optimization, so
//! for any program, database, strategy, and thread count, evaluation under
//! `PlanMode::CostBased` must produce exactly the answer *set* of
//! `PlanMode::SourceOrder` (insertion order may differ — the join order
//! is precisely what changed). Covered three ways: randomly generated
//! scenarios at the eval layer, all seven forced strategies through the
//! query processor, and interleaved mutation scripts where the maintained
//! statistics (and therefore the chosen orders) drift as the EDB changes.

use std::collections::BTreeSet;

use proptest::prelude::*;

use separable::ast::{parse_program, parse_query};
use separable::engine::{QueryProcessor, Strategy, StrategyChoice};
use separable::eval::{query_answers, seminaive_with_options, EvalOptions, PlanMode};
use separable::gen::random::{random_linear_scenario, random_separable_scenario, RandomScenario};
use separable::rewrite::magic_evaluate_with_options;
use separable::storage::Tuple;
use separable::ExecOptions;

const STRATEGIES: [Strategy; 7] = [
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::Counting,
    Strategy::HenschenNaqvi,
    Strategy::SemiNaive,
    Strategy::Naive,
];

fn exec_opts(threads: usize, mode: PlanMode) -> ExecOptions {
    ExecOptions { threads, plan_mode: mode, ..ExecOptions::default() }
}

fn eval_opts(threads: usize, mode: PlanMode) -> EvalOptions {
    EvalOptions { threads, plan_mode: mode, ..EvalOptions::default() }
}

/// Answer tuples as a set: plan modes agree on *what* is derived, not on
/// the order derivation happened to visit it.
fn tuple_set(rel: &separable::storage::Relation) -> BTreeSet<Tuple> {
    rel.iter().map(|row| row.to_tuple()).collect()
}

/// Semi-naive and Magic Sets on a generated scenario: cost-based and
/// source-order must derive identical answer sets at 1 and 3 threads.
fn check_eval_layer(seed: u64, mut scenario: RandomScenario) -> Result<(), TestCaseError> {
    let program = parse_program(&scenario.program, scenario.db.interner_mut())
        .expect("generated program parses");
    let query =
        parse_query(&scenario.query, scenario.db.interner_mut()).expect("generated query parses");
    let db = scenario.db;

    for threads in [1usize, 3] {
        let source =
            seminaive_with_options(&program, &db, &eval_opts(threads, PlanMode::SourceOrder))
                .expect("source-order semi-naive evaluates");
        let cost = seminaive_with_options(&program, &db, &eval_opts(threads, PlanMode::CostBased))
            .expect("cost-based semi-naive evaluates");
        let source_answers = query_answers(&query, &db, Some(&source)).expect("answers extract");
        let cost_answers = query_answers(&query, &db, Some(&cost)).expect("answers extract");
        prop_assert_eq!(
            tuple_set(&source_answers),
            tuple_set(&cost_answers),
            "seed {}: semi-naive answers diverge between plan modes at {} threads\nprogram:\n{}",
            seed,
            threads,
            scenario.program
        );

        let source_magic = magic_evaluate_with_options(
            &program,
            &query,
            &db,
            &eval_opts(threads, PlanMode::SourceOrder),
        )
        .expect("source-order magic evaluates");
        let cost_magic = magic_evaluate_with_options(
            &program,
            &query,
            &db,
            &eval_opts(threads, PlanMode::CostBased),
        )
        .expect("cost-based magic evaluates");
        prop_assert_eq!(
            tuple_set(&source_magic.answers),
            tuple_set(&cost_magic.answers),
            "seed {}: magic answers diverge between plan modes at {} threads\nprogram:\n{}",
            seed,
            threads,
            scenario.program
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn plan_modes_agree_on_separable_scenarios(seed in 0u64..10_000) {
        check_eval_layer(seed, random_separable_scenario(seed))?;
    }

    #[test]
    fn plan_modes_agree_on_linear_scenarios(seed in 0u64..10_000) {
        check_eval_layer(seed, random_linear_scenario(seed))?;
    }
}

/// Sorted display-rendered answers (the two processors intern symbols
/// independently, so raw `Sym` tuples are not comparable across them).
fn rendered(qp: &QueryProcessor, result: &separable::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> =
        result.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
    rows.sort();
    rows
}

/// Runs `query` under every strategy and thread count on two processors
/// holding the same program and EDB — one planning cost-based, one
/// compiling bodies as written — and asserts equal answers, or the same
/// strategy refusal.
fn assert_mode_parity(
    cost: &mut QueryProcessor,
    source: &mut QueryProcessor,
    query: &str,
    context: &str,
) {
    for threads in [1usize, 3] {
        for strategy in STRATEGIES {
            cost.set_exec_options(exec_opts(threads, PlanMode::CostBased));
            source.set_exec_options(exec_opts(threads, PlanMode::SourceOrder));
            let a = cost.query_with(query, StrategyChoice::Force(strategy));
            let b = source.query_with(query, StrategyChoice::Force(strategy));
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(
                    rendered(cost, &a),
                    rendered(source, &b),
                    "{context}: {strategy} diverged between plan modes at {threads} threads"
                ),
                // A refusal or divergence is fine as long as both modes
                // fail the same way (counting/HN reject cyclic data here);
                // same program, same EDB — the messages must match too.
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{context}: {strategy} failed differently between plan modes"
                ),
                (a, b) => panic!(
                    "{context}: {strategy} at {threads} threads: cost-based {:?} vs \
                     source-order {:?}",
                    a.map(|r| r.answers.len()),
                    b.map(|r| r.answers.len()),
                ),
            }
        }
    }
}

/// A three-literal recursive body over a skewed EDB, so the planner has
/// something real to reorder: `e` fans out while `f` is sparse, and
/// source order scans them in the worse sequence.
fn skewed_program() -> String {
    let mut text = String::from("t(X, Y) :- e(X, A), f(A, W), t(W, Y).\nt(X, Y) :- f(X, Y).\n");
    for i in 0..10 {
        for j in 0..4 {
            text.push_str(&format!("e(n{i}, h{j}).\n"));
        }
    }
    for j in 0..4 {
        text.push_str(&format!("f(h{j}, n{}).\n", j + 1));
    }
    text
}

#[test]
fn all_strategies_agree_between_plan_modes_on_skewed_program() {
    let text = skewed_program();
    let mut cost = QueryProcessor::new();
    cost.load(&text).unwrap();
    cost.prepare().unwrap();
    let mut source = QueryProcessor::new();
    source.load(&text).unwrap();
    source.prepare().unwrap();

    assert_mode_parity(&mut cost, &mut source, "t(n0, Y)?", "skewed fixture, bound");
    assert_mode_parity(&mut cost, &mut source, "t(X, Y)?", "skewed fixture, unbound");
}

/// The same twin processors driven through an identical mutation script:
/// each commit shifts the relation statistics (and with them the chosen
/// join orders, via drift revalidation), and after every step both modes
/// must still agree under every strategy.
#[test]
fn plan_modes_agree_through_mutation_scripts() {
    let text = skewed_program();
    let mut cost = QueryProcessor::new();
    cost.load(&text).unwrap();
    cost.prepare().unwrap();
    let mut source = QueryProcessor::new();
    source.load(&text).unwrap();
    source.prepare().unwrap();

    type Script<'a> = (&'a str, Vec<&'a str>, Vec<&'a str>);
    let steps: [Script; 4] = [
        // Invert the skew: f grows past e, flipping the cheaper-first order.
        (
            "grow f past e",
            vec![
                "f(h0, n7).",
                "f(h1, n8).",
                "f(h2, n9).",
                "f(h3, n0).",
                "f(h0, n2).",
                "f(h1, n3).",
                "f(h2, n4).",
                "f(h3, n5).",
            ],
            vec![],
        ),
        // Retract hub fan-out so e's distinct counts shrink.
        ("shrink e", vec![], vec!["e(n0, h1).", "e(n0, h2).", "e(n1, h0)."]),
        // Mixed step: rederivation pressure on both predicates at once.
        ("mixed", vec!["e(n0, h1).", "f(h9, n1)."], vec!["f(h0, n1).", "e(n2, h3)."]),
        // Retract an exit edge: derived answers must shrink identically.
        ("cut exit", vec![], vec!["f(h1, n2)."]),
    ];

    for (context, inserts, retracts) in steps {
        let a = cost.apply_mutation(&inserts, &retracts).unwrap();
        let b = source.apply_mutation(&inserts, &retracts).unwrap();
        assert_eq!(a.inserted, b.inserted, "{context}: insert counts");
        assert_eq!(a.retracted, b.retracted, "{context}: retract counts");
        assert_mode_parity(&mut cost, &mut source, "t(n0, Y)?", context);
        assert_mode_parity(&mut cost, &mut source, "t(X, Y)?", context);
    }
}
