//! Golden tests tying code artifacts back to the paper's figures and
//! worked examples:
//!
//! * Figure 1 — Procedure Expand (Example 2.1's expansion prefix);
//! * Figures 3 and 4 — the instantiated Separable schemas for Examples 1.1
//!   and 1.2;
//! * Example 2.3 — the detected class structure of both `buys` programs;
//! * Example 2.4 — the full-selection classification of the three-ary
//!   recursion;
//! * Theorem 2.1 — containment-mapping equivalence of expansion strings
//!   with equal per-class derivation projections.

use separable::ast::expand::{equivalent, Expansion};
use separable::ast::{parse_program, parse_query, Interner, RecursiveDef};
use separable::core::detect::detect_in_program;
use separable::core::plan::{build_plan, classify_selection, PlanSelection, SelectionKind};

const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                      buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                      buys(X, Y) :- perfectFor(X, Y).\n";

const EX_1_2: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                      buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                      buys(X, Y) :- perfectFor(X, Y).\n";

/// Figure 1 / Example 2.1: the expansion of Example 1.1 begins with the
/// seven strings through depth 2 listed in the paper.
#[test]
fn figure_1_expand_example_2_1() {
    let mut i = Interner::new();
    let program = parse_program(EX_1_1, &mut i).unwrap();
    let buys = i.intern("buys");
    let def = RecursiveDef::extract(&program, buys, &i).unwrap();
    let strings = Expansion::new(&def, &mut i).strings_to_depth(2);
    assert_eq!(strings.len(), 7, "p, f p, i p, ff p, fi p, if p, ii p");
    // Depth histogram 1 / 2 / 4.
    for (depth, expected) in [(0usize, 1usize), (1, 2), (2, 4)] {
        assert_eq!(strings.iter().filter(|s| s.derivation.len() == depth).count(), expected);
    }
    // Every string ends with the exit body (perfectFor).
    let p = i.intern("perfectFor");
    for s in &strings {
        assert_eq!(s.atoms.last().unwrap().pred, p);
    }
}

/// Figure 3: the instantiated algorithm for Example 1.1 has one while loop
/// with a two-member union (friend, idol), a direct seen_2 assignment, and
/// no second loop.
#[test]
fn figure_3_schema() {
    let mut i = Interner::new();
    let program = parse_program(EX_1_1, &mut i).unwrap();
    let buys = i.intern("buys");
    let sep = detect_in_program(&program, buys, &mut i).unwrap();
    let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
    let rendered = plan.render(&sep, &i);
    let expected_shape = [
        "carry_1(",
        "seen_1 := carry_1;",
        "while carry_1 not empty do",
        "carry_1 := carry_1 & friend",
        "u carry_1 & idol",
        "carry_1 := carry_1 - seen_1;",
        "seen_1 := seen_1 u carry_1;",
        "endwhile;",
        "carry_2(",
        ":= seen_1 & perfectFor",
        "ans := seen_2;",
    ];
    for fragment in expected_shape {
        assert!(rendered.contains(fragment), "missing `{fragment}` in:\n{rendered}");
    }
    assert!(!rendered.contains("while carry_2"), "Figure 3 has a single loop:\n{rendered}");
}

/// Figure 4: Example 1.2's schema has both loops — friend downward,
/// cheaper upward.
#[test]
fn figure_4_schema() {
    let mut i = Interner::new();
    let program = parse_program(EX_1_2, &mut i).unwrap();
    let buys = i.intern("buys");
    let sep = detect_in_program(&program, buys, &mut i).unwrap();
    let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
    let rendered = plan.render(&sep, &i);
    for fragment in [
        "while carry_1 not empty do",
        "carry_1 := carry_1 & friend",
        "while carry_2 not empty do",
        "carry_2 := carry_2 & cheaper",
        "carry_2 := carry_2 - seen_2;",
        "ans := seen_2;",
    ] {
        assert!(rendered.contains(fragment), "missing `{fragment}` in:\n{rendered}");
    }
    assert!(
        !rendered.contains("carry_1 & cheaper"),
        "cheaper belongs to phase 2 only:\n{rendered}"
    );
}

/// Example 2.3: the class structure of both `buys` recursions exactly as
/// the paper describes.
#[test]
fn example_2_3_class_structure() {
    let mut i = Interner::new();
    let program = parse_program(EX_1_1, &mut i).unwrap();
    let buys = i.intern("buys");
    let sep = detect_in_program(&program, buys, &mut i).unwrap();
    assert_eq!(sep.classes.len(), 1);
    assert_eq!(sep.classes[0].columns, vec![0]);
    assert_eq!(sep.classes[0].rules, vec![0, 1]);
    assert_eq!(sep.persistent, vec![1]);

    let mut i = Interner::new();
    let program = parse_program(EX_1_2, &mut i).unwrap();
    let buys = i.intern("buys");
    let sep = detect_in_program(&program, buys, &mut i).unwrap();
    assert_eq!(sep.classes.len(), 2);
    assert_eq!(sep.classes[0].columns, vec![0]);
    assert_eq!(sep.classes[1].columns, vec![1]);
    assert!(sep.persistent.is_empty());
}

/// Example 2.4: `t(c, Y, Z)?` is not a full selection (binds half of class
/// e1); `t(c, d, Z)?` and `t(X, Y, w)?` are.
#[test]
fn example_2_4_full_selection_classification() {
    let mut i = Interner::new();
    let program = parse_program(
        "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
         t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
         t(X, Y, Z) :- t0(X, Y, Z).\n",
        &mut i,
    )
    .unwrap();
    let t = i.intern("t");
    let sep = detect_in_program(&program, t, &mut i).unwrap();
    let q = parse_query("t(c, Y, Z)?", &mut i).unwrap();
    assert!(matches!(classify_selection(&sep, &q), SelectionKind::Partial { class: 0 }));
    let q = parse_query("t(c, d, Z)?", &mut i).unwrap();
    assert!(matches!(classify_selection(&sep, &q), SelectionKind::FullClass { class: 0 }));
    let q = parse_query("t(X, Y, w)?", &mut i).unwrap();
    assert!(matches!(classify_selection(&sep, &q), SelectionKind::FullClass { class: 1 }));
}

/// Theorem 2.1 on real expansions: for the two-class Example 1.2, any two
/// strings whose derivations have equal projections onto both classes
/// define the same relation (containment mappings both ways); strings with
/// different projections generally do not.
#[test]
fn theorem_2_1_on_example_1_2_expansion() {
    let mut i = Interner::new();
    let program = parse_program(EX_1_2, &mut i).unwrap();
    let buys = i.intern("buys");
    let def = RecursiveDef::extract(&program, buys, &i).unwrap();
    let strings = Expansion::new(&def, &mut i).strings_to_depth(4);
    // Classes: rule 0 (friend) and rule 1 (cheaper).
    let class_f = [0usize];
    let class_c = [1usize];
    let mut checked_equal = 0;
    let mut checked_diff = 0;
    for a in &strings {
        for b in &strings {
            if a.derivation.len() + b.derivation.len() > 6 {
                continue; // keep the O(n²) containment checks fast
            }
            let same_projections = a.derivation_projected(&class_f)
                == b.derivation_projected(&class_f)
                && a.derivation_projected(&class_c) == b.derivation_projected(&class_c);
            if same_projections {
                assert!(
                    equivalent(&a.atoms, &b.atoms, &a.distinguished),
                    "Theorem 2.1 violated for {:?} vs {:?}",
                    a.derivation,
                    b.derivation
                );
                checked_equal += 1;
            } else if a.derivation.len() != b.derivation.len() {
                // Different lengths => different class projections => the
                // strings are generally inequivalent (they are for this
                // program, where each application adds one distinct atom).
                assert!(
                    !equivalent(&a.atoms, &b.atoms, &a.distinguished),
                    "unexpected equivalence for {:?} vs {:?}",
                    a.derivation,
                    b.derivation
                );
                checked_diff += 1;
            }
        }
    }
    assert!(checked_equal > 10, "interleavings compared: {checked_equal}");
    assert!(checked_diff > 10, "length-mismatched pairs compared: {checked_diff}");
}
