//! Stratified-evaluation parity: negation and aggregates must mean the
//! same thing everywhere they are accepted, and be *refused* everywhere
//! else. Covered four ways: fixture programs (one per construct family)
//! where semi-naive and naive must agree at 1 and 3 threads under both
//! plan modes while every specialized strategy refuses; a mutation script
//! where an incrementally maintained processor must track a from-scratch
//! twin step for step; generated stratified programs (negation, `count`,
//! `min` self-recursion, stacked negation, in random combination) with
//! generated 4-step mutation scripts; and unstratifiable programs, which
//! every path must reject up front.

use proptest::prelude::*;

use separable::engine::{ProcessorError, QueryProcessor, Strategy, StrategyChoice};
use separable::eval::PlanMode;
use separable::gen::random::random_stratified_scenario;
use separable::ExecOptions;

/// Every strategy that must refuse a program using `!`/aggregates.
const SPECIALIZED: [Strategy; 7] = [
    Strategy::Bounded,
    Strategy::Separable,
    Strategy::MagicSets,
    Strategy::MagicSupplementary,
    Strategy::MagicSubsumptive,
    Strategy::Counting,
    Strategy::HenschenNaqvi,
];

/// One fixture per construct family.
const SET_DIFFERENCE: &str = "t(X, Y) :- e(X, Y).\n\
                              t(X, Y) :- e(X, Z), t(Z, Y).\n\
                              unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                              node(a). node(b). node(c). node(d).\n\
                              e(a, b). e(b, c). e(c, a).\n";
const REACH_COUNT: &str = "t(X, Y) :- e(X, Y).\n\
                           t(X, Y) :- e(X, Z), t(Z, Y).\n\
                           reach(X, count<Y>) :- t(X, Y).\n\
                           e(a, b). e(b, c). e(c, a). e(d, a).\n";
const SHORTEST: &str = "short(Y, min<C>) :- src(X), w(X, Y, C).\n\
                        short(Y, min<C>) :- short(X, D), w(X, Y, W), C = D + W.\n\
                        src(a).\n\
                        w(a, b, 1). w(b, c, 1). w(a, c, 5). w(c, a, 1).\n";

const FIXTURES: [(&str, &str, &str); 3] = [
    ("set-difference", SET_DIFFERENCE, "unreach(X, Y)?"),
    ("reach-count", REACH_COUNT, "reach(X, C)?"),
    ("shortest-path", SHORTEST, "short(Y, C)?"),
];

fn exec_opts(threads: usize, plan_mode: PlanMode) -> ExecOptions {
    ExecOptions { threads, plan_mode, ..ExecOptions::default() }
}

/// Renders answers against the processor's own interner: two processors
/// never share symbol ids, so parity compares strings, not tuples.
fn rendered(qp: &QueryProcessor, result: &separable::QueryResult) -> Vec<String> {
    let mut rows: Vec<String> =
        result.answers.iter().map(|t| t.display(qp.db().interner()).to_string()).collect();
    rows.sort();
    rows
}

fn query_rendered(qp: &mut QueryProcessor, query: &str, strategy: Strategy) -> Vec<String> {
    let r = qp
        .query_with(query, StrategyChoice::Force(strategy))
        .unwrap_or_else(|e| panic!("{strategy} refused `{query}`: {e}"));
    rendered(qp, &r)
}

#[test]
fn fixtures_agree_across_supported_strategies_threads_and_plan_modes() {
    for (context, text, query) in FIXTURES {
        let mut reference: Option<Vec<String>> = None;
        for threads in [1usize, 3] {
            for plan_mode in [PlanMode::CostBased, PlanMode::SourceOrder] {
                for strategy in [Strategy::SemiNaive, Strategy::Naive] {
                    let mut qp = QueryProcessor::new();
                    qp.load(text).unwrap();
                    qp.set_exec_options(exec_opts(threads, plan_mode));
                    let rows = query_rendered(&mut qp, query, strategy);
                    assert!(!rows.is_empty(), "{context}: empty answers");
                    match &reference {
                        None => reference = Some(rows),
                        Some(want) => assert_eq!(
                            want, &rows,
                            "{context}: {strategy} diverged at {threads} threads, {plan_mode:?}"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn specialized_strategies_refuse_every_fixture() {
    for (context, text, query) in FIXTURES {
        for strategy in SPECIALIZED {
            let mut qp = QueryProcessor::new();
            qp.load(text).unwrap();
            let err = qp.query_with(query, StrategyChoice::Force(strategy)).unwrap_err();
            let ProcessorError::StrategyUnavailable(msg) = err else {
                panic!("{context}: {strategy} should refuse, got {err}");
            };
            assert!(msg.contains("negation or aggregates"), "{context}: {strategy}: {msg}");
        }
        // Auto selection lands on stratified semi-naive.
        let mut qp = QueryProcessor::new();
        qp.load(text).unwrap();
        let r = qp.query(query).unwrap();
        assert_eq!(r.strategy, Strategy::SemiNaive, "{context}");
    }
}

#[test]
fn unstratifiable_programs_are_rejected_by_every_path() {
    let win = "p(X) :- q(X), !p(X).\nq(a).\n";
    for strategy in [Strategy::SemiNaive, Strategy::Naive] {
        let mut qp = QueryProcessor::new();
        qp.load(win).unwrap();
        let err = qp.query_with("p(X)?", StrategyChoice::Force(strategy)).unwrap_err();
        assert!(err.to_string().contains("unstratifiable"), "{strategy}: {err}");
    }
    let mut qp = QueryProcessor::new();
    qp.load(win).unwrap();
    let err = qp.query("p(X)?").unwrap_err();
    assert!(err.to_string().contains("unstratifiable"), "auto: {err}");
}

/// A hand-written mutation script over the negation + count + min skeleton:
/// the prepared processor maintains incrementally, the twin is rebuilt from
/// scratch after every step, and they must agree on every query — including
/// steps that only *shrink* the EDB, where stale negative conclusions or
/// stale aggregate groups would survive a naive delta treatment.
#[test]
fn fixture_mutation_script_maintains_incrementally() {
    let program = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, Z), t(Z, Y).\n\
                   unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                   reach(X, count<Y>) :- t(X, Y).\n\
                   short(Y, min<C>) :- src(X), w(X, Y, C).\n\
                   short(Y, min<C>) :- short(X, D), w(X, Y, W), C = D + W.\n\
                   node(a). node(b). node(c). node(d). src(a).\n\
                   e(a, b). e(b, c).\n\
                   w(a, b, 1). w(b, c, 1). w(a, c, 5).\n";
    let queries = ["unreach(X, Y)?", "reach(X, C)?", "short(Y, C)?", "t(X, Y)?"];
    type Step<'a> = (&'a str, Vec<&'a str>, Vec<&'a str>);
    let steps: [Step; 5] = [
        // Reaching d flips unreach rows off and bumps counts.
        ("connect d", vec!["e(c, d)."], vec![]),
        // A cheaper path must *lower* short(c): min groups must improve.
        ("cheaper path", vec!["w(b, c, 1).", "w(a, b, 3)."], vec![]),
        // Pure retraction: t shrinks, unreach must grow back, counts drop.
        ("cut the chain", vec![], vec!["e(b, c)."]),
        // Retract the cheap edge: short(c) must climb back to the 5-route.
        ("lose the cheap edge", vec![], vec!["w(b, c, 1)."]),
        ("mixed churn", vec!["e(d, a).", "w(c, d, 2)."], vec!["e(c, d)."]),
    ];

    let mut incremental = QueryProcessor::new();
    incremental.load(program).unwrap();
    incremental.prepare().unwrap();

    let mut applied: Vec<(Vec<&str>, Vec<&str>)> = Vec::new();
    for (context, inserts, retracts) in steps {
        incremental.apply_mutation(&inserts, &retracts).unwrap();
        applied.push((inserts, retracts));
        let mut scratch = QueryProcessor::new();
        scratch.load(program).unwrap();
        for (ins, rets) in &applied {
            scratch.apply_mutation(ins, rets).unwrap();
        }
        for query in queries {
            assert_eq!(
                query_rendered(&mut incremental, query, Strategy::SemiNaive),
                query_rendered(&mut scratch, query, Strategy::SemiNaive),
                "{context}: incremental diverged from from-scratch on `{query}`"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Generated stratified programs: semi-naive and naive agree at 1 and
    /// 3 threads on every query, and every specialized strategy refuses.
    #[test]
    fn generated_programs_agree_across_strategies(seed in 0u64..10_000) {
        let scenario = random_stratified_scenario(seed);
        for query in &scenario.queries {
            let mut reference: Option<Vec<String>> = None;
            for threads in [1usize, 3] {
                for strategy in [Strategy::SemiNaive, Strategy::Naive] {
                    let mut qp = QueryProcessor::new();
                    qp.load(&scenario.program).unwrap();
                    qp.set_exec_options(exec_opts(threads, PlanMode::CostBased));
                    let rows = query_rendered(&mut qp, query, strategy);
                    match &reference {
                        None => reference = Some(rows),
                        Some(want) => prop_assert_eq!(
                            want, &rows,
                            "seed {}: {} diverged on `{}` at {} threads\n{}",
                            seed, strategy, query, threads, scenario.program
                        ),
                    }
                }
            }
        }
        let mut qp = QueryProcessor::new();
        qp.load(&scenario.program).unwrap();
        for strategy in SPECIALIZED {
            let err = qp
                .query_with(&scenario.queries[0], StrategyChoice::Force(strategy))
                .unwrap_err();
            prop_assert!(
                matches!(err, ProcessorError::StrategyUnavailable(_)),
                "seed {}: {} accepted a stratified program: {}", seed, strategy, err
            );
        }
    }

    /// Generated mutation scripts: a prepared processor maintained through
    /// the scenario's 4 steps equals a from-scratch twin after every step,
    /// at 1 and 3 threads.
    #[test]
    fn generated_mutation_scripts_maintain_incrementally(seed in 0u64..10_000) {
        let scenario = random_stratified_scenario(seed);
        for threads in [1usize, 3] {
            let mut incremental = QueryProcessor::new();
            incremental.load(&scenario.program).unwrap();
            incremental.set_exec_options(exec_opts(threads, PlanMode::CostBased));
            incremental.prepare().unwrap();

            let mut applied: Vec<(Vec<&str>, Vec<&str>)> = Vec::new();
            for (step, (inserts, retracts)) in scenario.steps.iter().enumerate() {
                let ins: Vec<&str> = inserts.iter().map(String::as_str).collect();
                let rets: Vec<&str> = retracts.iter().map(String::as_str).collect();
                incremental.apply_mutation(&ins, &rets).unwrap();
                applied.push((ins, rets));

                let mut scratch = QueryProcessor::new();
                scratch.load(&scenario.program).unwrap();
                scratch.set_exec_options(exec_opts(threads, PlanMode::CostBased));
                for (i, r) in &applied {
                    scratch.apply_mutation(i, r).unwrap();
                }
                for query in &scenario.queries {
                    prop_assert_eq!(
                        query_rendered(&mut incremental, query, Strategy::SemiNaive),
                        query_rendered(&mut scratch, query, Strategy::SemiNaive),
                        "seed {}, step {}: incremental diverged on `{}` at {} threads\n{}",
                        seed, step, query, threads, scenario.program
                    );
                }
            }
        }
    }
}
