//! Theorem 2.1 as a property over *random* separable recursions: any two
//! expansion strings whose derivations project identically onto every
//! equivalence class define the same relation (containment mappings both
//! ways). This is the semantic foundation the Separable algorithm rests on
//! — phase 1 and phase 2 may interleave rule applications in any order.

use separable::ast::expand::{equivalent, Expansion};
use separable::ast::{parse_program, RecursiveDef};
use separable::core::detect::detect_in_program;
use separable::gen::random::random_separable_scenario;

#[test]
fn equal_class_projections_imply_equivalence_on_random_programs() {
    let mut checked_pairs = 0usize;
    for seed in 0..80 {
        let mut scenario = random_separable_scenario(seed);
        let interner = scenario.db.interner_mut();
        let program = parse_program(&scenario.program, interner).expect("parses");
        let t = interner.intern("t");
        // Class structure (rule index sets) from the detector.
        let sep = detect_in_program(&program, t, interner).expect("separable");
        let classes: Vec<Vec<usize>> = sep.classes.iter().map(|c| c.rules.clone()).collect();
        // Expansion over the *normalized* rules so indices line up with the
        // detector's classes.
        let def = RecursiveDef {
            pred: sep.pred,
            arity: sep.arity,
            recursive_rules: sep.recursive_rules.clone(),
            exit_rules: sep.exit_rules.clone(),
        };
        let depth = if sep.recursive_rules.len() > 2 { 2 } else { 3 };
        let strings = Expansion::new(&def, interner).strings_to_depth(depth);
        for (i, a) in strings.iter().enumerate() {
            for b in strings.iter().skip(i + 1) {
                if a.exit_rule != b.exit_rule {
                    continue; // Theorem 2.1 fixes the nonrecursive rule
                }
                if a.atoms.len() + b.atoms.len() > 14 {
                    continue; // keep containment search fast
                }
                let same_projections =
                    classes.iter().all(|c| a.derivation_projected(c) == b.derivation_projected(c));
                if same_projections {
                    assert!(
                        equivalent(&a.atoms, &b.atoms, &a.distinguished),
                        "seed {seed}: Theorem 2.1 violated for derivations {:?} vs {:?}\n{}",
                        a.derivation,
                        b.derivation,
                        scenario.program
                    );
                    checked_pairs += 1;
                }
            }
        }
    }
    assert!(
        checked_pairs > 30,
        "expected to exercise many interleaving pairs, got {checked_pairs}"
    );
}

/// The converse direction is not a theorem, but the *algorithm's* view is:
/// reordering a derivation into phase-1-then-phase-2 canonical order (as
/// Lemma 3.3 does) preserves the relation.
#[test]
fn canonical_reordering_preserves_relations() {
    for seed in 0..25 {
        let mut scenario = random_separable_scenario(seed);
        let interner = scenario.db.interner_mut();
        let program = parse_program(&scenario.program, interner).expect("parses");
        let t = interner.intern("t");
        let sep = detect_in_program(&program, t, interner).expect("separable");
        if sep.classes.len() < 2 {
            continue;
        }
        let classes: Vec<Vec<usize>> = sep.classes.iter().map(|c| c.rules.clone()).collect();
        let def = RecursiveDef {
            pred: sep.pred,
            arity: sep.arity,
            recursive_rules: sep.recursive_rules.clone(),
            exit_rules: sep.exit_rules.clone(),
        };
        let strings = Expansion::new(&def, interner).strings_to_depth(3);
        for s in &strings {
            if s.derivation.len() < 2 || s.atoms.len() > 6 {
                continue;
            }
            // Canonical order: class-0 applications first, then the rest,
            // preserving relative order (D_1(s) D_2(s) ... as in Lemma 3.3).
            let mut canonical: Vec<usize> = Vec::new();
            for c in &classes {
                canonical.extend(s.derivation.iter().copied().filter(|r| c.contains(r)));
            }
            if canonical == s.derivation {
                continue;
            }
            let twin = strings
                .iter()
                .find(|x| x.derivation == canonical && x.exit_rule == s.exit_rule)
                .expect("canonical twin exists at same depth");
            assert!(
                equivalent(&s.atoms, &twin.atoms, &s.distinguished),
                "seed {seed}: canonical reordering changed the relation ({:?} vs {:?})",
                s.derivation,
                canonical
            );
        }
    }
}
