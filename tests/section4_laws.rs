//! Quantitative checks of Section 4's complexity claims at concrete sizes:
//! the *growth rates* (not absolute constants) of the relations each
//! algorithm constructs.

use separable::gen::paper::{
    counting_worst_buys, magic_worst_buys, spk_counting_witness, spk_magic_witness,
};
use sepra_bench::{run_counting, run_magic, run_separable};

/// Example 1.2 worked example: Magic constructs exactly the n² `buys@bf`
/// tuples (plus smaller relations); Separable stays ≤ n + 1 and monadic.
#[test]
fn magic_is_quadratic_separable_linear_on_example_1_2() {
    let mut magic_sizes = Vec::new();
    let mut sep_sizes = Vec::new();
    for n in [20usize, 40, 80] {
        let inst = magic_worst_buys(n);
        let magic = run_magic(&inst).expect("magic");
        let sep = run_separable(&inst).expect("separable");
        assert_eq!(magic.answers, sep.answers);
        assert_eq!(magic.answers, n, "all n products are bought");
        magic_sizes.push(magic.max_relation);
        sep_sizes.push(sep.max_relation);
    }
    // Exact counts: magic's largest relation is the (n+1) x n buys@bf grid
    // (n+1 people including tom, n products).
    assert_eq!(magic_sizes, vec![21 * 20, 41 * 40, 81 * 80]);
    // Separable: seen_1 = n people (+1 for the b-side chain is separate).
    for (i, &n) in [20usize, 40, 80].iter().enumerate() {
        assert!(sep_sizes[i] <= n + 1, "separable should be O(n): n={n} size={}", sep_sizes[i]);
    }
    // Doubling n roughly quadruples magic's relation but only doubles
    // separable's.
    assert!(magic_sizes[1] >= 3 * magic_sizes[0]);
    assert!(sep_sizes[1] <= 2 * sep_sizes[0] + 2);
}

/// Example 1.1 worked example: Counting's count relation has exactly
/// 2^(n+1) - 1 tuples (every rule sequence of length ≤ n); Separable ≤ n+1.
#[test]
fn counting_is_exponential_separable_linear_on_example_1_1() {
    for n in [6usize, 8, 10] {
        let inst = counting_worst_buys(n);
        let counting = run_counting(&inst).expect("counting");
        let sep = run_separable(&inst).expect("separable");
        assert_eq!(counting.answers, sep.answers);
        assert_eq!(
            counting.stats.relation_sizes["count"],
            (1usize << (n + 1)) - 1,
            "count size at n={n}"
        );
        assert!(sep.max_relation <= n + 1);
    }
}

/// Lemma 4.2: on the S_p^k witness Magic materializes all n^k t0 tuples
/// into the rewritten t; Separable's largest relation is n^{k-1}.
#[test]
fn lemma_4_2_magic_nk() {
    for (k, n) in [(2usize, 12usize), (2, 24), (3, 8)] {
        let inst = spk_magic_witness(k, 2, n);
        let magic = run_magic(&inst).expect("magic");
        let sep = run_separable(&inst).expect("separable");
        assert_eq!(magic.answers, sep.answers);
        assert!(
            magic.max_relation >= n.pow(k as u32),
            "magic should reach n^k = {} at k={k} n={n}, got {}",
            n.pow(k as u32),
            magic.max_relation
        );
        let bound = n.pow((k - 1).max(1) as u32);
        assert!(
            sep.max_relation <= bound + 1,
            "separable should stay at n^max(w,k-w) = {bound} at k={k} n={n}, got {}",
            sep.max_relation
        );
    }
}

/// Lemma 4.3: on the all-identical-chains witness, Counting's count
/// relation sums p^i over levels 0..n-1; Separable stays ≤ n.
#[test]
fn lemma_4_3_counting_pn() {
    for (p, n) in [(2usize, 8usize), (3, 6)] {
        let inst = spk_counting_witness(2, p, n);
        let counting = run_counting(&inst).expect("counting");
        let sep = run_separable(&inst).expect("separable");
        assert_eq!(counting.answers, sep.answers);
        // Levels 0..n-1 over an (n-1)-edge chain: sum_{i=0}^{n-1} p^i.
        let expected: usize = (0..n).map(|i| p.pow(i as u32)).sum();
        assert_eq!(counting.stats.relation_sizes["count"], expected, "count size at p={p} n={n}");
        assert!(sep.max_relation <= n, "separable O(n) at p={p} n={n}");
    }
}

/// Lemma 4.1: across the S_p^k family, every relation Separable constructs
/// is within n^max(w, k-w) (+1 slack for the chain's extra endpoint).
#[test]
fn lemma_4_1_separable_bound() {
    for (k, p, n) in [(1usize, 1usize, 50usize), (1, 3, 50), (2, 2, 16), (3, 2, 8), (4, 1, 5)] {
        let inst = spk_magic_witness(k, p, n);
        let sep = run_separable(&inst).expect("separable");
        let w = 1usize;
        let bound = n.pow(w.max(k - w) as u32) + 1;
        assert!(sep.max_relation <= bound, "k={k} p={p} n={n}: {} > {bound}", sep.max_relation);
    }
}

/// The focusing property: Separable never touches constants unreachable
/// from the selection (same "focus" as Magic, unlike plain semi-naive).
#[test]
fn separable_is_focused() {
    use separable::gen::paper::Instance;
    use separable::storage::Database;
    use sepra_bench::run_seminaive;

    let mut db = Database::new();
    // Two disconnected components; query from the small one.
    separable::gen::graphs::add_chain(&mut db, "e", "x", 3);
    separable::gen::graphs::add_chain(&mut db, "e", "y", 500);
    let inst = Instance {
        program: separable::gen::programs::transitive_closure().to_string(),
        query: "t(x0, Y)?".to_string(),
        db,
    };
    let sep = run_separable(&inst).expect("separable");
    let semi = run_seminaive(&inst).expect("seminaive");
    assert_eq!(sep.answers, semi.answers);
    assert_eq!(sep.answers, 3);
    assert!(sep.max_relation <= 5, "focused: {}", sep.max_relation);
    assert!(semi.max_relation > 100_000, "unfocused baseline: {}", semi.max_relation);
}
