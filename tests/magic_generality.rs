//! Magic Sets (basic and supplementary) must agree with semi-naive ground
//! truth on *general* linear recursions, including programs with shifting
//! variables that the separable detector rejects — the fallback path of the
//! query processor has to be correct on exactly these.

use separable::ast::{parse_program, parse_query};
use separable::eval::{query_answers, seminaive};
use separable::gen::random::random_linear_scenario;
use separable::rewrite::{magic_evaluate, magic_evaluate_supplementary};
use separable::storage::Relation;

fn assert_same_tuples(label: &str, seed: u64, a: &Relation, expected: &Relation) {
    assert_eq!(a.len(), expected.len(), "{label} seed {seed}: cardinality");
    for t in a.iter() {
        assert!(expected.contains_row(t), "{label} seed {seed}: wrong tuple");
    }
}

#[test]
fn magic_agrees_with_seminaive_on_general_linear_programs() {
    let mut shifted = 0usize;
    for seed in 0..150 {
        let mut scenario = random_linear_scenario(seed);
        let program = parse_program(&scenario.program, scenario.db.interner_mut())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", scenario.program));
        let query = parse_query(&scenario.query, scenario.db.interner_mut()).expect("query parses");
        let db = scenario.db;
        let t = query.atom.pred;
        let is_separable = {
            let mut db2 = db.clone();
            separable::core::detect::detect_in_program(&program, t, db2.interner_mut()).is_ok()
        };
        if !is_separable {
            shifted += 1;
        }
        let derived = seminaive(&program, &db).expect("semi-naive evaluates");
        let expected = query_answers(&query, &db, Some(&derived)).expect("answers");
        let basic = magic_evaluate(&program, &query, &db)
            .unwrap_or_else(|e| panic!("seed {seed}: magic failed: {e}\n{}", scenario.program));
        assert_same_tuples("magic", seed, &basic.answers, &expected);
        let sup = magic_evaluate_supplementary(&program, &query, &db)
            .unwrap_or_else(|e| panic!("seed {seed}: magic-sup failed: {e}"));
        assert_same_tuples("magic-sup", seed, &sup.answers, &expected);
    }
    assert!(shifted > 20, "expected many non-separable programs in the sample, got {shifted}");
}
