//! Property-based cross-validation: on randomly generated separable
//! programs and databases, the Separable algorithm, Magic Sets, and
//! semi-naive evaluation must return identical answer sets.
//!
//! Scenarios are separable by construction (random class partitions,
//! random connected rule bodies) and frequently cyclic, so this also
//! exercises termination (Lemma 3.4) and the Lemma 2.1 decomposition
//! (queries bind random column subsets, often partially).

use proptest::prelude::*;

use separable::ast::{parse_program, parse_query};
use separable::core::detect::detect_in_program;
use separable::core::evaluate::SeparableEvaluator;
use separable::core::exec::ExtraRelations;
use separable::eval::{query_answers, seminaive};
use separable::gen::random::random_separable_scenario;
use separable::rewrite::magic_evaluate;

fn check_scenario(seed: u64) -> Result<(), TestCaseError> {
    let mut scenario = random_separable_scenario(seed);
    let program = parse_program(&scenario.program, scenario.db.interner_mut())
        .expect("generated program parses");
    let query =
        parse_query(&scenario.query, scenario.db.interner_mut()).expect("generated query parses");
    let db = scenario.db;

    // Ground truth: semi-naive.
    let derived = seminaive(&program, &db).expect("semi-naive evaluates");
    let expected = query_answers(&query, &db, Some(&derived)).expect("answers extract");

    // The recursion must be detected as separable.
    let mut db2 = db.clone();
    let sep = detect_in_program(&program, query.atom.pred, db2.interner_mut())
        .unwrap_or_else(|e| panic!("seed {seed}: not separable: {e}\n{}", scenario.program));

    let evaluator = SeparableEvaluator::new(sep);
    let outcome = evaluator
        .evaluate(&query, &db2, &ExtraRelations::default())
        .unwrap_or_else(|e| panic!("seed {seed}: separable failed: {e}\n{}", scenario.program));
    prop_assert_eq!(
        &outcome.answers,
        &expected,
        "seed {}: separable {} vs semi-naive {}\nprogram:\n{}\nquery: {}",
        seed,
        outcome.answers.len(),
        expected.len(),
        scenario.program,
        scenario.query
    );

    // Magic Sets must agree as well.
    let magic = magic_evaluate(&program, &query, &db).expect("magic evaluates");
    prop_assert_eq!(
        magic.answers.len(),
        expected.len(),
        "seed {}: magic cardinality mismatch",
        seed
    );
    for t in magic.answers.iter() {
        prop_assert!(expected.contains_row(t), "seed {seed}: magic produced a wrong tuple");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn all_algorithms_agree_on_random_scenarios(seed in 0u64..10_000) {
        check_scenario(seed)?;
    }
}

/// A fixed sweep, independent of proptest's sampling, so every one of the
/// first 200 seeds is exercised deterministically in CI.
#[test]
fn first_two_hundred_seeds_agree() {
    for seed in 0..200 {
        check_scenario(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
