//! Why-provenance tests: every answer of a full selection carries a
//! justification `J(a)` (the derivation from the proof of Lemma 3.1), and
//! replaying that derivation step by step — independently of the tracker —
//! re-produces the answer. This is a constructive check of Lemma 3.1:
//! each justification really is the derivation of an expansion string that
//! yields the answer.

use separable::ast::{parse_program, parse_query, Query};
use separable::core::detect::detect_in_program;
use separable::core::evaluate::SeparableEvaluator;
use separable::core::justify::Justification;
use separable::core::plan::{
    build_plan, classify_selection, PlanSelection, SelectionKind, AUX_CARRY1, AUX_CARRY2, AUX_SEEN1,
};
use separable::eval::{ConjPlan, IndexCache, RelKey, RelStore};
use separable::gen::random::random_acyclic_full_selection_scenario;
use separable::storage::{Database, Relation, Tuple, Value};
use separable::Interner;

/// Applies one compiled carry-extension step to a single tuple, returning
/// the set of produced tuples.
fn step_once(
    plan: &ConjPlan,
    carry_key: u32,
    input: &Tuple,
    db: &Database,
    out_arity: usize,
) -> Relation {
    let mut carry = Relation::new(input.arity());
    carry.insert(input.clone());
    let mut store = RelStore::new();
    for (p, r) in db.relations() {
        store.bind(RelKey::Pred(p), r);
    }
    store.bind(RelKey::Aux(carry_key), &carry);
    let indexes = IndexCache::new(); // unprepared: full-scan fallback is fine here
    let mut out = Relation::new(out_arity);
    plan.execute(&store, &indexes, &[], &mut |row| {
        out.insert(Tuple::new(row.to_vec()));
    });
    out
}

/// Replays a justification: walks the recorded rule sequence from the
/// selection constants and checks the answer is reachable through exactly
/// those rules.
fn replay(
    sep: &separable::core::detect::SeparableRecursion,
    query: &Query,
    answer: &Tuple,
    j: &Justification,
    db: &Database,
) -> bool {
    let selection = match classify_selection(sep, query) {
        SelectionKind::FullClass { class } => PlanSelection::Class(class),
        SelectionKind::Persistent { bound } => {
            let consts = bound
                .iter()
                .map(|&c| {
                    let separable::ast::Term::Const(k) = query.atom.terms[c] else {
                        panic!("bound position is constant")
                    };
                    (c, Value::from_const(k).expect("representable"))
                })
                .collect();
            PlanSelection::Persistent(consts)
        }
        other => panic!("unexpected selection kind {other:?}"),
    };
    let plan = build_plan(sep, &selection).expect("plan builds");
    let width1 = plan.fixed_cols.len();

    // Phase 1 replay: frontier after applying the recorded rules in order.
    let mut frontier1 = Relation::new(width1);
    if let Some(p1) = &plan.phase1 {
        let root: Vec<Value> = plan
            .fixed_cols
            .iter()
            .map(|&c| {
                let separable::ast::Term::Const(k) = query.atom.terms[c] else {
                    panic!("fixed col is constant")
                };
                Value::from_const(k).expect("representable")
            })
            .collect();
        frontier1.insert(Tuple::from(root));
        for &rule in &j.phase1_rules {
            let step = &p1
                .steps
                .iter()
                .find(|(ri, _)| *ri == rule)
                .expect("justified rule is in the class")
                .1;
            let mut next = Relation::new(width1);
            for t in frontier1.iter() {
                next.union_in_place(&step_once(step, AUX_CARRY1, &t.to_tuple(), db, width1));
            }
            frontier1 = next;
        }
        // The recorded seen_1 tuple must be reachable via this rule string.
        let seen1 = j.seen1_tuple.as_ref().expect("class selection has seen_1");
        if !frontier1.contains(seen1) {
            return false;
        }
        frontier1 = Relation::from_tuples(width1, [seen1.clone()]);
    } else if j.seen1_tuple.is_some() || !j.phase1_rules.is_empty() {
        return false;
    }

    // Seed replay through the recorded exit rule.
    let width2 = plan.phase2.columns.len();
    let seed_plan = &plan.seed[j.exit_rule];
    let mut frontier2 = Relation::new(width2);
    {
        let mut store = RelStore::new();
        for (p, r) in db.relations() {
            store.bind(RelKey::Pred(p), r);
        }
        if plan.phase1.is_some() {
            store.bind(RelKey::Aux(AUX_SEEN1), &frontier1);
        }
        let indexes = IndexCache::new();
        seed_plan.execute(&store, &indexes, &[], &mut |row| {
            frontier2.insert(Tuple::new(row.to_vec()));
        });
    }

    // Phase 2 replay.
    for &rule in &j.phase2_rules {
        let step = &plan
            .phase2
            .steps
            .iter()
            .find(|(ri, _)| *ri == rule)
            .expect("justified rule participates in phase 2")
            .1;
        let mut next = Relation::new(width2);
        for t in frontier2.iter() {
            next.union_in_place(&step_once(step, AUX_CARRY2, &t.to_tuple(), db, width2));
        }
        frontier2 = next;
    }
    // The answer's phase-2 projection must be produced.
    let rest = answer.project(&plan.phase2.columns);
    frontier2.contains(&rest)
}

fn check_program(program_src: &str, facts: &str, pred: &str, query_src: &str) {
    let mut db = Database::new();
    db.load_fact_text(facts).unwrap();
    let program = parse_program(program_src, db.interner_mut()).unwrap();
    let p = db.intern(pred);
    let sep = detect_in_program(&program, p, db.interner_mut()).unwrap();
    let query = parse_query(query_src, db.interner_mut()).unwrap();
    let evaluator = SeparableEvaluator::new(sep.clone());
    let (outcome, justifications) =
        evaluator.evaluate_with_justifications(&query, &db, &Default::default()).unwrap();
    assert_eq!(
        justifications.len(),
        outcome.answers.len(),
        "every answer of {query_src} must be justified"
    );
    for (answer, j) in &justifications {
        assert!(outcome.answers.contains(answer));
        assert!(
            replay(&sep, &query, answer, j, &db),
            "replay failed for {answer:?} via {j:?} on {query_src}"
        );
    }
}

const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                      buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                      buys(X, Y) :- perfectFor(X, Y).\n";

const EX_1_2: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                      buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                      buys(X, Y) :- perfectFor(X, Y).\n";

#[test]
fn justifications_replay_on_example_1_1() {
    check_program(
        EX_1_1,
        "friend(tom, sue). friend(sue, joe). idol(tom, liz). idol(liz, joe).\n\
         perfectFor(joe, widget). perfectFor(liz, tonic). perfectFor(sue, book).",
        "buys",
        "buys(tom, Y)?",
    );
}

#[test]
fn justifications_replay_on_example_1_2_both_directions() {
    let facts = "friend(tom, sue). friend(sue, joe).\n\
                 perfectFor(joe, widget). cheaper(bargain, widget). cheaper(steal, bargain).";
    check_program(EX_1_2, facts, "buys", "buys(tom, Y)?");
    check_program(EX_1_2, facts, "buys", "buys(X, steal)?");
}

#[test]
fn justifications_replay_on_cyclic_data() {
    check_program(
        EX_1_1,
        "friend(a, b). friend(b, c). friend(c, a). idol(b, a).\n\
         perfectFor(c, thing).",
        "buys",
        "buys(a, Y)?",
    );
}

#[test]
fn justifications_replay_on_random_acyclic_scenarios() {
    for seed in 0..60 {
        let mut scenario = random_acyclic_full_selection_scenario(seed);
        let program = parse_program(&scenario.program, scenario.db.interner_mut()).unwrap();
        let query = parse_query(&scenario.query, scenario.db.interner_mut()).unwrap();
        let db = scenario.db;
        let mut db2 = db.clone();
        let sep = detect_in_program(&program, query.atom.pred, db2.interner_mut()).unwrap();
        let evaluator = SeparableEvaluator::new(sep.clone());
        let Ok((outcome, justifications)) =
            evaluator.evaluate_with_justifications(&query, &db2, &Default::default())
        else {
            continue; // partial selections are out of scope for provenance
        };
        assert_eq!(justifications.len(), outcome.answers.len(), "seed {seed}");
        for (answer, j) in &justifications {
            assert!(
                replay(&sep, &query, answer, j, &db2),
                "seed {seed}: replay failed for {answer:?} via {j:?}"
            );
        }
    }
}

#[test]
fn justification_rendering_names_rules() {
    let mut db = Database::new();
    db.load_fact_text(
        "friend(tom, sue). friend(sue, joe). perfectFor(joe, widget).\n\
         idol(x, y).",
    )
    .unwrap();
    let program = parse_program(EX_1_1, db.interner_mut()).unwrap();
    let buys = db.intern("buys");
    let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
    let query = parse_query("buys(tom, Y)?", db.interner_mut()).unwrap();
    let evaluator = SeparableEvaluator::new(sep.clone());
    let (_, justifications) =
        evaluator.evaluate_with_justifications(&query, &db, &Default::default()).unwrap();
    let (_, j) = justifications.iter().next().expect("one answer");
    let rendered = j.render(&sep, db.interner());
    assert!(rendered.contains("friend"), "{rendered}");
    assert!(rendered.contains("[exit 0]"), "{rendered}");
    // tom -> sue -> joe takes two friend steps.
    assert_eq!(j.phase1_rules, vec![0, 0]);
}

/// Partial selections refuse provenance (documented limitation).
#[test]
fn partial_selection_provenance_is_unsupported() {
    let mut db = Database::new();
    db.load_fact_text("a(c, d, e, f). t0(e, f, w). b(w, w2).").unwrap();
    let program = parse_program(
        "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
         t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
         t(X, Y, Z) :- t0(X, Y, Z).\n",
        db.interner_mut(),
    )
    .unwrap();
    let t = db.intern("t");
    let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
    let query = parse_query("t(c, Y, Z)?", db.interner_mut()).unwrap();
    let evaluator = SeparableEvaluator::new(sep);
    assert!(evaluator.evaluate_with_justifications(&query, &db, &Default::default()).is_err());
}

/// Tracked evaluation returns exactly the same answers as the untracked
/// path (tracking must not change semantics).
#[test]
fn tracked_and_untracked_agree() {
    let facts = "friend(a, b). friend(b, c). idol(a, c).\n\
                 perfectFor(c, w1). perfectFor(b, w2).";
    let mut db = Database::new();
    db.load_fact_text(facts).unwrap();
    let program = parse_program(EX_1_1, db.interner_mut()).unwrap();
    let buys = db.intern("buys");
    let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
    for query_src in ["buys(a, Y)?", "buys(X, w1)?"] {
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        let evaluator = SeparableEvaluator::new(sep.clone());
        let plain = evaluator.evaluate(&query, &db, &Default::default()).unwrap();
        let (tracked, _) =
            evaluator.evaluate_with_justifications(&query, &db, &Default::default()).unwrap();
        assert_eq!(plain.answers, tracked.answers, "{query_src}");
    }
}

/// Silence the unused-import warning for Interner (used via types above).
#[allow(dead_code)]
fn _interner_witness(_: &Interner) {}
