//! `sepra route`: a query router in front of one primary and N replicas.
//!
//! The router is deliberately dumb — it terminates client connections,
//! classifies each request line by its top-level key, and relays raw
//! lines to a backend over the same protocol:
//!
//! * `insert` / `retract` → the primary (replicas reject mutations with a
//!   `read_only_replica` redirect anyway; routing saves the round trip).
//! * `stats` → answered locally: an aggregate of every backend's health,
//!   generation, and lag behind the primary.
//! * `sync` → refused (`bad_request`); followers must sync from the
//!   primary directly, not through the router.
//! * everything else (queries) → round-robin across **healthy** replicas,
//!   retrying on the next replica if the chosen one fails mid-request,
//!   and falling back to the primary when no replica is usable.
//!
//! Health is maintained by a single prober thread that sends
//! `{"stats": true}` to every backend on an interval and records the
//! reported generation — which is what makes `{"stats": true}` against
//! the router a one-stop lag dashboard. A relay failure also marks the
//! backend unhealthy immediately, so the prober's interval bounds
//! recovery time, not failure detection.
//!
//! The router holds no state a restart could lose: clients see
//! generation-stamped responses from the backends themselves, so
//! consistency (`min_generation`) survives routing to any replica.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::json::{self, escape, Json};

/// How often the accept loop and idle workers re-check shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Per-read poll on client connections (so workers notice shutdown).
const READ_POLL: Duration = Duration::from_millis(200);
/// Largest request line relayed; matches the server's own cap.
const MAX_REQUEST_BYTES: usize = 64 * 1024;
/// Connect timeout for backend connections (relay and probes).
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// A backend gets this long to answer a relayed request. Generous:
/// queries carry their own server-side deadline budget.
const BACKEND_TIMEOUT: Duration = Duration::from_secs(60);
/// A probe is quick; an unresponsive backend is unhealthy.
const PROBE_TIMEOUT: Duration = Duration::from_secs(2);
/// A client connection idle this long is closed.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration for [`route`].
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// Address to listen on, e.g. `127.0.0.1:7411`.
    pub addr: String,
    /// The primary's `HOST:PORT` (mutations go here).
    pub primary: String,
    /// Replica `HOST:PORT`s (queries round-robin across the healthy ones).
    pub replicas: Vec<String>,
    /// Worker threads (0 ⇒ 1).
    pub threads: usize,
    /// Health-probe interval.
    pub probe_interval: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Primary,
    Replica,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Replica => "replica",
        }
    }
}

#[derive(Debug)]
struct Backend {
    addr: String,
    role: Role,
    /// Last probe (or relay attempt) outcome. Backends start unhealthy
    /// and are promoted by the first successful probe.
    healthy: AtomicBool,
    /// Last generation the backend reported via `{"stats": true}`.
    generation: AtomicU64,
}

#[derive(Debug)]
struct RouterState {
    backends: Vec<Backend>,
    /// Index into `backends` of the primary (always 0, by construction).
    next_replica: AtomicUsize,
    shutdown: Arc<AtomicBool>,
}

impl RouterState {
    fn primary(&self) -> &Backend {
        &self.backends[0]
    }

    fn replicas(&self) -> &[Backend] {
        &self.backends[1..]
    }
}

/// Writes `line` plus its newline as ONE stream write: a trailing
/// newline in its own small write gets held by Nagle behind the peer's
/// delayed ACK, adding a flat ~40 ms per round trip.
fn write_framed(mut stream: &TcpStream, line: &str) -> std::io::Result<()> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream.write_all(framed.as_bytes())
}

/// Sends one request line to `addr` on a fresh connection and returns the
/// single response line.
fn one_shot(addr: &str, line: &str, timeout: Duration) -> std::io::Result<String> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("{addr} resolved to no address")))?;
    let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    write_framed(&stream, line)?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "backend closed without answering",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// Probes one backend: `{"stats": true}` on a fresh connection; healthy
/// iff it answers with a generation.
fn probe(backend: &Backend) {
    let healthy = match one_shot(&backend.addr, r#"{"stats": true}"#, PROBE_TIMEOUT) {
        Ok(response) => match json::parse(&response) {
            Ok(v) => {
                if let Some(generation) = v.get("generation").and_then(Json::as_u64) {
                    backend.generation.store(generation, Ordering::SeqCst);
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        },
        Err(_) => false,
    };
    backend.healthy.store(healthy, Ordering::SeqCst);
}

fn error_line(kind: &str, message: &str) -> String {
    format!(r#"{{"error": {{"kind": "{}", "message": "{}"}}}}"#, escape(kind), escape(message))
}

/// What a request line is, for routing purposes.
enum Kind {
    Mutation,
    Stats,
    Query,
}

fn classify(line: &str) -> Result<Kind, String> {
    let v = json::parse(line).map_err(|e| format!("invalid request JSON: {e}"))?;
    if v.get("insert").is_some() || v.get("retract").is_some() {
        Ok(Kind::Mutation)
    } else if v.get("stats").is_some() {
        Ok(Kind::Stats)
    } else if v.get("sync").is_some() {
        Err("sync streams must connect to the primary directly, not the router".into())
    } else {
        Ok(Kind::Query)
    }
}

/// The locally answered `{"stats": true}`: router identity plus every
/// backend's health, generation, and lag behind the primary.
fn stats_line(state: &RouterState) -> String {
    let primary_generation = state.primary().generation.load(Ordering::SeqCst);
    let healthy = state.backends.iter().filter(|b| b.healthy.load(Ordering::SeqCst)).count();
    let mut router = json::ObjWriter::new();
    router
        .num("backends", state.backends.len() as u64)
        .num("healthy", healthy as u64)
        .num("primary_generation", primary_generation);
    let mut backends = String::from("[");
    for (i, backend) in state.backends.iter().enumerate() {
        if i > 0 {
            backends.push(',');
        }
        let generation = backend.generation.load(Ordering::SeqCst);
        let mut b = json::ObjWriter::new();
        b.str("addr", &backend.addr)
            .str("role", backend.role.name())
            .raw("healthy", if backend.healthy.load(Ordering::SeqCst) { "true" } else { "false" })
            .num("generation", generation)
            .num("lag", primary_generation.saturating_sub(generation));
        backends.push_str(&b.finish());
    }
    backends.push(']');
    let mut out = json::ObjWriter::new();
    out.raw("router", &router.finish()).raw("backends", &backends);
    out.finish()
}

/// A worker's cache of open backend connections, keyed by address.
#[derive(Default)]
struct Conns {
    open: HashMap<String, BufReader<TcpStream>>,
}

impl Conns {
    /// Relays `line` to `addr`, reusing this worker's open connection if
    /// any. One retry on a fresh connection absorbs a backend restart
    /// that left a stale socket behind.
    fn relay(&mut self, addr: &str, line: &str) -> std::io::Result<String> {
        if let Some(conn) = self.open.get_mut(addr) {
            match Self::send_on(conn, line) {
                Ok(response) => return Ok(response),
                Err(_) => {
                    self.open.remove(addr);
                }
            }
        }
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("{addr} resolved to no address")))?;
        let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(BACKEND_TIMEOUT))?;
        stream.set_write_timeout(Some(BACKEND_TIMEOUT))?;
        stream.set_nodelay(true)?;
        let mut conn = BufReader::new(stream);
        let response = Self::send_on(&mut conn, line)?;
        self.open.insert(addr.to_string(), conn);
        Ok(response)
    }

    fn send_on(conn: &mut BufReader<TcpStream>, line: &str) -> std::io::Result<String> {
        write_framed(conn.get_ref(), line)?;
        let mut response = String::new();
        if conn.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed without answering",
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

fn route_one(state: &RouterState, conns: &mut Conns, line: &str) -> String {
    let kind = match classify(line) {
        Ok(kind) => kind,
        Err(message) => return error_line("bad_request", &message),
    };
    match kind {
        Kind::Stats => stats_line(state),
        Kind::Mutation => {
            let primary = state.primary();
            match conns.relay(&primary.addr, line) {
                Ok(response) => response,
                Err(e) => {
                    primary.healthy.store(false, Ordering::SeqCst);
                    error_line(
                        "unavailable",
                        &format!("primary {} did not answer: {e}", primary.addr),
                    )
                }
            }
        }
        Kind::Query => {
            // Round-robin over healthy replicas; a shared cursor spreads
            // load across workers. Unhealthy replicas are skipped, a
            // replica that fails mid-relay is marked down and the next
            // one tried, and the primary is the last resort.
            let replicas = state.replicas();
            let mut tried = 0;
            if !replicas.is_empty() {
                let start = state.next_replica.fetch_add(1, Ordering::SeqCst);
                for offset in 0..replicas.len() {
                    let backend = &replicas[(start + offset) % replicas.len()];
                    if !backend.healthy.load(Ordering::SeqCst) {
                        continue;
                    }
                    tried += 1;
                    match conns.relay(&backend.addr, line) {
                        Ok(response) => return response,
                        Err(_) => backend.healthy.store(false, Ordering::SeqCst),
                    }
                }
            }
            let primary = state.primary();
            match conns.relay(&primary.addr, line) {
                Ok(response) => response,
                Err(e) => {
                    primary.healthy.store(false, Ordering::SeqCst);
                    error_line(
                        "unavailable",
                        &format!(
                            "no backend answered ({tried} replicas tried, primary {}: {e})",
                            primary.addr
                        ),
                    )
                }
            }
        }
    }
}

/// One client connection: line-in, line-out, same framing as `sepra
/// serve`, until EOF, idle timeout, oversize line, or shutdown.
fn handle_connection(state: &RouterState, conns: &mut Conns, stream: TcpStream) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut idle = Duration::ZERO;
    let mut buf = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        buf.clear();
        match reader.by_ref().take(MAX_REQUEST_BYTES as u64 + 1).read_until(b'\n', &mut buf) {
            Ok(0) => return,
            Ok(n) if n > MAX_REQUEST_BYTES => {
                let _ = write_framed(&stream, &error_line("bad_request", "request too large"));
                return;
            }
            Ok(_) => {
                idle = Duration::ZERO;
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let response = route_one(state, conns, line);
                if write_framed(&stream, &response).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle += READ_POLL;
                if idle >= IDLE_TIMEOUT {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// The router's accept loop and worker pool, parameterized over the
/// listener and shutdown flag so tests can drive it in-process. Returns
/// once the flag is raised and every worker has drained.
pub fn run_router(listener: TcpListener, opts: &RouteOptions, shutdown: Arc<AtomicBool>) {
    let mut backends = vec![Backend {
        addr: opts.primary.clone(),
        role: Role::Primary,
        healthy: AtomicBool::new(false),
        generation: AtomicU64::new(0),
    }];
    for addr in &opts.replicas {
        backends.push(Backend {
            addr: addr.clone(),
            role: Role::Replica,
            healthy: AtomicBool::new(false),
            generation: AtomicU64::new(0),
        });
    }
    let state = Arc::new(RouterState {
        backends,
        next_replica: AtomicUsize::new(0),
        shutdown: Arc::clone(&shutdown),
    });

    // One prober for all backends: a synchronous first pass so the pool
    // starts with real health, then an interval loop.
    for backend in &state.backends {
        probe(backend);
    }
    let prober_state = Arc::clone(&state);
    let probe_interval = opts.probe_interval;
    let prober = std::thread::Builder::new().name("sepra-route-probe".into()).spawn(move || {
        // Sleep in short slices so shutdown is prompt, probing only when
        // a full interval has elapsed.
        let slice = probe_interval.min(Duration::from_millis(100));
        let mut last_probe = std::time::Instant::now();
        while !prober_state.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(slice);
            if last_probe.elapsed() < probe_interval {
                continue;
            }
            for backend in &prober_state.backends {
                if prober_state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                probe(backend);
            }
            last_probe = std::time::Instant::now();
        }
    });

    if listener.set_nonblocking(true).is_err() {
        shutdown.store(true, Ordering::SeqCst);
    }
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    let mut workers = Vec::new();
    for i in 0..opts.threads.max(1) {
        let state = Arc::clone(&state);
        let queue = Arc::clone(&queue);
        let worker_shutdown = Arc::clone(&shutdown);
        let handle =
            std::thread::Builder::new().name(format!("sepra-route-{i}")).spawn(move || {
                let mut conns = Conns::default();
                let (lock, cvar) = &*queue;
                loop {
                    let stream = {
                        let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                        loop {
                            if let Some(stream) = q.pop_front() {
                                break Some(stream);
                            }
                            if worker_shutdown.load(Ordering::SeqCst) {
                                break None;
                            }
                            let (guard, _) = cvar
                                .wait_timeout(q, POLL_INTERVAL)
                                .unwrap_or_else(|e| e.into_inner());
                            q = guard;
                        }
                    };
                    match stream {
                        Some(stream) => handle_connection(&state, &mut conns, stream),
                        None => return,
                    }
                }
            });
        if let Ok(handle) = handle {
            workers.push(handle);
        }
    }

    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let (lock, cvar) = &*queue;
                lock.lock().unwrap_or_else(|e| e.into_inner()).push_back(stream);
                cvar.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    shutdown.store(true, Ordering::SeqCst);
    queue.1.notify_all();
    for handle in workers {
        let _ = handle.join();
    }
    let _ = prober.map(|p| p.join());
}

/// Binds, prints `sepra route listening on ADDR (N workers)`, watches
/// stdin for `quit`, and runs until shutdown. Returns a process exit
/// code.
pub fn route(opts: &RouteOptions) -> Result<(), std::io::Error> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    println!(
        "sepra route listening on {addr} ({} workers, 1 primary, {} replicas)",
        opts.threads.max(1),
        opts.replicas.len()
    );
    let _ = std::io::stdout().flush();
    let shutdown = Arc::new(AtomicBool::new(false));
    let stdin_shutdown = Arc::clone(&shutdown);
    let _ = std::thread::Builder::new().name("sepra-route-stdin".into()).spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if matches!(line.trim(), "quit" | "shutdown" | "exit") {
                        stdin_shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
    });
    run_router(listener, opts, shutdown);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_request_lines() {
        assert!(matches!(classify(r#"{"insert": ["t(a)."]}"#), Ok(Kind::Mutation)));
        assert!(matches!(classify(r#"{"retract": ["t(a)."]}"#), Ok(Kind::Mutation)));
        assert!(matches!(classify(r#"{"stats": true}"#), Ok(Kind::Stats)));
        assert!(matches!(classify(r#"{"query": "t(X)?"}"#), Ok(Kind::Query)));
        assert!(matches!(classify(r#"{"query": "t(X)?", "min_generation": 4}"#), Ok(Kind::Query)));
        assert!(classify(r#"{"sync": {"from_generation": 0}}"#).is_err());
        assert!(classify("not json").is_err());
    }

    /// A scripted backend that answers every line with a fixed response.
    fn fixed_backend(response: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if writeln!(&stream, "{response}").is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn routes_mutations_to_primary_and_queries_to_replicas() {
        let primary = fixed_backend(r#"{"from": "primary", "generation": 30}"#);
        let replica = fixed_backend(r#"{"from": "replica", "generation": 28}"#);
        let state = RouterState {
            backends: vec![
                Backend {
                    addr: primary,
                    role: Role::Primary,
                    healthy: AtomicBool::new(true),
                    generation: AtomicU64::new(30),
                },
                Backend {
                    addr: replica,
                    role: Role::Replica,
                    healthy: AtomicBool::new(true),
                    generation: AtomicU64::new(28),
                },
            ],
            next_replica: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
        };
        let mut conns = Conns::default();
        let answer = route_one(&state, &mut conns, r#"{"insert": ["t(a)."]}"#);
        assert!(answer.contains("primary"), "{answer}");
        let answer = route_one(&state, &mut conns, r#"{"query": "t(X)?"}"#);
        assert!(answer.contains("replica"), "{answer}");
        // Stats are answered locally, with lag relative to the primary.
        let stats = route_one(&state, &mut conns, r#"{"stats": true}"#);
        let v = json::parse(&stats).unwrap();
        let backends = match v.get("backends") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("expected backend list, got {other:?}"),
        };
        assert_eq!(backends.len(), 2);
        assert_eq!(backends[1].get("lag").and_then(Json::as_u64), Some(2));
        // Sync through the router is refused.
        let refused = route_one(&state, &mut conns, r#"{"sync": {"from_generation": 0}}"#);
        assert!(refused.contains("bad_request"), "{refused}");
    }

    #[test]
    fn fails_over_to_the_next_replica_and_then_the_primary() {
        let primary = fixed_backend(r#"{"from": "primary", "generation": 30}"#);
        let live = fixed_backend(r#"{"from": "replica-b", "generation": 30}"#);
        // A dead replica: bound then dropped, so connections are refused.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let state = RouterState {
            backends: vec![
                Backend {
                    addr: primary,
                    role: Role::Primary,
                    healthy: AtomicBool::new(true),
                    generation: AtomicU64::new(30),
                },
                Backend {
                    addr: dead.clone(),
                    role: Role::Replica,
                    healthy: AtomicBool::new(true),
                    generation: AtomicU64::new(30),
                },
                Backend {
                    addr: live,
                    role: Role::Replica,
                    healthy: AtomicBool::new(true),
                    generation: AtomicU64::new(30),
                },
            ],
            next_replica: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
        };
        let mut conns = Conns::default();
        // Drive enough queries that the round-robin cursor lands on the
        // dead replica at least once; every answer must still arrive.
        for _ in 0..4 {
            let answer = route_one(&state, &mut conns, r#"{"query": "t(X)?"}"#);
            assert!(answer.contains("replica-b"), "{answer}");
        }
        // The dead replica was marked down on first failure.
        assert!(!state.backends[1].healthy.load(Ordering::SeqCst));
        // With every replica down, queries fall back to the primary.
        state.backends[2].healthy.store(false, Ordering::SeqCst);
        let answer = route_one(&state, &mut conns, r#"{"query": "t(X)?"}"#);
        assert!(answer.contains("primary"), "{answer}");
    }
}
