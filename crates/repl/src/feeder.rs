//! The primary side of a sync stream: serve one follower from the data
//! directory until the connection drops.
//!
//! The feeder reads the same files durability writes — `ckpt-*.sepra`
//! snapshots and the `wal.log` tail — and never touches the in-memory
//! database, so any number of followers can sync without contending on
//! the server's master lock. Correctness rests on two disciplines:
//!
//! 1. **Lease before read.** Shipping a checkpoint holds a
//!    [`LeaseSet`] read-lease on its generation, so a concurrent
//!    checkpoint roll on the primary cannot prune the file mid-transfer.
//!    If pruning wins the race *before* the lease lands (the file is
//!    listed, then gone), the feeder just re-lists and ships the newer
//!    snapshot.
//! 2. **Re-list after poll, before forwarding.** A checkpoint roll
//!    truncates the WAL; if the log then regrows past the length the
//!    feeder last saw, a naive tail would forward post-roll records while
//!    the pre-roll ones it never read are gone — a silent gap the
//!    follower could never detect, because its floor would advance past
//!    the checkpoint generation that covers the missing records. So after
//!    every poll the feeder lists checkpoints *again* and discards the
//!    whole batch if a snapshot newer than the pre-poll floor appeared,
//!    resyncing from that snapshot instead. This is sound because
//!    durability writes the checkpoint file strictly before truncating
//!    the log: any truncation is visible as a checkpoint by the time the
//!    truncated records could be missed.

use std::io::{self, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sepra_wal::checkpoint::{decode_checkpoint, list_checkpoints};
use sepra_wal::{LeaseSet, WalFollower};

use crate::protocol::{
    render_checkpoint, render_chunk, render_error, render_ping, render_record, CHUNK_BYTES,
};

/// How often the WAL tail is re-read for new records.
const TAIL_POLL: Duration = Duration::from_millis(25);
/// How often a quiet stream still sends a ping (liveness + lag signal).
const PING_EVERY: Duration = Duration::from_secs(1);
/// A follower that cannot absorb a frame for this long is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// What the feeder streams from: the durable data directory plus the
/// lease table shared with the checkpoint pruner.
#[derive(Debug, Clone)]
pub struct SyncSource {
    /// The primary's `--data-dir` (holds `wal.log` and `ckpt-*.sepra`).
    pub data_dir: PathBuf,
    /// Read-leases honored by `prune_checkpoints` on this directory.
    pub leases: LeaseSet,
}

impl SyncSource {
    fn wal_path(&self) -> PathBuf {
        self.data_dir.join("wal.log")
    }
}

fn send_line(out: &mut BufWriter<&TcpStream>, line: &str) -> io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()
}

/// Writes a terminal error frame and returns (used for refusals like
/// syncing from a non-durable server).
pub fn refuse_sync(stream: &TcpStream, kind: &str, message: &str) -> io::Result<()> {
    let mut out = BufWriter::new(stream);
    send_line(&mut out, &render_error(kind, message))
}

/// The newest checkpoint strictly above `floor` that validates, leased
/// and fully read. `None` when the follower's floor already covers every
/// snapshot (the WAL tail alone suffices).
fn newest_checkpoint_above(source: &SyncSource, floor: u64) -> io::Result<Option<(u64, Vec<u8>)>> {
    // Re-list on each attempt: pruning may win the race between listing a
    // file and leasing it, in which case a newer snapshot exists.
    loop {
        let listed = list_checkpoints(&source.data_dir).map_err(wal_to_io)?;
        let mut candidates: Vec<(u64, PathBuf)> =
            listed.into_iter().filter(|(g, _)| *g > floor).collect();
        if candidates.is_empty() {
            return Ok(None);
        }
        let mut raced = false;
        while let Some((generation, path)) = candidates.pop() {
            let _lease = source.leases.acquire(generation);
            match std::fs::read(&path) {
                Ok(bytes) => {
                    // Validate before shipping: a corrupt snapshot (torn
                    // by a crashed writer) is skipped, same as recovery.
                    if decode_checkpoint(&bytes, &path).is_ok() {
                        return Ok(Some((generation, bytes)));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Pruned between list and lease; the directory has
                    // moved on — re-list rather than walk stale entries.
                    raced = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if !raced {
            return Ok(None);
        }
    }
}

fn ship_checkpoint(
    out: &mut BufWriter<&TcpStream>,
    generation: u64,
    bytes: &[u8],
) -> io::Result<()> {
    let chunks = bytes.chunks(CHUNK_BYTES).count().max(1) as u64;
    send_line(out, &render_checkpoint(generation, chunks))?;
    if bytes.is_empty() {
        return send_line(out, &render_chunk(0, 1, b""));
    }
    for (index, chunk) in bytes.chunks(CHUNK_BYTES).enumerate() {
        send_line(out, &render_chunk(index as u64, chunks, chunk))?;
    }
    Ok(())
}

fn wal_to_io(e: sepra_wal::WalError) -> io::Error {
    io::Error::other(e.to_string())
}

/// Serves one follower's sync stream until the connection drops, the
/// follower goes away, or `shutdown` is raised. `current_generation`
/// reports the primary's committed database generation for ping frames.
pub fn stream_to_follower(
    stream: &TcpStream,
    from_generation: u64,
    source: &SyncSource,
    shutdown: &AtomicBool,
    current_generation: &dyn Fn() -> u64,
) -> io::Result<()> {
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    // The follower never writes back, so there are no ACK-bearing
    // responses for Nagle to piggyback on: without nodelay each flushed
    // record can sit behind the follower's delayed ACK, inflating
    // replication lag by tens of milliseconds per record.
    stream.set_nodelay(true)?;
    let mut out = BufWriter::new(stream);
    // The opening ping tells the follower where the primary stands, so it
    // can report honest lag before the first byte of state arrives.
    send_line(&mut out, &render_ping(current_generation()))?;
    let mut last_ping = Instant::now();
    let mut floor = from_generation;
    'resync: loop {
        if let Some((generation, bytes)) = newest_checkpoint_above(source, floor)? {
            ship_checkpoint(&mut out, generation, &bytes)?;
            floor = generation;
        }
        let mut follower = WalFollower::new(&source.wal_path(), floor);
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            let pre_floor = follower.floor();
            let poll = follower.poll().map_err(wal_to_io)?;
            // The gap check (discipline 2 above): a snapshot newer than
            // the pre-poll floor means the log may have been truncated
            // and regrown under this poll — the batch cannot be trusted
            // to be contiguous with what the follower has.
            let newest_ckpt = list_checkpoints(&source.data_dir)
                .map_err(wal_to_io)?
                .last()
                .map(|(g, _)| *g)
                .unwrap_or(0);
            if poll.rotated || newest_ckpt > pre_floor {
                floor = pre_floor;
                continue 'resync;
            }
            for record in &poll.records {
                send_line(&mut out, &render_record(record.generation, &record.payload))?;
            }
            if !poll.records.is_empty() {
                last_ping = Instant::now();
            } else {
                if last_ping.elapsed() >= PING_EVERY {
                    send_line(&mut out, &render_ping(current_generation()))?;
                    last_ping = Instant::now();
                }
                std::thread::sleep(TAIL_POLL);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_wal::checkpoint::{checkpoint_file_name, prune_checkpoints, write_checkpoint_file};
    use std::path::Path;

    fn write_ckpt(dir: &Path, generation: u64, body: &[u8]) {
        write_checkpoint_file(&dir.join(checkpoint_file_name(generation)), generation, body)
            .unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sepra-feeder-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn picks_newest_valid_checkpoint_above_the_floor() {
        let dir = temp_dir("newest");
        write_ckpt(&dir, 10, b"ten");
        write_ckpt(&dir, 20, b"twenty");
        // A corrupt newer file is skipped, same as recovery would.
        std::fs::write(dir.join("ckpt-00000000000000000030.sepra"), b"garbage").unwrap();
        let source = SyncSource { data_dir: dir.clone(), leases: LeaseSet::new() };
        let (generation, bytes) = newest_checkpoint_above(&source, 5).unwrap().unwrap();
        assert_eq!(generation, 20);
        assert_eq!(decode_checkpoint(&bytes, Path::new("t")).unwrap(), (20, b"twenty".to_vec()));
        // A floor at or past the newest valid snapshot needs no shipping.
        assert!(newest_checkpoint_above(&source, 20).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipping_holds_the_lease_that_pruning_honors() {
        let dir = temp_dir("lease");
        write_ckpt(&dir, 10, b"ten");
        let source = SyncSource { data_dir: dir.clone(), leases: LeaseSet::new() };
        let lease = source.leases.acquire(10);
        write_ckpt(&dir, 20, b"twenty");
        write_ckpt(&dir, 30, b"thirty");
        prune_checkpoints(&dir, 1, &source.leases).unwrap();
        let left: Vec<u64> = list_checkpoints(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(left, vec![10, 30], "the leased snapshot must survive the roll");
        drop(lease);
        prune_checkpoints(&dir, 1, &source.leases).unwrap();
        let left: Vec<u64> = list_checkpoints(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(left, vec![30]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
