//! WAL-shipping replication for `sepra serve`.
//!
//! PR 5's durability layer produces exactly what read replication needs —
//! a generation-stamped, CRC'd mutation log bounded by atomic checkpoint
//! snapshots — and this crate streams it. One process is the **primary**
//! (durable, accepts mutations); any number of **followers** sync from it
//! over the same line-delimited-JSON TCP transport queries use, and a
//! **router** spreads client traffic across them:
//!
//! * [`protocol`] — the wire frames: a follower opens with
//!   `{"sync": {"from_generation": G}}` and the primary answers with a
//!   chunked checkpoint (when the follower is behind the newest snapshot)
//!   followed by a live WAL tail, every record carrying the same CRC the
//!   on-disk log stores, so integrity is verified end to end.
//! * [`feeder`] — the primary side: serves one follower's sync stream
//!   from the data directory, holding a checkpoint read-lease while
//!   streaming so a concurrent checkpoint roll cannot prune the file
//!   mid-transfer.
//! * [`client`] — the follower side: connects, drives the stream, and
//!   yields validated sync events for the server to apply.
//! * [`router`] — `sepra route`: forwards mutations to the primary,
//!   round-robins queries across healthy replicas with
//!   retry-on-next-replica, health-probes every backend, and aggregates
//!   backend generations/lag under `{"stats": true}`.
//! * [`json`] / [`base64`] — the dependency-free wire encoding both ends
//!   share (the JSON module started life in `sepra-server`, which
//!   re-exports it unchanged).
//!
//! The replication invariant mirrors durability's: **a follower's state
//! is always the exact EDB of some committed-generation prefix of the
//! primary** — checkpoint bodies and deltas are applied through the same
//! decode + `apply_delta_mutation` path recovery uses, never a partial
//! frame, never out of order.

pub mod base64;
pub mod client;
pub mod feeder;
pub mod json;
pub mod protocol;
pub mod router;

pub use client::{SyncClient, SyncEvent};
pub use feeder::{stream_to_follower, SyncSource};
pub use protocol::Frame;
pub use router::{route, run_router, RouteOptions};
