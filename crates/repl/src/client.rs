//! The follower side of a sync stream: connect to the primary, drive the
//! frame protocol, and yield validated events.
//!
//! The client owns all wire-level suspicion so the server's replica loop
//! only ever sees whole, checksummed units: a [`SyncEvent::Checkpoint`]
//! is a fully reassembled, container-validated snapshot body (the same
//! bytes recovery would read from disk), and a [`SyncEvent::Record`] has
//! already passed the WAL's own `crc32(generation ‖ payload)`. Any
//! malformed frame, short read, or chunk-sequence violation surfaces as
//! an `io::Error`; the caller's answer to every error is the same —
//! reconnect and resync from its current generation, which is always safe
//! because application is idempotent at generation granularity.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use sepra_wal::checkpoint::decode_checkpoint;

use crate::protocol::{parse_frame, render_sync_request, Frame};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Pings arrive every second on a quiet stream; ten silent seconds means
/// the primary is gone.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One validated unit of the sync stream.
#[derive(Debug, PartialEq)]
pub enum SyncEvent {
    /// A whole snapshot at `generation`; `body` is the decoded checkpoint
    /// body (an encoded database frame), container CRC already checked.
    Checkpoint {
        /// The snapshot's generation stamp.
        generation: u64,
        /// The checkpoint body (codec database frame).
        body: Vec<u8>,
    },
    /// One committed mutation's encoded `EdbDelta`, CRC-verified.
    Record {
        /// The database generation the record's commit reached.
        generation: u64,
        /// The encoded delta frame, byte-identical to the primary's WAL.
        payload: Vec<u8>,
    },
    /// Liveness: the primary's current committed generation.
    Ping {
        /// The primary's committed database generation.
        generation: u64,
    },
}

/// A live sync connection to a primary.
#[derive(Debug)]
pub struct SyncClient {
    reader: BufReader<TcpStream>,
}

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

impl SyncClient {
    /// Connects to `addr` and requests the stream from `from_generation`
    /// (the follower's current generation; 0 for an empty follower).
    pub fn connect(addr: &str, from_generation: u64) -> io::Result<SyncClient> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| bad_data(format!("{addr} resolved to no address")))?;
        let stream = TcpStream::connect_timeout(&resolved, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_write_timeout(Some(READ_TIMEOUT))?;
        let mut request = render_sync_request(from_generation);
        request.push('\n');
        (&stream).write_all(request.as_bytes())?;
        Ok(SyncClient { reader: BufReader::new(stream) })
    }

    fn next_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "sync stream closed"));
        }
        parse_frame(line.trim_end()).map_err(bad_data)
    }

    /// The next validated event. Blocks until a frame arrives (bounded by
    /// the read timeout — a healthy primary pings at least every second).
    pub fn next_event(&mut self) -> io::Result<SyncEvent> {
        match self.next_frame()? {
            Frame::Ping { generation } => Ok(SyncEvent::Ping { generation }),
            Frame::Record { generation, payload } => Ok(SyncEvent::Record { generation, payload }),
            Frame::Error { kind, message } => {
                Err(io::Error::other(format!("primary refused sync: {kind}: {message}")))
            }
            Frame::Chunk { .. } => Err(bad_data("chunk frame outside a checkpoint announcement")),
            Frame::Checkpoint { generation, chunks } => {
                let mut bytes = Vec::new();
                for expect in 0..chunks {
                    match self.next_frame()? {
                        Frame::Chunk { index, of, data } if index == expect && of == chunks => {
                            bytes.extend_from_slice(&data);
                        }
                        other => {
                            return Err(bad_data(format!(
                                "expected chunk {expect}/{chunks} of checkpoint {generation}, \
                                 got {other:?}"
                            )))
                        }
                    }
                }
                let (stamped, body) = decode_checkpoint(&bytes, Path::new("sync-stream"))
                    .map_err(|e| bad_data(format!("streamed checkpoint invalid: {e}")))?;
                if stamped != generation {
                    return Err(bad_data(format!(
                        "checkpoint announced generation {generation} but its header says \
                         {stamped}"
                    )));
                }
                Ok(SyncEvent::Checkpoint { generation, body })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feeder::{refuse_sync, stream_to_follower, SyncSource};
    use crate::protocol::{render_checkpoint, render_chunk, render_ping, render_record};
    use sepra_wal::checkpoint::{checkpoint_file_name, encode_checkpoint, write_checkpoint_file};
    use sepra_wal::log::WalWriter;
    use sepra_wal::{FsyncPolicy, LeaseSet};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    /// Spawns a raw byte server that speaks exactly `lines`, returning
    /// its address.
    fn scripted_primary(lines: Vec<String>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut request = String::new();
            reader.read_line(&mut request).unwrap();
            for line in lines {
                (&stream).write_all(line.as_bytes()).unwrap();
                (&stream).write_all(b"\n").unwrap();
            }
            // Hold the connection open briefly so the client reads
            // everything before EOF.
            std::thread::sleep(Duration::from_millis(200));
        });
        addr
    }

    #[test]
    fn assembles_checkpoints_and_verifies_records() {
        let file = encode_checkpoint(7, b"snapshot body");
        let (a, b) = file.split_at(file.len() / 2);
        let addr = scripted_primary(vec![
            render_ping(9),
            render_checkpoint(7, 2),
            render_chunk(0, 2, a),
            render_chunk(1, 2, b),
            render_record(8, b"delta"),
        ]);
        let mut client = SyncClient::connect(&addr, 0).unwrap();
        assert_eq!(client.next_event().unwrap(), SyncEvent::Ping { generation: 9 });
        assert_eq!(
            client.next_event().unwrap(),
            SyncEvent::Checkpoint { generation: 7, body: b"snapshot body".to_vec() }
        );
        assert_eq!(
            client.next_event().unwrap(),
            SyncEvent::Record { generation: 8, payload: b"delta".to_vec() }
        );
    }

    #[test]
    fn rejects_out_of_order_chunks_and_mislabeled_checkpoints() {
        let file = encode_checkpoint(7, b"snapshot body");
        let addr = scripted_primary(vec![
            render_checkpoint(7, 2),
            render_chunk(1, 2, &file), // wrong index
        ]);
        let mut client = SyncClient::connect(&addr, 0).unwrap();
        assert!(client.next_event().is_err());

        let addr = scripted_primary(vec![
            render_checkpoint(99, 1), // header says 7
            render_chunk(0, 1, &file),
        ]);
        let mut client = SyncClient::connect(&addr, 0).unwrap();
        assert!(client.next_event().unwrap_err().to_string().contains("header says"));
    }

    #[test]
    fn surfaces_error_frames_as_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut request = String::new();
            reader.read_line(&mut request).unwrap();
            refuse_sync(&stream, "sync_unavailable", "serve has no --data-dir").unwrap();
            std::thread::sleep(Duration::from_millis(200));
        });
        let mut client = SyncClient::connect(&addr, 0).unwrap();
        let err = client.next_event().unwrap_err().to_string();
        assert!(err.contains("sync_unavailable"), "{err}");
    }

    /// End-to-end over a real socket: a feeder serving a real data
    /// directory (checkpoint + WAL tail) delivers exactly the snapshot
    /// and the post-snapshot records, in order.
    #[test]
    fn feeder_to_client_round_trip() {
        let dir = std::env::temp_dir().join(format!("sepra-sync-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        write_checkpoint_file(&dir.join(checkpoint_file_name(5)), 5, b"state at five").unwrap();
        let mut writer = WalWriter::open(&dir.join("wal.log"), FsyncPolicy::Never).unwrap();
        writer.append(6, b"delta six").unwrap();
        writer.append(9, b"delta nine").unwrap();
        drop(writer);

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let source = SyncSource { data_dir: dir.clone(), leases: LeaseSet::new() };
        let shutdown = Arc::new(AtomicBool::new(false));
        let feeder_shutdown = Arc::clone(&shutdown);
        let feeder = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut request = String::new();
            reader.read_line(&mut request).unwrap();
            // The real server parses the request line; here the script is
            // fixed: stream from generation 0.
            let _ = stream_to_follower(&stream, 0, &source, &feeder_shutdown, &|| 9);
        });

        let mut client = SyncClient::connect(&addr, 0).unwrap();
        assert_eq!(client.next_event().unwrap(), SyncEvent::Ping { generation: 9 });
        assert_eq!(
            client.next_event().unwrap(),
            SyncEvent::Checkpoint { generation: 5, body: b"state at five".to_vec() }
        );
        assert_eq!(
            client.next_event().unwrap(),
            SyncEvent::Record { generation: 6, payload: b"delta six".to_vec() }
        );
        assert_eq!(
            client.next_event().unwrap(),
            SyncEvent::Record { generation: 9, payload: b"delta nine".to_vec() }
        );
        shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        feeder.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
