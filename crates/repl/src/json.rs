//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace deliberately has no serde (offline build, vendored shims
//! only), and the protocol is small: requests are flat objects of strings,
//! numbers, and booleans, and responses are built with a string writer.
//! This module provides exactly that — a recursive-descent parser for
//! arbitrary JSON values and an escaping writer matching the escape set
//! used by `sepra_engine::render_answers_json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are held as f64 (the protocol only uses integers
    /// small enough for this to be exact).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object keys sorted for deterministic iteration; duplicate keys keep
    /// the last value, as in most JSON implementations.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a nonnegative integer, if it is one.
    ///
    /// Bounded at 2^53: above that not every integer has an f64
    /// representation, so the value held here may silently differ from the
    /// digits the client sent (the parser rejects such literals outright;
    /// the guard keeps constructed values honest too).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= MAX_EXACT_INT => Some(n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// The largest magnitude (2^53) below which every integer is exactly
/// representable as an f64. Integer literals beyond it are rejected by the
/// parser and never produced by [`render`] without an exponent marker.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4(self.pos + 1)?;
                            if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err("lone low surrogate in \\u escape".into());
                            }
                            if (0xD800..=0xDBFF).contains(&hi) {
                                // A high surrogate must be immediately
                                // followed by an escaped low surrogate —
                                // JSON's encoding of astral-plane
                                // characters. Lone surrogates stay errors.
                                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                                {
                                    return Err("lone high surrogate in \\u escape".into());
                                }
                                let lo = self.hex4(self.pos + 7)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err("lone high surrogate in \\u escape".into());
                                }
                                let code = 0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(code).expect("paired surrogates form a scalar"),
                                );
                                self.pos += 10;
                            } else {
                                out.push(char::from_u32(hi).expect("non-surrogate BMP code point"));
                                self.pos += 4;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`, as in a `\uXXXX` escape.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                self.pos += 1;
            } else if matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                integral = false;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let value =
            text.parse::<f64>().map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        // A pure-integer literal past ±2^53 would pass the old f64 parse
        // but silently come back as a *different* integer; reject rather
        // than hand the caller quietly corrupted digits. (Fractions and
        // exponents opt in to f64 semantics explicitly.)
        if integral {
            match text.parse::<i128>() {
                Ok(n) if n.unsigned_abs() <= 1 << 53 => {}
                _ => {
                    return Err(format!(
                        "integer `{text}` at byte {start} exceeds 2^53 and cannot be held exactly"
                    ))
                }
            }
        }
        Ok(Json::Num(value))
    }
}

/// Renders a [`Json`] value back to wire text; `parse(&render(v))`
/// reconstructs `v` for every finite value (the round-trip property the
/// protocol tests exercise).
pub fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => render_number(*n, out),
        Json::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":", escape(key));
                render_into(value, out);
            }
            out.push('}');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no non-finite numbers (only reachable here by parsing
        // an overflowing exponent like 1e999); `null` is the least-bad
        // spelling.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        let _ = write!(out, "{n:.0}");
    } else if n.fract() == 0.0 {
        // Rust's default f64 Display never uses exponents, so a large
        // integral value would render as a digit string the (stricter)
        // parser rejects; exponent form keeps it both exact and parseable.
        let _ = write!(out, "{n:e}");
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Escapes a string for embedding in a JSON document (same escape set as
/// the engine's answer renderer).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental writer for one JSON object: `{"k":v,...}` with the
/// commas managed for the caller.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    members: usize,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{"), members: 0 }
    }

    fn key(&mut self, key: &str) {
        if self.members > 0 {
            self.buf.push(',');
        }
        self.members += 1;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Adds an integer member.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a pre-rendered JSON fragment (array, object, …) verbatim.
    pub fn raw(&mut self, key: &str, rendered: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(rendered);
        self
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_request_object() {
        let v = parse(r#" {"query": "t(a, Y)?", "timeout_ms": 250, "stats": true} "#).unwrap();
        assert_eq!(v.get("query").and_then(Json::as_str), Some("t(a, Y)?"));
        assert_eq!(v.get("timeout_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("stats").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a": [1, "x\ny", {"b": null}], "c": -2.5}"#).unwrap();
        let arr = match v.get("a") {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Str("x\ny".into()));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c"), Some(&Json::Num(-2.5)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn integer_literals_are_exact_or_rejected() {
        // 2^53 is the last exactly-representable power step: accept it and
        // its negation, reject one past either.
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(9007199254740992));
        assert_eq!(parse("-9007199254740992").unwrap(), Json::Num(-9007199254740992.0));
        assert!(parse("9007199254740993").is_err());
        assert!(parse("-9007199254740993").is_err());
        assert!(parse("18446744073709551615").is_err()); // u64::MAX
        assert!(parse(&"9".repeat(60)).is_err()); // beyond i128 too
                                                  // A fraction or exponent opts in to f64 semantics explicitly.
        assert_eq!(parse("9007199254740993.0").unwrap(), Json::Num(9007199254740992.0));
        assert_eq!(parse("9e15").unwrap(), Json::Num(9e15));
        // `as_u64` itself refuses constructed values past the boundary
        // (2^53 + 2 is the next f64 above 2^53).
        assert_eq!(Json::Num(9007199254740994.0).as_u64(), None);
    }

    #[test]
    fn decodes_surrogate_pairs_and_rejects_lone_surrogates() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
        assert_eq!(parse(r#""a𝄞b""#).unwrap().as_str(), Some("a\u{1D11E}b"));
        // BMP escapes still decode directly.
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        for bad in [
            r#""\ud83d""#,       // lone high at end of string
            r#""\ud83dx""#,      // high followed by a plain character
            r#""\ud83d\n""#,     // high followed by a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low
            r#""\ude00\ud83d""#, // pair in the wrong order
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn render_round_trips_values() {
        let v = parse(
            r#"{"a": [1, "x\ny", {"b": null}, true, false], "c": -2.5, "d": "😀", "e": 9e300}"#,
        )
        .unwrap();
        assert_eq!(parse(&render(&v)).unwrap(), v);
        // Large integral f64s render in exponent form the parser accepts.
        assert_eq!(render(&Json::Num(1e300)), "1e300");
        assert_eq!(parse(&render(&Json::Num(1e300))).unwrap(), Json::Num(1e300));
        assert_eq!(render(&Json::Num(5.0)), "5");
        assert_eq!(render(&Json::Num(f64::INFINITY)), "null");
        // Control characters render as \u escapes and parse back.
        assert_eq!(render(&Json::Str("\u{1}".into())), r#""\u0001""#);
        assert_eq!(parse(r#""\u0001""#).unwrap(), Json::Str("\u{1}".into()));
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(&format!("\"{}\"", escape("a\"b\\c\nd"))).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn obj_writer_renders_members_in_insertion_order() {
        let mut w = ObjWriter::new();
        w.str("s", "x\"y").num("n", 7).raw("a", "[1,2]");
        assert_eq!(w.finish(), r#"{"s":"x\"y","n":7,"a":[1,2]}"#);
    }
}
