//! Minimal base64 (RFC 4648, standard alphabet, padded) for carrying
//! binary checkpoint and delta frames inside the line-delimited JSON
//! transport. The workspace takes no external dependencies, so this is
//! the usual 60-line hand-rolled codec: encode for the feeder, strict
//! decode (padding required, no whitespace) for the sync client.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as padded base64.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(word >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(word >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(word >> 6) as usize & 0x3F] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[word as usize & 0x3F] as char } else { '=' });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded base64; rejects bad lengths, foreign characters, and
/// misplaced padding (a corrupted frame must fail loudly, not truncate).
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced base64 padding".into());
        }
        let mut word = 0u32;
        for &c in &quad[..4 - pad] {
            let v = value_of(c).ok_or_else(|| format!("invalid base64 byte {c:#04x}"))?;
            word = (word << 6) | v;
        }
        word <<= 6 * pad as u32;
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn round_trips_all_byte_values() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        for len in [0, 1, 2, 3, 63, 255, 256] {
            let slice = &bytes[..len.min(bytes.len())];
            assert_eq!(decode(&encode(slice)).unwrap(), slice, "len {len}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode("Zg=").is_err()); // bad length
        assert!(decode("Zg==Zm8=").is_err()); // padding mid-stream
        assert!(decode("Z♥==").is_err()); // foreign bytes
        assert!(decode("====").is_err()); // too much padding
    }
}
