//! The sync wire protocol: line-delimited JSON frames over the same TCP
//! transport queries use.
//!
//! A follower opens a connection and sends one request line:
//!
//! ```text
//! -> {"sync": {"from_generation": G}}
//! ```
//!
//! The primary then streams frames, one JSON object per line, until the
//! connection drops:
//!
//! ```text
//! <- {"ping": {"generation": 42}}                 liveness + current primary generation
//! <- {"checkpoint": {"generation": 40, "chunks": 3}}
//! <- {"chunk": {"index": 0, "of": 3, "data": "<base64>"}}   ... x3: the ckpt-*.sepra file bytes
//! <- {"record": {"generation": 41, "crc": C, "payload": "<base64>"}}
//! <- {"error": {"kind": ..., "message": ...}}     terminal
//! ```
//!
//! A `checkpoint` announcement (always followed by exactly `chunks`
//! chunk frames) may appear **mid-stream**, not just first: when the
//! primary's log is truncated under the feeder faster than the tail
//! could be shipped, the feeder falls back to re-shipping the newest
//! snapshot rather than ever forwarding a gapped record sequence. The
//! chunks carry the raw checkpoint *file* — container header, CRC and
//! all — so the follower validates it with the same
//! [`decode_checkpoint`](sepra_wal::checkpoint::decode_checkpoint) the
//! recovery path uses. Each `record` carries the WAL's own checksum
//! (`crc32(generation ‖ payload)`): what the follower applies is
//! verified end to end against what the primary's log committed, not
//! just against transport corruption.

use crate::base64;
use crate::json::{self, Json, ObjWriter};
use sepra_wal::crc::Crc32;

/// Raw bytes per chunk frame. Base64 inflates by 4/3, keeping the line
/// comfortably under the server's 64 KiB request cap (frames travel
/// primary→follower, but symmetry keeps every line small and debuggable).
pub const CHUNK_BYTES: usize = 44 * 1024;

/// One parsed frame of the sync stream (primary → follower).
#[derive(Debug, PartialEq)]
pub enum Frame {
    /// Liveness marker carrying the primary's current database
    /// generation, sent immediately on sync start and periodically while
    /// the tail is quiet — a follower derives its lag from it.
    Ping {
        /// The primary's committed database generation.
        generation: u64,
    },
    /// A checkpoint file follows in exactly `chunks` chunk frames.
    Checkpoint {
        /// The snapshot's generation stamp.
        generation: u64,
        /// How many chunk frames follow.
        chunks: u64,
    },
    /// One piece of the announced checkpoint file.
    Chunk {
        /// 0-based position within the announced checkpoint.
        index: u64,
        /// Total chunks announced (repeated for self-description).
        of: u64,
        /// The decoded bytes.
        data: Vec<u8>,
    },
    /// One committed WAL record; the CRC has been verified.
    Record {
        /// The database generation the record's commit reached.
        generation: u64,
        /// The encoded `EdbDelta` frame (the WAL payload, verbatim).
        payload: Vec<u8>,
    },
    /// The primary refused or aborted the sync; terminal.
    Error {
        /// Machine-readable kind, e.g. `sync_unavailable`.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// The WAL's record checksum: `crc32(generation ‖ payload)`, little-endian
/// generation — byte-identical to what [`sepra_wal::log`] stores on disk.
pub fn record_crc(generation: u64, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&generation.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Renders the follower's opening request.
pub fn render_sync_request(from_generation: u64) -> String {
    let mut sync = ObjWriter::new();
    sync.num("from_generation", from_generation);
    let mut out = ObjWriter::new();
    out.raw("sync", &sync.finish());
    out.finish()
}

/// Extracts `from_generation` from a parsed request, if it is a sync
/// request at all (`None` lets the server fall through to query/mutation
/// handling).
pub fn parse_sync_request(request: &Json) -> Option<Result<u64, String>> {
    let sync = request.get("sync")?;
    Some(
        sync.get("from_generation")
            .and_then(Json::as_u64)
            .ok_or_else(|| "\"sync\" needs a nonnegative \"from_generation\" integer".to_string()),
    )
}

/// Renders a ping frame.
pub fn render_ping(generation: u64) -> String {
    let mut ping = ObjWriter::new();
    ping.num("generation", generation);
    let mut out = ObjWriter::new();
    out.raw("ping", &ping.finish());
    out.finish()
}

/// Renders a checkpoint announcement.
pub fn render_checkpoint(generation: u64, chunks: u64) -> String {
    let mut ckpt = ObjWriter::new();
    ckpt.num("generation", generation).num("chunks", chunks);
    let mut out = ObjWriter::new();
    out.raw("checkpoint", &ckpt.finish());
    out.finish()
}

/// Renders one chunk of a checkpoint file.
pub fn render_chunk(index: u64, of: u64, data: &[u8]) -> String {
    let mut chunk = ObjWriter::new();
    chunk.num("index", index).num("of", of).str("data", &base64::encode(data));
    let mut out = ObjWriter::new();
    out.raw("chunk", &chunk.finish());
    out.finish()
}

/// Renders one WAL record, stamping the log's own checksum.
pub fn render_record(generation: u64, payload: &[u8]) -> String {
    let mut record = ObjWriter::new();
    record
        .num("generation", generation)
        .num("crc", u64::from(record_crc(generation, payload)))
        .str("payload", &base64::encode(payload));
    let mut out = ObjWriter::new();
    out.raw("record", &record.finish());
    out.finish()
}

/// Renders a terminal error frame (same shape as query errors).
pub fn render_error(kind: &str, message: &str) -> String {
    let mut detail = ObjWriter::new();
    detail.str("kind", kind).str("message", message);
    let mut out = ObjWriter::new();
    out.raw("error", &detail.finish());
    out.finish()
}

/// Parses one stream line into a [`Frame`], verifying base64 payloads and
/// the record CRC. Anything malformed is an error — a follower must stop
/// and resync rather than guess at a corrupted stream.
pub fn parse_frame(line: &str) -> Result<Frame, String> {
    let v = json::parse(line).map_err(|e| format!("invalid frame JSON: {e}"))?;
    if let Some(ping) = v.get("ping") {
        let generation = ping
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or("ping frame without a generation")?;
        return Ok(Frame::Ping { generation });
    }
    if let Some(ckpt) = v.get("checkpoint") {
        let generation = ckpt
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or("checkpoint frame without a generation")?;
        let chunks =
            ckpt.get("chunks").and_then(Json::as_u64).ok_or("checkpoint frame without chunks")?;
        return Ok(Frame::Checkpoint { generation, chunks });
    }
    if let Some(chunk) = v.get("chunk") {
        let index =
            chunk.get("index").and_then(Json::as_u64).ok_or("chunk frame without an index")?;
        let of = chunk.get("of").and_then(Json::as_u64).ok_or("chunk frame without a total")?;
        let data = chunk.get("data").and_then(Json::as_str).ok_or("chunk frame without data")?;
        let data = base64::decode(data)?;
        return Ok(Frame::Chunk { index, of, data });
    }
    if let Some(record) = v.get("record") {
        let generation = record
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or("record frame without a generation")?;
        let crc = record.get("crc").and_then(Json::as_u64).ok_or("record frame without a crc")?;
        let payload =
            record.get("payload").and_then(Json::as_str).ok_or("record frame without a payload")?;
        let payload = base64::decode(payload)?;
        if u64::from(record_crc(generation, &payload)) != crc {
            return Err(format!("record at generation {generation} failed its checksum"));
        }
        return Ok(Frame::Record { generation, payload });
    }
    if let Some(error) = v.get("error") {
        return Ok(Frame::Error {
            kind: error.get("kind").and_then(Json::as_str).unwrap_or("unknown").to_string(),
            message: error.get("message").and_then(Json::as_str).unwrap_or_default().to_string(),
        });
    }
    Err("frame is none of ping/checkpoint/chunk/record/error".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_request_round_trips() {
        let line = render_sync_request(17);
        let v = json::parse(&line).unwrap();
        assert_eq!(parse_sync_request(&v), Some(Ok(17)));
        // Non-sync requests fall through; malformed sync requests error.
        assert_eq!(parse_sync_request(&json::parse(r#"{"query": "t(X)?"}"#).unwrap()), None);
        assert!(matches!(
            parse_sync_request(&json::parse(r#"{"sync": {"from_generation": -1}}"#).unwrap()),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_sync_request(&json::parse(r#"{"sync": true}"#).unwrap()),
            Some(Err(_))
        ));
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(parse_frame(&render_ping(9)).unwrap(), Frame::Ping { generation: 9 });
        assert_eq!(
            parse_frame(&render_checkpoint(40, 3)).unwrap(),
            Frame::Checkpoint { generation: 40, chunks: 3 }
        );
        assert_eq!(
            parse_frame(&render_chunk(1, 3, b"\x00\x01binary\xff")).unwrap(),
            Frame::Chunk { index: 1, of: 3, data: b"\x00\x01binary\xff".to_vec() }
        );
        assert_eq!(
            parse_frame(&render_record(41, b"delta frame")).unwrap(),
            Frame::Record { generation: 41, payload: b"delta frame".to_vec() }
        );
        assert_eq!(
            parse_frame(&render_error("sync_unavailable", "no data dir")).unwrap(),
            Frame::Error { kind: "sync_unavailable".into(), message: "no data dir".into() }
        );
    }

    #[test]
    fn corrupted_records_fail_their_checksum() {
        let line = render_record(41, b"delta frame");
        // Flip the stamped generation: the CRC covers it.
        let tampered = line.replace("\"generation\":41", "\"generation\":42");
        assert!(parse_frame(&tampered).unwrap_err().contains("checksum"));
        // Flip a payload byte (base64 of a different payload).
        let other = render_record(41, b"delta frame!");
        let v = json::parse(&other).unwrap();
        let bad_payload =
            v.get("record").unwrap().get("payload").and_then(Json::as_str).unwrap().to_string();
        let good = json::parse(&line).unwrap();
        let good_payload =
            good.get("record").unwrap().get("payload").and_then(Json::as_str).unwrap().to_string();
        let tampered = line.replace(&good_payload, &bad_payload);
        assert!(parse_frame(&tampered).unwrap_err().contains("checksum"));
        assert!(parse_frame("{\"what\": 1}").is_err());
        assert!(parse_frame("not json").is_err());
    }
}
