//! Baseline evaluation algorithms for recursive queries.
//!
//! The paper (Section 4) compares its Separable algorithm against the two
//! popular general-purpose strategies of the time; both are implemented
//! here from scratch on top of the shared evaluation substrate:
//!
//! * [`adorn`] / [`magic`] — the **Generalized Magic Sets** rewrite
//!   \[BMSU86, BR87\]: adorn the program by sideways information passing from
//!   the query's binding pattern, guard every rule with a `magic` predicate,
//!   and evaluate the rewritten program semi-naively. On the paper's
//!   Lemma 4.2 family this materializes `Ω(n^k)` tuples where Separable
//!   stays at `O(n^{max(w, k-w)})`.
//! * [`counting`] — the **Generalized Counting Method** \[BMSU86, SZ86\]:
//!   descend from the selection constants recording `(level, path-code)`
//!   indexes exactly as the paper's `count` rules do. Because the path code
//!   distinguishes every rule sequence, `count` reaches `Ω(p^n)` tuples on
//!   the Lemma 4.3 family (and `Ω(2^n)` on Example 1.1). Counting also
//!   diverges on cyclic data, which the implementation detects and reports.

pub mod adorn;
pub mod bounded;
pub mod counting;
pub mod hn;
pub mod magic;
pub mod magic_sup;

pub use adorn::{adorn_program, adorn_program_subsumptive, AdornedProgram};
pub use bounded::{
    bounded_evaluate, bounded_evaluate_with_options, bounded_rewrite, BoundedOutcome,
};
pub use counting::{counting_evaluate, CountingOptions, CountingOutcome};
pub use hn::{hn_evaluate, HnOptions, HnOutcome};
pub use magic::{magic_evaluate, magic_evaluate_with_options, MagicOutcome};
pub use magic_sup::{
    magic_evaluate_subsumptive, magic_evaluate_subsumptive_with_options,
    magic_evaluate_supplementary, magic_evaluate_supplementary_with_options,
};
