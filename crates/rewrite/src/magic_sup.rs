//! Magic Sets with supplementary predicates \[BR87\].
//!
//! The basic magic rewrite re-evaluates each rule-body *prefix* twice: once
//! inside the magic rule for an IDB occurrence and once inside the guarded
//! rule itself. The supplementary variant materializes each prefix exactly
//! once:
//!
//! ```text
//! sup_{r,0}(v̄_0)  :- magic@p@α(t̄|bound).
//! sup_{r,i}(v̄_i)  :- sup_{r,i-1}(v̄_{i-1}), L_i.          (1 ≤ i < m)
//! p@α(t̄)          :- sup_{r,m-1}(v̄_{m-1}), L_m.
//! magic@q@β(ā)    :- sup_{r,i-1}(v̄_{i-1}).                (L_i an IDB atom)
//! ```
//!
//! where `v̄_i` keeps exactly the variables bound after `L_i` that are still
//! needed by later literals or the head. Answers are identical to the basic
//! rewrite; the ablation (E10) measures the work saved.

use std::collections::BTreeSet;

use sepra_ast::{Atom, Interner, Literal, Program, Query, Rule, Sym, Term};
use sepra_eval::{query_answers, seminaive_with_options, EvalError, EvalOptions};
use sepra_storage::{Database, Relation};

use crate::adorn::{adorn_program, adorn_program_subsumptive, adorned_name, Adornment};
use crate::magic::MagicOutcome;

/// Rewrites and evaluates `query` with supplementary magic sets.
///
/// Returns the same outcome type as [`crate::magic::magic_evaluate`]; the
/// `rewritten` program contains the `sup@...` predicates.
pub fn magic_evaluate_supplementary(
    program: &Program,
    query: &Query,
    db: &Database,
) -> Result<MagicOutcome, EvalError> {
    magic_evaluate_supplementary_with_options(program, query, db, &EvalOptions::default())
}

/// [`magic_evaluate_supplementary`] with explicit [`EvalOptions`] for the
/// semi-naive engine evaluating the rewritten program.
pub fn magic_evaluate_supplementary_with_options(
    program: &Program,
    query: &Query,
    db: &Database,
    eval: &EvalOptions,
) -> Result<MagicOutcome, EvalError> {
    supplementary_impl(program, query, db, eval, false)
}

/// Subsumptive magic sets (Alviano et al.): the supplementary rewrite over
/// [`adorn_program_subsumptive`], so a demand whose bound positions
/// include those of an already-generated adornment reuses that more
/// general adorned copy instead of spawning its own. Subsumed magic atoms
/// are pruned — they are never generated — and each predicate is adorned
/// strictly on demand.
pub fn magic_evaluate_subsumptive(
    program: &Program,
    query: &Query,
    db: &Database,
) -> Result<MagicOutcome, EvalError> {
    magic_evaluate_subsumptive_with_options(program, query, db, &EvalOptions::default())
}

/// [`magic_evaluate_subsumptive`] with explicit [`EvalOptions`].
pub fn magic_evaluate_subsumptive_with_options(
    program: &Program,
    query: &Query,
    db: &Database,
    eval: &EvalOptions,
) -> Result<MagicOutcome, EvalError> {
    supplementary_impl(program, query, db, eval, true)
}

fn supplementary_impl(
    program: &Program,
    query: &Query,
    db: &Database,
    eval: &EvalOptions,
    subsumptive: bool,
) -> Result<MagicOutcome, EvalError> {
    if !query.has_selection() {
        return Err(EvalError::Unsupported("magic sets needs at least one bound argument".into()));
    }
    let mut db = db.clone();

    // Same preprocessing as the basic rewrite: hoist facts, split IDB
    // predicates that also have EDB facts.
    let mut rules: Vec<Rule> = Vec::new();
    let mut idb: Vec<Sym> = Vec::new();
    for rule in &program.rules {
        if rule.is_fact() {
            db.insert_atom(&rule.head)
                .map_err(|e| EvalError::Unsupported(format!("bad program fact: {e}")))?;
        } else {
            if !idb.contains(&rule.head.pred) {
                idb.push(rule.head.pred);
            }
            rules.push(rule.clone());
        }
    }
    for &pred in &idb {
        if db.relation(pred).is_some_and(|r| !r.is_empty()) {
            let interner = db.interner_mut();
            let base_name = format!("{}@base", interner.resolve(pred));
            let base = interner.intern(&base_name);
            let facts = db.relation(pred).cloned().expect("non-empty");
            let arity = facts.arity();
            db.relation_mut(base, arity).union_in_place(&facts);
            *db.relation_mut(pred, arity) = Relation::new(arity);
            let vars: Vec<Term> =
                (0..arity).map(|i| Term::Var(db.interner_mut().intern(&format!("B{i}")))).collect();
            rules.push(Rule::new(
                Atom::new(pred, vars.clone()),
                vec![Literal::Atom(Atom::new(base, vars))],
            ));
        }
    }
    let program = Program::new(rules);
    let idb_check = idb.clone();
    let adorned = if subsumptive {
        adorn_program_subsumptive(&program, query, db.interner_mut(), &|p| idb_check.contains(&p))
    } else {
        adorn_program(&program, query, db.interner_mut(), &|p| idb_check.contains(&p))
    };

    let parse_adorned = |atom: &Atom, interner: &Interner| -> Option<(Sym, Adornment)> {
        let name = interner.resolve(atom.pred);
        let (base, suffix) = name.rsplit_once('@')?;
        if suffix.len() != atom.arity() || !suffix.chars().all(|c| c == 'b' || c == 'f') {
            return None;
        }
        let orig = interner.get(base)?;
        Some((orig, suffix.chars().map(|c| c == 'b').collect()))
    };
    let magic_atom = |atom: &Atom, orig: Sym, ad: &Adornment, interner: &mut Interner| -> Atom {
        let base = adorned_name(orig, ad, interner);
        let name = format!("magic@{}", interner.resolve(base));
        let magic_pred = interner.intern(&name);
        let bound_terms: Vec<Term> =
            atom.terms.iter().zip(ad).filter_map(|(t, &b)| b.then_some(*t)).collect();
        Atom::new(magic_pred, bound_terms)
    };

    let mut out_rules: Vec<Rule> = Vec::new();
    for (ri, rule) in adorned.program.rules.iter().enumerate() {
        let (head_orig, head_ad) = parse_adorned(&rule.head, db.interner())
            .ok_or_else(|| EvalError::Planning("unmappable adorned head".into()))?;
        let magic_head = magic_atom(&rule.head, head_orig, &head_ad, db.interner_mut());
        let head_vars: BTreeSet<Sym> = rule.head.vars().into_iter().collect();

        // needed_after[i]: variables used by literals i.. or the head.
        let m = rule.body.len();
        let mut needed_after: Vec<BTreeSet<Sym>> = vec![head_vars.clone(); m + 1];
        for i in (0..m).rev() {
            let mut set = needed_after[i + 1].clone();
            set.extend(rule.body[i].vars());
            needed_after[i] = set;
        }

        // available[i]: variables bound after evaluating literals < i.
        let mut available: BTreeSet<Sym> = magic_head.vars().into_iter().collect();

        // sup_{r,0}.
        let sup_name =
            |interner: &mut Interner, idx: usize| interner.intern(&format!("sup@{ri}@{idx}"));
        let sup_args = |available: &BTreeSet<Sym>, needed: &BTreeSet<Sym>| -> Vec<Term> {
            available.intersection(needed).map(|&v| Term::Var(v)).collect()
        };
        let mut prev_sup =
            Atom::new(sup_name(db.interner_mut(), 0), sup_args(&available, &needed_after[0]));
        out_rules.push(Rule::new(prev_sup.clone(), vec![Literal::Atom(magic_head.clone())]));

        for (i, lit) in rule.body.iter().enumerate() {
            // Magic rule for IDB occurrences, from the previous supplementary.
            if let Literal::Atom(atom) = lit {
                if let Some((orig, ad)) = parse_adorned(atom, db.interner()) {
                    if idb.contains(&orig) {
                        let m_atom = magic_atom(atom, orig, &ad, db.interner_mut());
                        out_rules.push(Rule::new(m_atom, vec![Literal::Atom(prev_sup.clone())]));
                    }
                }
            }
            available.extend(lit.vars());
            if i + 1 == m {
                // Final rule produces the head directly.
                out_rules.push(Rule::new(
                    rule.head.clone(),
                    vec![Literal::Atom(prev_sup.clone()), lit.clone()],
                ));
            } else {
                let next_sup = Atom::new(
                    sup_name(db.interner_mut(), i + 1),
                    sup_args(&available, &needed_after[i + 1]),
                );
                out_rules.push(Rule::new(
                    next_sup.clone(),
                    vec![Literal::Atom(prev_sup.clone()), lit.clone()],
                ));
                prev_sup = next_sup;
            }
        }
        if m == 0 {
            // Body-less adorned rule (cannot happen: facts are hoisted).
            out_rules.push(Rule::new(rule.head.clone(), vec![Literal::Atom(prev_sup)]));
        }
    }
    // Seed fact.
    let seed = magic_atom(
        &adorned.query.atom,
        query.atom.pred,
        &adorned.query_adornment,
        db.interner_mut(),
    );
    let seed_terms: Vec<Term> = query.atom.terms.iter().filter(|t| t.is_const()).cloned().collect();
    out_rules.push(Rule::fact(Atom::new(seed.pred, seed_terms)));

    let rewritten = Program::new(out_rules);
    let derived = seminaive_with_options(&rewritten, &db, eval)?;
    let answers = query_answers(&adorned.query, &db, Some(&derived))?;
    let mut stats = derived.stats.clone();
    stats.record_size("ans", answers.len());
    Ok(MagicOutcome { answers, stats, rewritten, derived, db })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magic::{magic_evaluate, magic_evaluate_with_options};
    use sepra_ast::{parse_program, parse_query};

    fn both(program_src: &str, facts: &str, query_src: &str) -> (MagicOutcome, MagicOutcome) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        let basic = magic_evaluate(&program, &query, &db).unwrap();
        let sup = magic_evaluate_supplementary(&program, &query, &db).unwrap();
        (basic, sup)
    }

    fn assert_same_tuples(a: &Relation, b: &Relation) {
        assert_eq!(a.len(), b.len());
        for t in a.iter() {
            assert!(b.contains_row(t));
        }
    }

    #[test]
    fn matches_basic_on_transitive_closure() {
        let (basic, sup) = both(
            "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n",
            "e(a, b). e(b, c). e(c, d). e(d, b).",
            "t(a, Y)?",
        );
        assert_same_tuples(&basic.answers, &sup.answers);
        assert_eq!(basic.answers.len(), 3);
    }

    #[test]
    fn matches_basic_on_two_class_buys() {
        let (basic, sup) = both(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
             buys(X, Y) :- perfectFor(X, Y).\n",
            "friend(tom, sue). friend(sue, joe). perfectFor(joe, w).\n\
             cheaper(b, w). cheaper(s, b).",
            "buys(tom, Y)?",
        );
        assert_same_tuples(&basic.answers, &sup.answers);
        assert_eq!(basic.answers.len(), 3);
    }

    #[test]
    fn matches_basic_on_long_bodies() {
        let (basic, sup) = both(
            "reach(X, Y) :- hop(X, A), hop(A, B), hop(B, W), reach(W, Y).\n\
             reach(X, Y) :- goal(X, Y).\n",
            "hop(n0, n1). hop(n1, n2). hop(n2, n3). hop(n3, n4). hop(n4, n5).\n\
             hop(n5, n6). goal(n3, g1). goal(n6, g2). goal(n0, g0).",
            "reach(n0, Y)?",
        );
        assert_same_tuples(&basic.answers, &sup.answers);
    }

    #[test]
    fn supplementary_saves_prefix_work_on_long_bodies() {
        // With a 3-atom prefix before the recursive call, basic magic
        // evaluates the prefix in both the magic rule and the guarded
        // rule; supplementary shares it. Both sides run with source-order
        // plans: the measured object is the rewrite, and cost-based
        // reordering narrows the gap enough to drown the comparison in
        // per-rule overhead.
        let mut facts = String::new();
        for i in 0..120 {
            facts.push_str(&format!("hop(n{i}, n{}). ", i + 1));
        }
        facts.push_str("goal(n120, finish). goal(n60, half).");
        let mut db = Database::new();
        db.load_fact_text(&facts).unwrap();
        let program = parse_program(
            "reach(X, Y) :- hop(X, A), hop(A, B), hop(B, W), reach(W, Y).\n\
             reach(X, Y) :- goal(X, Y).\n",
            db.interner_mut(),
        )
        .unwrap();
        let query = parse_query("reach(n0, Y)?", db.interner_mut()).unwrap();
        let eval =
            EvalOptions { plan_mode: sepra_eval::PlanMode::SourceOrder, ..EvalOptions::default() };
        let basic = magic_evaluate_with_options(&program, &query, &db, &eval).unwrap();
        let sup = magic_evaluate_supplementary_with_options(&program, &query, &db, &eval).unwrap();
        assert_same_tuples(&basic.answers, &sup.answers);
        assert!(
            sup.stats.rows_scanned < basic.stats.rows_scanned,
            "supplementary should scan fewer rows: {} vs {}",
            sup.stats.rows_scanned,
            basic.stats.rows_scanned
        );
    }

    /// Two demand sites on the same `S_1^2` recursion at different
    /// binding strength: `t@bf` from the query path, `t@bb` from the
    /// pinned path. Subsumptive magic answers the `bb` demand from the
    /// `bf` copy.
    const TWO_DEMAND: &str = "q(X, Y) :- t(X, Y).\n\
         q(X, Y) :- pin(X, Z, Y), t(Z, Y).\n\
         t(X, Y) :- a1(X, W), t(W, Y).\n\
         t(X, Y) :- t0(X, Y).\n";

    fn two_demand_db() -> Database {
        let mut db = Database::new();
        let mut facts = String::new();
        for i in 0..40 {
            facts.push_str(&format!("a1(n{i}, n{}). ", i + 1));
        }
        facts.push_str("t0(n40, fin). t0(n20, mid). pin(n0, n5, fin). pin(n0, n9, mid).");
        db.load_fact_text(&facts).unwrap();
        db
    }

    #[test]
    fn subsumptive_matches_basic_and_supplementary() {
        let db = two_demand_db();
        let mut db2 = db.clone();
        let program = parse_program(TWO_DEMAND, db2.interner_mut()).unwrap();
        let query = parse_query("q(n0, Y)?", db2.interner_mut()).unwrap();
        let basic = magic_evaluate(&program, &query, &db2).unwrap();
        let sup = magic_evaluate_supplementary(&program, &query, &db2).unwrap();
        let subsumptive = magic_evaluate_subsumptive(&program, &query, &db2).unwrap();
        assert_same_tuples(&basic.answers, &sup.answers);
        assert_same_tuples(&basic.answers, &subsumptive.answers);
        assert!(!subsumptive.answers.is_empty());
    }

    #[test]
    fn subsumptive_prunes_the_subsumed_adorned_copy() {
        let mut db = two_demand_db();
        let program = parse_program(TWO_DEMAND, db.interner_mut()).unwrap();
        let query = parse_query("q(n0, Y)?", db.interner_mut()).unwrap();
        let sup = magic_evaluate_supplementary(&program, &query, &db).unwrap();
        let subsumptive = magic_evaluate_subsumptive(&program, &query, &db).unwrap();
        let has_bb = |out: &MagicOutcome| {
            out.rewritten.predicates().iter().any(|&p| out.db.interner().resolve(p) == "t@bb")
        };
        assert!(has_bb(&sup), "plain supplementary keeps the specific copy");
        assert!(!has_bb(&subsumptive), "subsumptive collapses it");
        assert!(subsumptive.rewritten.rules.len() < sup.rewritten.rules.len());
        assert!(
            subsumptive.stats.rows_scanned < sup.stats.rows_scanned,
            "one adorned fixpoint instead of two should scan fewer rows: {} vs {}",
            subsumptive.stats.rows_scanned,
            sup.stats.rows_scanned
        );
    }

    #[test]
    fn matches_basic_on_same_generation() {
        let (basic, sup) = both(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
            "up(a, p). up(b, q). flat(p, q). down(q, b2). down(p, a2). up(a2, p).",
            "sg(a, Y)?",
        );
        assert_same_tuples(&basic.answers, &sup.answers);
    }
}
