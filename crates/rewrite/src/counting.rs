//! The Generalized Counting Method \[BMSU86, BR87, SZ86\].
//!
//! For a selection that binds one equivalence class of a linear recursion,
//! Counting descends from the selection constants exactly as the paper's
//! rewritten rules do (Section 4):
//!
//! ```text
//! count(0, 0, x0).
//! count(I+1, (p+1)*K + 1, W) :- count(I, K, X) & a_1(X, W).
//! count(I+1, (p+1)*K + 2, W) :- count(I, K, X) & a_2(X, W).
//! ...
//! ```
//!
//! The second index is the *path code*: a base-`p+1` encoding of the exact
//! sequence of rule applications. Because tuples with different codes are
//! distinct, the `count` relation holds one tuple per derivation path — the
//! source of the `Ω(p^n)` lower bound of Lemma 4.3 (and the `Ω(2^n)` blowup
//! on Example 1.1). With a single recursive rule the code stays `0…0` and
//! Counting behaves well, which is why it was competitive on chain rules.
//!
//! Two failure modes are detected rather than looped on:
//! * **cyclic data** — the descent's level would exceed the number of
//!   distinct constants, so some value repeats on a path and the true
//!   count relation is infinite; reported as [`EvalError::Diverged`]
//!   (Henschen–Naqvi-style methods share this restriction, as the paper
//!   notes in Section 1);
//! * **code overflow** — the path code leaves the 62-bit integer space;
//!   reported as a value error (the relation being materialized is
//!   exponential either way — benchmarks cap the depth).
//!
//! The answer phase (join with the exit relation, then the upward closure
//! through the remaining classes) reuses the shared plan machinery; the
//! measured object is the descent's `count` relation.

use sepra_ast::Query;
use sepra_core::detect::SeparableRecursion;
use sepra_core::exec::{run_seed_and_phase2, ExecOptions, ExtraRelations};
use sepra_core::plan::{build_plan_with, classify_selection, PlanSelection, SelectionKind};
use sepra_eval::{filter_by_query, EvalError, IndexCache, Planner, PlannerStats, RelKey, RelStore};
use sepra_storage::{Database, EvalStats, Relation, Tuple, Value};

/// Options for the Counting evaluation.
#[derive(Debug, Clone, Default)]
pub struct CountingOptions {
    /// Maximum descent depth. Defaults to the number of distinct constants
    /// in the database (any deeper level must repeat a value on some path,
    /// i.e. the data is cyclic and Counting does not terminate).
    pub max_depth: Option<usize>,
    /// Execution options for the answer phase.
    pub exec: ExecOptions,
}

/// The result of a Counting evaluation.
#[derive(Debug)]
pub struct CountingOutcome {
    /// Answers as full tuples of the query predicate.
    pub answers: Relation,
    /// Statistics; the headline entry is `count`, the size of the count
    /// relation (level, path code, class values).
    pub stats: EvalStats,
    /// The materialized count relation: `(level, code, v_1, ..., v_w)`.
    pub count: Relation,
}

/// Evaluates `query` with the Generalized Counting Method.
///
/// The recursion must be separable-shaped (the paper benchmarks Counting on
/// exactly such programs) and the query must fully bind one class.
pub fn counting_evaluate(
    sep: &SeparableRecursion,
    query: &Query,
    db: &Database,
    opts: &CountingOptions,
) -> Result<CountingOutcome, EvalError> {
    let SelectionKind::FullClass { class } = classify_selection(sep, query) else {
        return Err(EvalError::Unsupported(
            "counting baseline supports selections that fully bind one equivalence class".into(),
        ));
    };
    let pstats = PlannerStats::from_database(db);
    let planner = Planner::new(opts.exec.plan_mode, Some(&pstats));
    let plan = build_plan_with(sep, &PlanSelection::Class(class), &planner)?;
    let phase1 = plan.phase1.as_ref().expect("class plan has phase 1");
    let width = phase1.columns.len();
    let n_rules = phase1.steps.len();
    let base = (n_rules as i64) + 1;

    let max_depth = opts.max_depth.unwrap_or_else(|| db.distinct_constant_count().max(1));

    let mut stats = EvalStats::new();
    planner.record_into(&mut stats);
    let extra = ExtraRelations::default();

    // count(0, 0, x0): seed from the query constants.
    let mut seed_vals: Vec<Value> = Vec::with_capacity(width);
    for &c in &phase1.columns {
        let sepra_ast::Term::Const(konst) = query.atom.terms[c] else {
            return Err(EvalError::Planning("full class selection expected constants".into()));
        };
        seed_vals.push(Value::from_const(konst)?);
    }

    let mut count = Relation::new(2 + width);
    let mut frontier = Relation::new(1 + width); // (code, class values)
    {
        let mut first = vec![Value::int(0)?];
        first.extend(seed_vals.iter().copied());
        frontier.insert(Tuple::new(first));
        let mut row = vec![Value::int(0)?, Value::int(0)?];
        row.extend(seed_vals.iter().copied());
        count.insert(Tuple::new(row));
    }
    stats.record_size("count", count.len());

    let mut indexes = IndexCache::new();
    let mut level: i64 = 0;
    while !frontier.is_empty() {
        stats.record_iteration();
        level += 1;
        if level as usize > max_depth {
            return Err(EvalError::Diverged {
                what: "counting descent (cyclic data or depth bound exceeded)".into(),
                bound: max_depth,
            });
        }
        opts.exec.budget.check("counting descent", stats.iterations, stats.tuples_inserted)?;
        let mut next = Relation::new(1 + width);
        {
            // Project the frontier's class values for the join; remember
            // which codes carried each value vector.
            let mut carry = Relation::new(width);
            let mut codes_of: sepra_storage::FxHashMap<Tuple, Vec<i64>> =
                sepra_storage::FxHashMap::default();
            for t in frontier.iter() {
                let code = t[0].as_int().expect("code column is an int");
                let vals = Tuple::new(t.values().skip(1).collect::<Vec<_>>());
                carry.insert(vals.clone());
                codes_of.entry(vals).or_default().push(code);
            }
            let mut store = RelStore::new();
            for (p, r) in db.relations() {
                store.bind(RelKey::Pred(p), r);
            }
            store.bind(RelKey::Aux(sepra_core::plan::AUX_CARRY1), &carry);
            for (j, (_, step)) in phase1.steps.iter().enumerate() {
                indexes.prepare(step, &store);
                // The step plan's first atom scans the carry; to recover
                // which carry tuple produced each output we re-run per carry
                // tuple. Carry tuples are few compared to the path codes
                // that multiply below.
                for (vals, codes) in &codes_of {
                    let mut single = Relation::new(width);
                    single.insert(vals.clone());
                    let mut sub_store = RelStore::new();
                    for (p, r) in db.relations() {
                        sub_store.bind(RelKey::Pred(p), r);
                    }
                    sub_store.bind(RelKey::Aux(sepra_core::plan::AUX_CARRY1), &single);
                    let mut emitted: Vec<Tuple> = Vec::new();
                    step.execute(&sub_store, &indexes, &[], &mut |row| {
                        emitted.push(Tuple::new(row.to_vec()));
                    });
                    for out_vals in emitted {
                        for &code in codes {
                            let new_code = code
                                .checked_mul(base)
                                .and_then(|c| c.checked_add(j as i64 + 1))
                                .ok_or(EvalError::Value(
                                    sepra_storage::value::ValueError::IntOutOfRange(i64::MAX),
                                ))?;
                            let mut row = vec![Value::int(new_code)?];
                            row.extend(out_vals.values().iter().copied());
                            let t = Tuple::new(row);
                            let was_new = next.insert(t.clone());
                            stats.record_insert(was_new);
                            if was_new {
                                let mut crow = vec![Value::int(level)?, t[0]];
                                crow.extend(t.values()[1..].iter().copied());
                                count.insert(Tuple::new(crow));
                            }
                        }
                    }
                }
            }
        }
        indexes.invalidate(RelKey::Aux(sepra_core::plan::AUX_CARRY1));
        stats.record_size("count", count.len());
        frontier = next;
    }

    // Answer phase: seen_1 = the distinct class values reached at any
    // level; then the shared exit join + upward closure.
    let mut seen1 = Relation::new(width);
    for t in count.iter() {
        seen1.insert(Tuple::new(t.values().skip(2).collect::<Vec<_>>()));
    }
    stats.record_size("seen_1", seen1.len());
    let seen2 =
        run_seed_and_phase2(&plan, db, &extra, Some(&seen1), &mut indexes, &opts.exec, &mut stats)?;

    // Assemble answers exactly like the Separable evaluator.
    let fixed: Vec<(usize, Value)> =
        phase1.columns.iter().zip(&seed_vals).map(|(&c, &v)| (c, v)).collect();
    let mut full = Relation::new(sep.arity);
    for row in seen2.iter() {
        let mut values = vec![Value::int(0).expect("zero fits"); sep.arity];
        for &(pos, v) in &fixed {
            values[pos] = v;
        }
        for (i, &pos) in plan.phase2.columns.iter().enumerate() {
            values[pos] = row[i];
        }
        full.insert(Tuple::from(values));
    }
    let answers = filter_by_query(query, &full)?;
    stats.record_size("ans", answers.len());
    Ok(CountingOutcome { answers, stats, count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, parse_query};
    use sepra_core::detect::detect_in_program;
    use sepra_eval::{query_answers, seminaive};

    fn setup(
        program_src: &str,
        facts: &str,
        pred: &str,
        query_src: &str,
    ) -> (SeparableRecursion, Query, Database, sepra_ast::Program) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let p = db.intern(pred);
        let sep = detect_in_program(&program, p, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        (sep, query, db, program)
    }

    const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    #[test]
    fn counting_matches_seminaive_on_acyclic_data() {
        let facts = "friend(a, b). friend(b, c). idol(a, c). idol(c, d).\n\
                     perfectFor(d, widget). perfectFor(c, gadget).";
        let (sep, query, db, program) = setup(EX_1_1, facts, "buys", "buys(a, Y)?");
        let out = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap();
        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(out.answers, expected);
    }

    #[test]
    fn count_relation_blows_up_exponentially() {
        // friend = idol = a chain of length n: every one of the 2^i rule
        // sequences of length i reaches node i, so count has ~2^(n+1) rows
        // (the Section 4 example).
        let n = 10;
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("friend(v{i}, v{}). idol(v{i}, v{}). ", i + 1, i + 1));
        }
        facts.push_str(&format!("perfectFor(v{n}, widget)."));
        let (sep, query, db, _) = setup(EX_1_1, &facts, "buys", "buys(v0, Y)?");
        let out = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap();
        // Sum over i of 2^i = 2^(n+1) - 1 count tuples.
        assert_eq!(out.count.len(), (1 << (n + 1)) - 1);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn single_rule_counting_stays_linear() {
        let tc = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";
        let mut facts = String::new();
        for i in 0..20 {
            facts.push_str(&format!("e(v{i}, v{}). ", i + 1));
        }
        let (sep, query, db, program) = setup(tc, &facts, "t", "t(v0, Y)?");
        let out = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap();
        assert_eq!(out.count.len(), 21); // one tuple per level
        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(out.answers, expected);
    }

    #[test]
    fn cyclic_data_is_detected() {
        let tc = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";
        let facts = "e(a, b). e(b, a).";
        let (sep, query, db, _) = setup(tc, facts, "t", "t(a, Y)?");
        let err = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Diverged { .. }), "{err}");
    }

    #[test]
    fn two_class_recursion_answer_phase() {
        let p = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                 buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                 buys(X, Y) :- perfectFor(X, Y).\n";
        let facts = "friend(tom, sue). friend(sue, joe).\n\
                     perfectFor(joe, widget). cheaper(bargain, widget). cheaper(steal, bargain).";
        let (sep, query, db, program) = setup(p, facts, "buys", "buys(tom, Y)?");
        let out = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap();
        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(out.answers, expected);
        assert_eq!(out.answers.len(), 3);
    }

    #[test]
    fn path_code_overflow_is_reported() {
        // A single-rule descent on a 2-cycle keeps exactly one frontier
        // tuple per level while its path code doubles each step; overriding
        // the cyclic-data depth bound forces the code past 2^62, which must
        // surface as a value error rather than wrap.
        let tc = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";
        let facts = "e(a, b). e(b, a).";
        let (sep, query, db, _) = setup(tc, facts, "t", "t(a, Y)?");
        let opts = CountingOptions { max_depth: Some(200), ..Default::default() };
        let err = counting_evaluate(&sep, &query, &db, &opts).unwrap_err();
        assert!(matches!(err, EvalError::Value(_)), "expected overflow, got {err}");
    }

    #[test]
    fn persistent_selection_is_unsupported() {
        let facts = "friend(a, b). perfectFor(b, w).";
        let (sep, query, db, _) = setup(EX_1_1, facts, "buys", "buys(X, w)?");
        let err = counting_evaluate(&sep, &query, &db, &CountingOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Unsupported(_)));
    }
}
