//! Program adornment by left-to-right sideways information passing.
//!
//! An *adornment* marks each argument position of an IDB predicate
//! occurrence as bound (`b`) or free (`f`) given the query's binding
//! pattern. Starting from the query, each reachable `(predicate,
//! adornment)` pair produces adorned versions of that predicate's rules:
//! the rule body is walked left to right, every literal binds its variables
//! once evaluated, and each IDB body atom is renamed to its own adorned
//! version (`p@bf`), scheduling it for processing. This is the standard
//! full left-to-right SIP of \[BR87\], which is also the information-passing
//! order the paper's algorithms assume.

use std::collections::{BTreeSet, VecDeque};

use sepra_ast::{Atom, Interner, Literal, Program, Query, Rule, Sym, Term};

/// A binding pattern: `true` = bound.
pub type Adornment = Vec<bool>;

/// Renders an adornment as the conventional `bf` string.
pub fn adornment_string(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// The adorned name for `pred` under `adornment`, e.g. `buys@bf`.
///
/// The `@` separator cannot appear in source identifiers, so adorned names
/// never collide with user predicates.
pub fn adorned_name(pred: Sym, adornment: &Adornment, interner: &mut Interner) -> Sym {
    let name = format!("{}@{}", interner.resolve(pred), adornment_string(adornment));
    interner.intern(&name)
}

/// An adorned program, ready for the magic rewrite.
#[derive(Debug, Clone)]
pub struct AdornedProgram {
    /// The adorned rules (IDB predicates renamed to `p@ad` versions).
    pub program: Program,
    /// The query, renamed to its adorned predicate.
    pub query: Query,
    /// The adorned query predicate.
    pub query_pred: Sym,
    /// The adornment of the query predicate.
    pub query_adornment: Adornment,
    /// For each adorned rule, the bound head positions (used by the magic
    /// rewrite to form magic-predicate arguments).
    pub bound_head_positions: Vec<Vec<usize>>,
}

/// Adorns `program` for `query`.
///
/// `is_idb` decides which predicates are rewritten (typically: predicates
/// with at least one proper rule). EDB predicates are left untouched.
pub fn adorn_program(
    program: &Program,
    query: &Query,
    interner: &mut Interner,
    is_idb: &impl Fn(Sym) -> bool,
) -> AdornedProgram {
    adorn_program_impl(program, query, interner, is_idb, false)
}

/// [`adorn_program`] with *subsumptive* demand collapsing (Alviano et al.):
/// a body demand `(p, a)` is answered by an already-generated adornment
/// `a'` whose bound positions are a subset of `a`'s, whenever one exists —
/// the more general adorned copy computes a superset of the tuples the
/// more specific demand needs, and the rule context filters the rest. This
/// prunes the subsumed magic predicate (and the whole adorned rule copy
/// family behind it) instead of materializing both.
pub fn adorn_program_subsumptive(
    program: &Program,
    query: &Query,
    interner: &mut Interner,
    is_idb: &impl Fn(Sym) -> bool,
) -> AdornedProgram {
    adorn_program_impl(program, query, interner, is_idb, true)
}

/// Whether `weaker` binds a subset of the positions `stronger` binds (so
/// the `weaker`-adorned copy can answer the `stronger` demand).
fn adornment_subsumes(weaker: &Adornment, stronger: &Adornment) -> bool {
    weaker.len() == stronger.len() && weaker.iter().zip(stronger).all(|(&w, &s)| !w || s)
}

fn adorn_program_impl(
    program: &Program,
    query: &Query,
    interner: &mut Interner,
    is_idb: &impl Fn(Sym) -> bool,
    subsumptive: bool,
) -> AdornedProgram {
    let query_adornment: Adornment = query.atom.terms.iter().map(Term::is_const).collect();
    let mut out_rules: Vec<Rule> = Vec::new();
    let mut bound_head_positions: Vec<Vec<usize>> = Vec::new();
    let mut seen: BTreeSet<(Sym, Adornment)> = BTreeSet::new();
    let mut work: VecDeque<(Sym, Adornment)> = VecDeque::new();

    let start = (query.atom.pred, query_adornment.clone());
    seen.insert(start.clone());
    work.push_back(start);

    while let Some((pred, adornment)) = work.pop_front() {
        for rule in program.definition_of(pred) {
            if rule.is_fact() {
                // Facts of IDB predicates are hoisted by the caller; skip.
                continue;
            }
            let mut bound: BTreeSet<Sym> = rule
                .head
                .terms
                .iter()
                .zip(&adornment)
                .filter_map(|(t, &b)| if b { t.as_var() } else { None })
                .collect();
            let mut new_body: Vec<Literal> = Vec::new();
            for lit in &rule.body {
                match lit {
                    Literal::Atom(atom) if is_idb(atom.pred) => {
                        let mut sub_ad: Adornment = atom
                            .terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(v),
                            })
                            .collect();
                        if subsumptive {
                            // Collapse onto the most general existing
                            // adornment that can answer this demand.
                            if let Some(general) = seen
                                .iter()
                                .filter(|(p, a)| *p == atom.pred && adornment_subsumes(a, &sub_ad))
                                .map(|(_, a)| a.clone())
                                .min_by_key(|a| a.iter().filter(|&&b| b).count())
                            {
                                sub_ad = general;
                            }
                        }
                        let key = (atom.pred, sub_ad.clone());
                        if seen.insert(key.clone()) {
                            work.push_back(key);
                        }
                        let renamed = adorned_name(atom.pred, &sub_ad, interner);
                        new_body.push(Literal::Atom(Atom::new(renamed, atom.terms.clone())));
                        bound.extend(atom.vars());
                    }
                    Literal::Atom(atom) => {
                        new_body.push(lit.clone());
                        bound.extend(atom.vars());
                    }
                    Literal::Eq(l, r) => {
                        new_body.push(lit.clone());
                        let l_bound = matches!(l, Term::Const(_))
                            || l.as_var().is_some_and(|v| bound.contains(&v));
                        let r_bound = matches!(r, Term::Const(_))
                            || r.as_var().is_some_and(|v| bound.contains(&v));
                        if l_bound || r_bound {
                            for t in [l, r] {
                                if let Term::Var(v) = t {
                                    bound.insert(*v);
                                }
                            }
                        }
                    }
                    // The engine routes stratified programs (negation,
                    // aggregates) to direct stratum evaluation; the magic
                    // rewrite never sees them. Kept meaning-preserving
                    // regardless: a negated literal filters (binds nothing,
                    // and only safe — hence already-bound — variables occur
                    // in it), and a sum binds its target once the operands
                    // are bound.
                    Literal::Neg(_) => new_body.push(lit.clone()),
                    Literal::Sum(d, a, b) => {
                        new_body.push(lit.clone());
                        let operand_bound = |t: &Term| {
                            matches!(t, Term::Const(_))
                                || t.as_var().is_some_and(|v| bound.contains(&v))
                        };
                        if operand_bound(a) && operand_bound(b) {
                            if let Term::Var(v) = d {
                                bound.insert(*v);
                            }
                        }
                    }
                }
            }
            let head_pred = adorned_name(pred, &adornment, interner);
            out_rules.push(Rule::new(Atom::new(head_pred, rule.head.terms.clone()), new_body));
            bound_head_positions
                .push(adornment.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect());
        }
    }

    let query_pred = adorned_name(query.atom.pred, &query_adornment, interner);
    let adorned_query = Query::new(Atom::new(query_pred, query.atom.terms.clone()));
    AdornedProgram {
        program: Program::new(out_rules),
        query: adorned_query,
        query_pred,
        query_adornment,
        bound_head_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, parse_query, pretty};

    fn adorn(src: &str, query_src: &str) -> (AdornedProgram, Interner) {
        let mut i = Interner::new();
        let program = parse_program(src, &mut i).unwrap();
        let query = parse_query(query_src, &mut i).unwrap();
        let idb: Vec<Sym> =
            program.rules.iter().filter(|r| !r.is_fact()).map(|r| r.head.pred).collect();
        let adorned = adorn_program(&program, &query, &mut i, &|p| idb.contains(&p));
        (adorned, i)
    }

    #[test]
    fn transitive_closure_bf() {
        let (ad, i) = adorn("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "t(a, Y)?");
        assert_eq!(i.resolve(ad.query_pred), "t@bf");
        assert_eq!(ad.program.rules.len(), 2);
        let rendered = pretty::program_to_string(&ad.program, &i);
        // The recursive call is also bf: e(X, W) binds W before t(W, Y).
        assert!(rendered.contains("t@bf(W, Y)"), "{rendered}");
        assert!(rendered.contains("t@bf(X, Y) :- e(X, Y)."), "{rendered}");
    }

    #[test]
    fn right_linear_produces_fb_via_persistence() {
        // t(X, Y) :- t(X, W), c(Y, W): with t(X, b)? the head binds Y;
        // walking left to right, the recursive t(X, W) sees X free, W free.
        let (ad, i) = adorn("t(X, Y) :- t(X, W), c(Y, W).\nt(X, Y) :- p(X, Y).\n", "t(X, b)?");
        assert_eq!(i.resolve(ad.query_pred), "t@fb");
        let rendered = pretty::program_to_string(&ad.program, &i);
        assert!(rendered.contains("t@ff"), "{rendered}");
    }

    #[test]
    fn multiple_adornments_generate_multiple_versions() {
        let (ad, i) = adorn(
            "s(X, Y) :- t(X, Y).\n\
             s(X, Y) :- t(Y, X).\n\
             t(X, Y) :- e(X, Y).\n",
            "s(a, Y)?",
        );
        let rendered = pretty::program_to_string(&ad.program, &i);
        assert!(rendered.contains("t@bf"), "{rendered}");
        assert!(rendered.contains("t@fb"), "{rendered}");
    }

    #[test]
    fn eq_literals_propagate_bindings() {
        let (ad, i) =
            adorn("t(X, Y) :- q(X, W), Y2 = W, t(Y2, Y).\nt(X, Y) :- p(X, Y).\n", "t(a, Y)?");
        let rendered = pretty::program_to_string(&ad.program, &i);
        assert!(rendered.contains("t@bf(Y2, Y)"), "{rendered}");
    }

    fn adorn_sub(src: &str, query_src: &str) -> (AdornedProgram, Interner) {
        let mut i = Interner::new();
        let program = parse_program(src, &mut i).unwrap();
        let query = parse_query(query_src, &mut i).unwrap();
        let idb: Vec<Sym> =
            program.rules.iter().filter(|r| !r.is_fact()).map(|r| r.head.pred).collect();
        let adorned = adorn_program_subsumptive(&program, &query, &mut i, &|p| idb.contains(&p));
        (adorned, i)
    }

    const TWO_DEMAND: &str = "q(X, Y) :- t(X, Y).\n\
         q(X, Y) :- pin(X, Z, Y), t(Z, Y).\n\
         t(X, Y) :- e(X, Y).\n\
         t(X, Y) :- e(X, W), t(W, Y).\n";

    #[test]
    fn subsumptive_collapses_stronger_demands() {
        // The second q-rule demands t@bb; subsumptively it reuses the
        // already-generated t@bf (bound {0} ⊆ {0, 1}).
        let (standard, i) = adorn(TWO_DEMAND, "q(a, Y)?");
        let rendered = pretty::program_to_string(&standard.program, &i);
        assert!(rendered.contains("t@bb"), "standard adornment keeps both:\n{rendered}");

        let (sub, i) = adorn_sub(TWO_DEMAND, "q(a, Y)?");
        let rendered = pretty::program_to_string(&sub.program, &i);
        assert!(!rendered.contains("t@bb"), "subsumed demand must collapse:\n{rendered}");
        assert!(
            rendered.contains("t@bf(Z, Y)"),
            "demand site reuses the general copy:\n{rendered}"
        );
        assert!(sub.program.rules.len() < standard.program.rules.len());
    }

    #[test]
    fn subsumptive_matches_standard_when_no_demand_subsumes() {
        // t@bf and t@fb are incomparable: nothing collapses.
        let src = "s(X, Y) :- t(X, Y).\n\
             s(X, Y) :- t(Y, X).\n\
             t(X, Y) :- e(X, Y).\n";
        let (standard, i) = adorn(src, "s(a, Y)?");
        let (sub, i2) = adorn_sub(src, "s(a, Y)?");
        assert_eq!(
            pretty::program_to_string(&standard.program, &i),
            pretty::program_to_string(&sub.program, &i2)
        );
    }

    #[test]
    fn bound_head_positions_follow_adornment() {
        let (ad, _) = adorn("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n", "t(a, Y)?");
        for positions in &ad.bound_head_positions {
            assert_eq!(positions, &vec![0]);
        }
    }
}
