//! The Generalized Magic Sets rewrite \[BMSU86, BR87\].
//!
//! Given an adorned program, every adorned rule
//! `p@α(t̄) :- L_1, ..., L_m` becomes
//!
//! ```text
//! p@α(t̄) :- magic@p@α(t̄|bound), L_1, ..., L_m.
//! ```
//!
//! and every adorned IDB body occurrence `q@β` contributes a magic rule
//!
//! ```text
//! magic@q@β(args|bound) :- magic@p@α(t̄|bound), L_1, ..., L_{i-1}.
//! ```
//!
//! seeded with the fact `magic@q0@α0(c̄)` holding the query constants. The
//! rewritten program is evaluated semi-naively; the sizes of the `magic`
//! and rewritten `t` relations are the quantities Lemma 4.2 bounds from
//! below.

use sepra_ast::{Atom, Interner, Literal, Program, Query, Rule, Sym, Term};
use sepra_eval::{query_answers, seminaive_with_options, Derived, EvalError, EvalOptions};
use sepra_storage::{Database, EvalStats, Relation};

use crate::adorn::{adorn_program, adorned_name, Adornment};

/// The result of a Magic Sets evaluation.
#[derive(Debug)]
pub struct MagicOutcome {
    /// Answers as full tuples of the (original) query predicate.
    pub answers: Relation,
    /// Peak sizes of every relation the rewritten program materialized
    /// (`magic@...` and `p@...` relations), plus counters.
    pub stats: EvalStats,
    /// The rewritten program, for inspection.
    pub rewritten: Program,
    /// All derived relations, for inspection.
    pub derived: Derived,
    /// The working database (a private copy of the caller's), whose
    /// interner resolves the generated `magic@...` / `p@ad` names.
    pub db: Database,
}

/// The magic name for an adorned predicate, e.g. `magic@buys@bf`.
fn magic_name(pred: Sym, adornment: &Adornment, interner: &mut Interner) -> Sym {
    let base = adorned_name(pred, adornment, interner);
    let name = format!("magic@{}", interner.resolve(base));
    interner.intern(&name)
}

/// Rewrites and evaluates `query` over `program` and `db` with Generalized
/// Magic Sets.
///
/// ```
/// use sepra_storage::Database;
/// use sepra_rewrite::magic_evaluate;
///
/// let mut db = Database::new();
/// db.load_fact_text("e(a, b). e(b, c). e(x, y).").unwrap();
/// let program = sepra_ast::parse_program(
///     "t(X, Y) :- e(X, Y).\n t(X, Y) :- e(X, W), t(W, Y).\n",
///     db.interner_mut(),
/// )
/// .unwrap();
/// let query = sepra_ast::parse_query("t(a, Y)?", db.interner_mut()).unwrap();
/// let out = magic_evaluate(&program, &query, &db).unwrap();
/// assert_eq!(out.answers.len(), 2); // b and c; x/y never explored
/// ```
pub fn magic_evaluate(
    program: &Program,
    query: &Query,
    db: &Database,
) -> Result<MagicOutcome, EvalError> {
    magic_evaluate_with_options(program, query, db, &EvalOptions::default())
}

/// [`magic_evaluate`] with explicit [`EvalOptions`] for the semi-naive
/// engine evaluating the rewritten program (notably the thread count).
pub fn magic_evaluate_with_options(
    program: &Program,
    query: &Query,
    db: &Database,
    eval: &EvalOptions,
) -> Result<MagicOutcome, EvalError> {
    if !query.has_selection() {
        return Err(EvalError::Unsupported(
            "magic sets needs at least one bound argument; evaluate bottom-up instead".into(),
        ));
    }
    // Work on a private copy of the database so program facts and
    // base-splits do not leak into the caller's EDB.
    let mut db = db.clone();

    // Hoist program facts into the EDB; split IDB predicates that also have
    // EDB facts through a fresh `@base` exit rule.
    let mut rules: Vec<Rule> = Vec::new();
    let mut idb: Vec<Sym> = Vec::new();
    for rule in &program.rules {
        if rule.is_fact() {
            db.insert_atom(&rule.head)
                .map_err(|e| EvalError::Unsupported(format!("bad program fact: {e}")))?;
        } else {
            if !idb.contains(&rule.head.pred) {
                idb.push(rule.head.pred);
            }
            rules.push(rule.clone());
        }
    }
    for &pred in &idb {
        if db.relation(pred).is_some_and(|r| !r.is_empty()) {
            // Rename the predicate's facts to `pred@base` and add the exit
            // rule `pred(vars) :- pred@base(vars)`.
            let interner = db.interner_mut();
            let base_name = format!("{}@base", interner.resolve(pred));
            let base = interner.intern(&base_name);
            let facts = db.relation(pred).cloned().expect("checked non-empty");
            let arity = facts.arity();
            db.relation_mut(base, arity).union_in_place(&facts);
            // Remove original facts by replacing the relation with empty.
            *db.relation_mut(pred, arity) = Relation::new(arity);
            let vars: Vec<Term> =
                (0..arity).map(|i| Term::Var(db.interner_mut().intern(&format!("B{i}")))).collect();
            rules.push(Rule::new(
                Atom::new(pred, vars.clone()),
                vec![Literal::Atom(Atom::new(base, vars))],
            ));
        }
    }
    let program = Program::new(rules);

    // Adorn.
    let idb_check = idb.clone();
    let adorned = adorn_program(&program, query, db.interner_mut(), &|p| idb_check.contains(&p));

    // Magic rewrite.
    let mut out_rules: Vec<Rule> = Vec::new();
    // Maps an adorned name like `buys@bf` back to `(buys, [true, false])`.
    // Validated strictly (suffix must be all b/f of the right length) so
    // helper predicates like `t@base` are never mistaken for adorned ones.
    let parse_adorned = |atom: &Atom, interner: &Interner| -> Option<(Sym, Adornment)> {
        let name = interner.resolve(atom.pred);
        let (base, suffix) = name.rsplit_once('@')?;
        if suffix.len() != atom.arity() || !suffix.chars().all(|c| c == 'b' || c == 'f') {
            return None;
        }
        let orig = interner.get(base)?;
        Some((orig, suffix.chars().map(|c| c == 'b').collect()))
    };
    let magic_of =
        |atom: &Atom, original_pred: Sym, adornment: &Adornment, interner: &mut Interner| -> Atom {
            let magic_pred = magic_name(original_pred, adornment, interner);
            let bound_terms: Vec<Term> =
                atom.terms.iter().zip(adornment).filter_map(|(t, &b)| b.then_some(*t)).collect();
            Atom::new(magic_pred, bound_terms)
        };

    for rule in &adorned.program.rules {
        let (head_orig, head_ad) = parse_adorned(&rule.head, db.interner())
            .ok_or_else(|| EvalError::Planning("unmappable adorned head".into()))?;
        let magic_head = magic_of(&rule.head, head_orig, &head_ad, db.interner_mut());
        // Guarded rule.
        let mut guarded_body = vec![Literal::Atom(magic_head.clone())];
        guarded_body.extend(rule.body.iter().cloned());
        out_rules.push(Rule::new(rule.head.clone(), guarded_body));
        // Magic rules for each adorned IDB body occurrence.
        let mut prefix: Vec<Literal> = vec![Literal::Atom(magic_head.clone())];
        for lit in &rule.body {
            if let Literal::Atom(atom) = lit {
                if let Some((orig, ad)) = parse_adorned(atom, db.interner()) {
                    if idb.contains(&orig) {
                        let magic_atom = magic_of(atom, orig, &ad, db.interner_mut());
                        out_rules.push(Rule::new(magic_atom, prefix.clone()));
                    }
                }
            }
            prefix.push(lit.clone());
        }
    }
    // Seed fact.
    let seed_pred = magic_name(query.atom.pred, &adorned.query_adornment, db.interner_mut());
    let seed_terms: Vec<Term> = query.atom.terms.iter().filter(|t| t.is_const()).cloned().collect();
    out_rules.push(Rule::fact(Atom::new(seed_pred, seed_terms)));

    let rewritten = Program::new(out_rules);
    let derived = seminaive_with_options(&rewritten, &db, eval)?;
    let answers = query_answers(&adorned.query, &db, Some(&derived))?;
    let mut stats = derived.stats.clone();
    stats.record_size("ans", answers.len());
    Ok(MagicOutcome { answers, stats, rewritten, derived, db })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, parse_query};
    use sepra_eval::seminaive;

    fn run(program_src: &str, facts: &str, query_src: &str) -> (MagicOutcome, Database) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        let out = magic_evaluate(&program, &query, &db).unwrap();
        (out, db)
    }

    fn expected(program_src: &str, facts: &str, query_src: &str) -> Relation {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        let derived = seminaive(&program, &db).unwrap();

        query_answers(&query, &db, Some(&derived)).unwrap()
    }

    const TC: &str = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\n";
    const EDGES: &str = "e(a, b). e(b, c). e(c, d). e(x, c). e(d, a).";

    /// Answers must match semi-naive modulo the adorned-predicate renaming:
    /// compare value tuples.
    fn assert_same_tuples(a: &Relation, b: &Relation) {
        assert_eq!(a.len(), b.len(), "sizes differ: {} vs {}", a.len(), b.len());
        for t in a.iter() {
            assert!(b.contains_row(t), "missing tuple");
        }
    }

    #[test]
    fn magic_matches_seminaive_on_closure() {
        let (out, _) = run(TC, EDGES, "t(a, Y)?");
        let exp = expected(TC, EDGES, "t(a, Y)?");
        assert_same_tuples(&out.answers, &exp);
        assert!(!out.answers.is_empty());
    }

    #[test]
    fn magic_restricts_exploration() {
        // From `a`, the node `x` is unreachable; magic must never touch it.
        let (out, _) = run(TC, EDGES, "t(a, Y)?");
        let magic_pred = out.db.interner().get("magic@t@bf").unwrap();
        let magic_rel = out.derived.relation(magic_pred).unwrap();
        let x = out.db.interner().get("x").unwrap();
        for t in magic_rel.iter() {
            assert_ne!(t[0].as_sym(), Some(x), "magic set explored unreachable node");
        }
    }

    #[test]
    fn magic_on_example_1_2_matches() {
        let p = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                 buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                 buys(X, Y) :- perfectFor(X, Y).\n";
        let f = "friend(tom, sue). friend(sue, joe).\n\
                 perfectFor(joe, widget). cheaper(bargain, widget).";
        let (out, _) = run(p, f, "buys(tom, Y)?");
        let exp = expected(p, f, "buys(tom, Y)?");
        assert_same_tuples(&out.answers, &exp);
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn magic_with_program_facts() {
        let p = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\ne(extra, a).\n";
        let (out, _) = run(p, EDGES, "t(extra, Y)?");
        let exp = expected(p, EDGES, "t(extra, Y)?");
        assert_same_tuples(&out.answers, &exp);
    }

    #[test]
    fn magic_with_idb_facts_uses_base_split() {
        // `t` has both rules and EDB facts.
        let p = "t(X, Y) :- e(X, W), t(W, Y).\n";
        let f = "e(a, b). t(b, goal).";
        let (out, _) = run(p, f, "t(a, Y)?");
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn magic_second_column_selection() {
        let (out, _) = run(TC, EDGES, "t(X, d)?");
        let exp = expected(TC, EDGES, "t(X, d)?");
        assert_same_tuples(&out.answers, &exp);
    }

    #[test]
    fn unbound_query_is_rejected() {
        let mut db = Database::new();
        db.load_fact_text(EDGES).unwrap();
        let program = parse_program(TC, db.interner_mut()).unwrap();
        let query = parse_query("t(X, Y)?", db.interner_mut()).unwrap();
        assert!(magic_evaluate(&program, &query, &db).is_err());
    }

    #[test]
    fn stats_track_magic_relations() {
        let (out, _) = run(TC, EDGES, "t(a, Y)?");
        assert!(out.stats.relation_sizes.keys().any(|k| k.starts_with("magic@")));
    }
}
