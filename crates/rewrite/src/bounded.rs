//! Evaluation of detected-bounded recursions without a fixpoint.
//!
//! [`sepra_core::bounded`] proves a recursion equivalent to the
//! nonrecursive rule set `U_0 ∪ ... ∪ U_k`; this module realizes that
//! proof: the recursive predicate's rules are replaced by the kept chain,
//! and the synthetic `t@edb` predicate — which the analysis used to stand
//! for `t`'s directly asserted facts — is bound to a copy of `t`'s EDB
//! relation. The rewritten program is nonrecursive in `t`, so the
//! semi-naive engine evaluates its stratum in a single pass with **zero**
//! fixpoint iterations; answers are identical to evaluating the original
//! recursion to fixpoint.

use sepra_ast::{Program, Query, Rule};
use sepra_core::bounded::BoundedRecursion;
use sepra_eval::{query_answers, seminaive_with_options, Derived, EvalError, EvalOptions};
use sepra_storage::{Database, EvalStats, Relation};

/// The result of a bounded evaluation; mirrors
/// [`crate::magic::MagicOutcome`].
#[derive(Debug)]
pub struct BoundedOutcome {
    /// Answers as full tuples of the query predicate.
    pub answers: Relation,
    /// Evaluation statistics of the rewritten program (its `iterations`
    /// counter stays at zero for the bounded predicate's stratum — no
    /// fixpoint ran).
    pub stats: EvalStats,
    /// The nonrecursive rewritten program, for inspection.
    pub rewritten: Program,
    /// All derived relations, for inspection.
    pub derived: Derived,
    /// The working database (a private copy of the caller's) whose
    /// interner resolves the `t@edb` name.
    pub db: Database,
}

/// Replaces the bounded predicate's rules with the nonrecursive chain.
/// Facts and rules of other predicates pass through unchanged.
pub fn bounded_rewrite(program: &Program, bounded: &BoundedRecursion) -> Program {
    let mut rules: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| r.is_fact() || r.head.pred != bounded.pred)
        .cloned()
        .collect();
    rules.extend(bounded.rules.iter().cloned());
    Program::new(rules)
}

/// Evaluates `query` by the nonrecursive rewrite with default options.
pub fn bounded_evaluate(
    program: &Program,
    query: &Query,
    db: &Database,
    bounded: &BoundedRecursion,
) -> Result<BoundedOutcome, EvalError> {
    bounded_evaluate_with_options(program, query, db, bounded, &EvalOptions::default())
}

/// [`bounded_evaluate`] with explicit [`EvalOptions`] for the semi-naive
/// engine evaluating the rewritten program.
pub fn bounded_evaluate_with_options(
    program: &Program,
    query: &Query,
    db: &Database,
    bounded: &BoundedRecursion,
    eval: &EvalOptions,
) -> Result<BoundedOutcome, EvalError> {
    // Work on a private copy so program facts and the `t@edb` snapshot do
    // not leak into the caller's EDB.
    let mut db = db.clone();
    for rule in &program.rules {
        if rule.is_fact() {
            db.insert_atom(&rule.head)
                .map_err(|e| EvalError::Unsupported(format!("bad program fact: {e}")))?;
        }
    }
    let rewritten = bounded_rewrite(program, bounded);

    // Bind the analysis's opaque `t@edb` predicate to the facts directly
    // asserted for `t` (always materialized, possibly empty, so the plans
    // referencing it find a relation).
    let snapshot = db.relation(bounded.pred).cloned();
    let edb = db.relation_mut(bounded.edb_pred, bounded.arity);
    if let Some(facts) = snapshot {
        edb.union_in_place(&facts);
    }

    let derived = seminaive_with_options(&rewritten, &db, eval)?;
    let answers = query_answers(query, &db, Some(&derived))?;
    let mut stats = derived.stats.clone();
    stats.record_size("ans", answers.len());
    Ok(BoundedOutcome { answers, stats, rewritten, derived, db })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, parse_query, RecursiveDef};
    use sepra_core::bounded::analyze;

    fn eval_both(program_src: &str, facts: &str, query_src: &str) -> (BoundedOutcome, Relation) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        let pred = query.atom.pred;
        let bounded = {
            let def = RecursiveDef::extract(&program, pred, db.interner()).unwrap();
            analyze(&def, db.interner_mut()).expect("program is bounded")
        };
        let out = bounded_evaluate(&program, &query, &db, &bounded).unwrap();
        let derived = seminaive_with_options(&program, &db, &EvalOptions::default()).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        (out, expected)
    }

    fn assert_same_tuples(a: &Relation, b: &Relation) {
        assert_eq!(a.len(), b.len());
        for t in a.iter() {
            assert!(b.contains_row(t), "tuple sets differ");
        }
    }

    #[test]
    fn vacuous_rule_matches_fixpoint() {
        let (out, expected) = eval_both(
            "t(X, Y) :- e(X, Y), t(X, Y).\nt(X, Y) :- t0(X, Y).\n",
            "e(a, b). e(b, c). t0(a, b). t0(c, d).",
            "t(X, Y)?",
        );
        assert_same_tuples(&out.answers, &expected);
        assert_eq!(out.stats.iterations, 0, "bounded evaluation must skip the fixpoint");
    }

    #[test]
    fn swap_recursion_matches_fixpoint() {
        let (out, expected) = eval_both(
            "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n",
            "sym(a, b). sym(b, a). sym(c, d). base(b, a). base(c, d). base(e, f).",
            "t(X, Y)?",
        );
        assert_same_tuples(&out.answers, &expected);
        assert_eq!(out.stats.iterations, 0);
        // base(b,a) flips through sym into t(a,b); sym(c,d) has no
        // reversed base fact, so nothing new from c/d.
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn directly_asserted_facts_feed_the_rewrite() {
        // t(d, c) is an EDB fact of the recursive predicate itself: the
        // recursion flips it through sym(c, d) into t(c, d). The rewrite
        // must see it via the t@edb snapshot.
        let (out, expected) = eval_both(
            "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n",
            "sym(a, b). sym(c, d). base(b, a). t(d, c).",
            "t(X, Y)?",
        );
        assert_same_tuples(&out.answers, &expected);
        let mut found = false;
        for t in out.answers.iter() {
            let rendered = t.display(out.db.interner()).to_string();
            if rendered.contains("c") && rendered.contains("d") {
                found = true;
            }
        }
        assert!(found, "flipped EDB fact must be derived");
    }

    #[test]
    fn program_facts_are_hoisted() {
        let (out, expected) = eval_both(
            "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\nt(p, q).\nsym(q, p).\n",
            "base(x, y).",
            "t(X, Y)?",
        );
        assert_same_tuples(&out.answers, &expected);
        // t(p,q) direct, t(q,p) flipped, base(x,y).
        assert_eq!(out.answers.len(), 3);
    }

    #[test]
    fn bound_queries_filter_answers() {
        let (out, expected) = eval_both(
            "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n",
            "sym(a, b). sym(b, a). base(b, a). base(a, c). base(z, w).",
            "t(a, Y)?",
        );
        assert_same_tuples(&out.answers, &expected);
    }
}
