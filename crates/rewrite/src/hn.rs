//! The Henschen–Naqvi iterative algorithm \[HN84\].
//!
//! Henschen and Naqvi compile a recursive query into an iterative program
//! that enumerates the *expansion strings* of the recursion one at a time:
//! each sequence of recursive-rule applications is evaluated as its own
//! relational expression, with no memoization across strings. The paper's
//! Section 1 makes two observations about it, both reproduced here:
//!
//! * with several recursive rules in a class, the number of strings of
//!   length `i` is `pⁱ`, so the total work is `Ω(2ⁿ)` on Example 1.1 —
//!   even though most strings reach exactly the same values (which the
//!   Separable algorithm's shared `seen_1` exploits);
//! * there is no `seen` set at all, so **cyclic data never converges**;
//!   the implementation bounds the descent depth and reports divergence.
//!
//! The exit join and the upward closure through the remaining equivalence
//! classes reuse the shared plan machinery, exactly as the Counting
//! baseline does — the measured object is the per-string descent.

use sepra_ast::Query;
use sepra_core::detect::SeparableRecursion;
use sepra_core::exec::{run_seed_and_phase2, ExecOptions, ExtraRelations};
use sepra_core::plan::{
    build_plan_with, classify_selection, PlanSelection, SelectionKind, AUX_CARRY1,
};
use sepra_eval::{filter_by_query, EvalError, IndexCache, Planner, PlannerStats, RelKey, RelStore};
use sepra_storage::{Database, EvalStats, Relation, Tuple, Value};

/// Options for the Henschen–Naqvi evaluation.
#[derive(Debug, Clone, Default)]
pub struct HnOptions {
    /// Maximum string length. Defaults to the number of distinct constants
    /// (longer strings must repeat a value, i.e. the data is cyclic and the
    /// enumeration does not terminate).
    pub max_depth: Option<usize>,
    /// Execution options for the answer phase.
    pub exec: ExecOptions,
}

/// The result of a Henschen–Naqvi evaluation.
#[derive(Debug)]
pub struct HnOutcome {
    /// Answers as full tuples of the query predicate.
    pub answers: Relation,
    /// Statistics; headline entries are `hn_work` (total frontier tuples
    /// across all strings and levels) and `hn_strings` (peak live strings).
    pub stats: EvalStats,
}

/// Evaluates `query` with the Henschen–Naqvi string-at-a-time strategy.
///
/// Requires a full selection on one equivalence class, like the Counting
/// baseline.
pub fn hn_evaluate(
    sep: &SeparableRecursion,
    query: &Query,
    db: &Database,
    opts: &HnOptions,
) -> Result<HnOutcome, EvalError> {
    let SelectionKind::FullClass { class } = classify_selection(sep, query) else {
        return Err(EvalError::Unsupported(
            "the Henschen-Naqvi baseline supports selections that fully bind one class".into(),
        ));
    };
    let pstats = PlannerStats::from_database(db);
    let planner = Planner::new(opts.exec.plan_mode, Some(&pstats));
    let plan = build_plan_with(sep, &PlanSelection::Class(class), &planner)?;
    let phase1 = plan.phase1.as_ref().expect("class plan has phase 1");
    let width = phase1.columns.len();
    let max_depth = opts.max_depth.unwrap_or_else(|| db.distinct_constant_count().max(1));

    let mut stats = EvalStats::new();
    planner.record_into(&mut stats);
    let extra = ExtraRelations::default();

    // The seed string: the selection constants.
    let mut seed_vals: Vec<Value> = Vec::with_capacity(width);
    for &c in &phase1.columns {
        let sepra_ast::Term::Const(konst) = query.atom.terms[c] else {
            return Err(EvalError::Planning("full class selection expected constants".into()));
        };
        seed_vals.push(Value::from_const(konst)?);
    }
    let mut seed = Relation::new(width);
    seed.insert(Tuple::new(seed_vals));

    // Every value vector reached by any string (fed to the answer phase).
    let mut reached = seed.clone();
    // Active strings: each is just its current frontier relation.
    let mut active: Vec<Relation> = vec![seed];
    let mut work: usize = 1;
    let mut peak_strings = 1usize;
    stats.record_size("hn_work", work);
    stats.record_size("hn_strings", peak_strings);

    let mut indexes = IndexCache::new();
    let mut level = 0usize;
    while !active.is_empty() {
        stats.record_iteration();
        level += 1;
        if level > max_depth {
            return Err(EvalError::Diverged {
                what: "Henschen-Naqvi string enumeration (cyclic data or depth bound exceeded)"
                    .into(),
                bound: max_depth,
            });
        }
        opts.exec.budget.check(
            "Henschen-Naqvi string enumeration",
            stats.iterations,
            stats.tuples_inserted,
        )?;
        let mut next: Vec<Relation> = Vec::with_capacity(active.len() * phase1.steps.len());
        for frontier in &active {
            for (_, step) in &phase1.steps {
                let mut store = RelStore::new();
                for (p, r) in db.relations() {
                    store.bind(RelKey::Pred(p), r);
                }
                store.bind(RelKey::Aux(AUX_CARRY1), frontier);
                if opts.exec.use_indexes {
                    indexes.prepare(step, &store);
                }
                let mut out = Relation::new(width);
                step.execute(&store, &indexes, &[], &mut |row| {
                    let was_new = out.insert(Tuple::new(row.to_vec()));
                    stats.record_insert(was_new);
                });
                if !out.is_empty() {
                    work += out.len();
                    reached.union_in_place(&out);
                    next.push(out);
                }
            }
        }
        indexes.invalidate(RelKey::Aux(AUX_CARRY1));
        peak_strings = peak_strings.max(next.len());
        stats.record_size("hn_work", work);
        stats.record_size("hn_strings", peak_strings);
        active = next;
    }

    // Answer phase: shared exit join + upward closure over `reached`.
    stats.record_size("seen_1", reached.len());
    let seen2 = run_seed_and_phase2(
        &plan,
        db,
        &extra,
        Some(&reached),
        &mut indexes,
        &opts.exec,
        &mut stats,
    )?;

    let fixed: Vec<(usize, Value)> = phase1
        .columns
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let sepra_ast::Term::Const(konst) = query.atom.terms[c] else {
                unreachable!("validated above");
            };
            let _ = i;
            Ok((c, Value::from_const(konst)?))
        })
        .collect::<Result<_, EvalError>>()?;
    let mut full = Relation::new(sep.arity);
    for row in seen2.iter() {
        let mut values = vec![Value::int(0).expect("zero fits"); sep.arity];
        for &(pos, v) in &fixed {
            values[pos] = v;
        }
        for (i, &pos) in plan.phase2.columns.iter().enumerate() {
            values[pos] = row[i];
        }
        full.insert(Tuple::from(values));
    }
    let answers = filter_by_query(query, &full)?;
    stats.record_size("ans", answers.len());
    Ok(HnOutcome { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program, parse_query};
    use sepra_core::detect::detect_in_program;
    use sepra_eval::{query_answers, seminaive};

    const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    fn setup(
        program_src: &str,
        facts: &str,
        pred: &str,
        query_src: &str,
    ) -> (SeparableRecursion, Query, Database, sepra_ast::Program) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let p = db.intern(pred);
        let sep = detect_in_program(&program, p, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();
        (sep, query, db, program)
    }

    #[test]
    fn hn_matches_seminaive_on_acyclic_data() {
        let facts = "friend(a, b). friend(b, c). idol(a, c). idol(c, d).\n\
                     perfectFor(d, widget). perfectFor(b, gadget).";
        let (sep, query, db, program) = setup(EX_1_1, facts, "buys", "buys(a, Y)?");
        let out = hn_evaluate(&sep, &query, &db, &HnOptions::default()).unwrap();
        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(out.answers, expected);
    }

    #[test]
    fn hn_work_is_exponential_on_example_1_1() {
        // friend = idol = chain: 2^i strings alive at level i, so total
        // work is 2^(n+1) - 1 frontier tuples.
        let n = 10;
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("friend(v{i}, v{}). idol(v{i}, v{}). ", i + 1, i + 1));
        }
        facts.push_str(&format!("perfectFor(v{n}, widget)."));
        let (sep, query, db, _) = setup(EX_1_1, &facts, "buys", "buys(v0, Y)?");
        let out = hn_evaluate(&sep, &query, &db, &HnOptions::default()).unwrap();
        assert_eq!(out.stats.relation_sizes["hn_work"], (1 << (n + 1)) - 1);
        assert_eq!(out.stats.relation_sizes["hn_strings"], 1 << n);
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn hn_diverges_on_cyclic_data() {
        let facts = "friend(a, b). friend(b, a). perfectFor(a, w).";
        let (sep, query, db, _) = setup(EX_1_1, facts, "buys", "buys(a, Y)?");
        let err = hn_evaluate(&sep, &query, &db, &HnOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Diverged { .. }), "{err}");
    }

    #[test]
    fn hn_single_rule_is_linear() {
        let tc = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n";
        let mut facts = String::new();
        for i in 0..30 {
            facts.push_str(&format!("e(v{i}, v{}). ", i + 1));
        }
        let (sep, query, db, program) = setup(tc, &facts, "t", "t(v0, Y)?");
        let out = hn_evaluate(&sep, &query, &db, &HnOptions::default()).unwrap();
        assert_eq!(out.stats.relation_sizes["hn_work"], 31);
        assert_eq!(out.stats.relation_sizes["hn_strings"], 1);
        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(out.answers, expected);
    }

    #[test]
    fn hn_rejects_persistent_selection() {
        let facts = "friend(a, b). perfectFor(b, w).";
        let (sep, query, db, _) = setup(EX_1_1, facts, "buys", "buys(X, w)?");
        assert!(matches!(
            hn_evaluate(&sep, &query, &db, &HnOptions::default()),
            Err(EvalError::Unsupported(_))
        ));
    }
}
