//! Golden-file tests for `sepra check` rendering — text and JSON — over
//! the committed example programs in `examples/datalog/`.
//!
//! The goldens live at `tests/golden/check/<fixture>.{txt,json}` in the
//! repository root. After an intentional change to the renderer or the
//! passes, bless new output with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sepra-server --test golden_check
//! ```
//!
//! The binary runs with the repository root as its working directory so
//! the file names rendered in `--> examples/datalog/...` lines are
//! machine-independent.

use std::path::{Path, PathBuf};
use std::process::Command;

const FIXTURES: &[&str] = &[
    "bnd_subsumed",
    "bnd_swap",
    "bnd_tautology",
    "boundcols",
    "buys",
    "lints",
    "magic_subsumptive",
    "overlap",
    "sg",
    "shift",
    "str_reach_count",
    "str_setdiff",
    "str_shortest",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/server sits two levels below the repo root")
        .to_path_buf()
}

fn run_check(root: &Path, fixture: &str, json: bool) -> String {
    let rel = format!("examples/datalog/{fixture}.dl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sepra"));
    cmd.current_dir(root).arg("check");
    if json {
        cmd.args(["--format", "json"]);
    }
    let out = cmd.arg(&rel).output().expect("binary runs");
    assert!(
        out.stderr.is_empty(),
        "sepra check {rel} wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("diagnostic output is UTF-8")
}

fn compare(root: &Path, fixture: &str, ext: &str, actual: &str) -> Result<(), String> {
    let golden = root.join("tests/golden/check").join(format!("{fixture}.{ext}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, actual).unwrap();
        return Ok(());
    }
    let expected = std::fs::read_to_string(&golden).map_err(|e| {
        format!("cannot read {}: {e}\n(bless goldens with UPDATE_GOLDEN=1)", golden.display())
    })?;
    if expected == actual {
        return Ok(());
    }
    Err(format!(
        "{} is stale (bless with UPDATE_GOLDEN=1)\n--- expected\n{expected}--- actual\n{actual}",
        golden.display()
    ))
}

#[test]
fn check_output_matches_goldens() {
    let root = repo_root();
    let mut failures = Vec::new();
    for fixture in FIXTURES {
        for (json, ext) in [(false, "txt"), (true, "json")] {
            let actual = run_check(&root, fixture, json);
            if let Err(e) = compare(&root, fixture, ext, &actual) {
                failures.push(e);
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
