//! End-to-end tests for `sepra serve`: a real subprocess, real TCP
//! connections, concurrent clients, a query that exceeds its deadline
//! while the server keeps serving, live stats, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sepra_server::json::{self, Json};

/// Chain length for the transitive-closure fixture. Long enough that the
/// unselected closure (~ CHAIN²/2 tuples over CHAIN iterations) runs for
/// many budget checks, short enough to stay fast when allowed to finish.
const CHAIN: usize = 300;

fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
    let mut text = String::from("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n");
    for i in 0..CHAIN {
        text.push_str(&format!("e(n{i}, n{}).\n", i + 1));
    }
    let path = dir.join("chain.dl");
    std::fs::write(&path, text).expect("fixture writes");
    path
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `sepra serve` on an OS-assigned port and parses the address
    /// from its startup line.
    fn spawn(workers: usize) -> Self {
        Self::spawn_with(workers, &[])
    }

    fn spawn_with(workers: usize, extra_args: &[&str]) -> Self {
        let dir = std::env::temp_dir().join(format!("sepra_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fixture = write_fixture(&dir);
        let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
            .arg("serve")
            .arg(&fixture)
            .args(["--addr", "127.0.0.1:0", "--threads", &workers.to_string()])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("server prints a startup line").expect("startup line");
        let addr = banner
            .strip_prefix("sepra serve listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected startup line: {banner}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(&self.addr).expect("connects to server");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Connection { stream, reader }
    }

    /// Sends `quit` on stdin and waits for a clean exit.
    fn shutdown(mut self) {
        let mut stdin = self.child.stdin.take().expect("stdin is piped");
        stdin.write_all(b"quit\n").expect("writes quit");
        stdin.flush().unwrap();
        drop(stdin);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait works") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not shut down within 30s of `quit`");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn request(&mut self, body: &str) -> Json {
        self.stream.write_all(body.as_bytes()).expect("request writes");
        self.stream.write_all(b"\n").expect("newline writes");
        self.stream.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response reads");
        assert!(n > 0, "server closed the connection after {body:?}");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response JSON ({e}): {line}"))
    }
}

fn error_kind(v: &Json) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

#[test]
fn serves_concurrent_clients_with_deadlines_and_stats() {
    let server = Server::spawn(4);

    // Phase 1: four concurrent clients issue selection queries with known
    // answer counts (from n_k the chain reaches CHAIN - k nodes), while a
    // fifth asks for the full closure under a 1 ms deadline — it must get
    // a structured budget_exceeded error, not a hung server or a panic.
    let mut handles = Vec::new();
    for k in [0usize, 1, 2, 3] {
        let mut conn = server.connect();
        handles.push(std::thread::spawn(move || {
            let response = conn.request(&format!(r#"{{"query": "t(n{k}, Y)?"}}"#));
            assert_eq!(
                response.get("count").and_then(Json::as_u64),
                Some((CHAIN - k) as u64),
                "client {k}: {response:?}"
            );
            assert_eq!(
                response.get("strategy").and_then(Json::as_str),
                Some("separable"),
                "client {k}"
            );
            // Answers are tuples of the query predicate, sorted.
            match response.get("answers") {
                Some(Json::Arr(rows)) => {
                    assert_eq!(rows.len(), CHAIN - k);
                    assert_eq!(
                        rows[0],
                        Json::Arr(vec![
                            Json::Str(format!("n{k}")),
                            Json::Str(format!("n{}", k + 1)),
                        ])
                    );
                }
                other => panic!("client {k}: answers missing: {other:?}"),
            }
        }));
    }
    let mut deadline_conn = server.connect();
    let timing_out = std::thread::spawn(move || {
        deadline_conn.request(r#"{"query": "t(X, Y)?", "strategy": "seminaive", "timeout_ms": 1}"#)
    });
    for handle in handles {
        handle.join().expect("client thread succeeds");
    }
    let response = timing_out.join().expect("deadline client returns");
    assert_eq!(error_kind(&response), Some("budget_exceeded"), "{response:?}");
    assert_eq!(
        response.get("error").and_then(|e| e.get("resource")).and_then(Json::as_str),
        Some("deadline"),
        "{response:?}"
    );

    // Phase 2: the server keeps serving on the same and on new
    // connections after the budget error; malformed requests get
    // structured errors without dropping the connection.
    let mut conn = server.connect();
    let bad = conn.request("this is not json");
    assert_eq!(error_kind(&bad), Some("bad_request"), "{bad:?}");
    let capped = conn.request(r#"{"query": "t(X, Y)?", "max_tuples": 10}"#);
    assert_eq!(error_kind(&capped), Some("budget_exceeded"), "{capped:?}");
    assert_eq!(
        capped.get("error").and_then(|e| e.get("resource")).and_then(Json::as_str),
        Some("tuples"),
        "{capped:?}"
    );
    let ok = conn.request(r#"{"query": "t(n5, Y)?"}"#);
    assert_eq!(ok.get("count").and_then(Json::as_u64), Some((CHAIN - 5) as u64), "{ok:?}");

    // Phase 3: live stats reflect everything above.
    let stats = conn.request(r#"{"stats": true}"#);
    let queries = stats.get("queries").expect("queries member");
    assert_eq!(queries.get("ok").and_then(Json::as_u64), Some(5), "{stats:?}");
    assert_eq!(queries.get("budget_exceeded").and_then(Json::as_u64), Some(2), "{stats:?}");
    let by_strategy = queries.get("by_strategy").expect("by_strategy member");
    assert_eq!(by_strategy.get("separable").and_then(Json::as_u64), Some(5), "{stats:?}");
    let latency = stats.get("latency_us").expect("latency member");
    for member in ["min", "median", "max"] {
        assert!(latency.get(member).and_then(Json::as_u64).is_some(), "{stats:?}");
    }
    // Five selection queries on one predicate share one compiled plan.
    let cache = stats.get("plan_cache").expect("plan_cache member");
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1), "{stats:?}");
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 4, "{stats:?}");
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some(), "{stats:?}");

    // Phase 4: `quit` on stdin shuts the server down cleanly.
    server.shutdown();
}

#[test]
fn mutations_are_visible_to_every_connection_and_revertible() {
    let server = Server::spawn(2);
    let mut writer = server.connect();
    let mut reader = server.connect();

    let before = writer.request(r#"{"query": "t(n0, Y)?"}"#);
    assert_eq!(before.get("count").and_then(Json::as_u64), Some(CHAIN as u64), "{before:?}");

    // Extend the chain by one edge; both the mutating connection and an
    // unrelated one (a different worker's snapshot) must see the longer
    // closure immediately.
    let grown = writer.request(&format!(r#"{{"insert": ["e(n{}, n{})."]}}"#, CHAIN, CHAIN + 1));
    assert_eq!(grown.get("inserted").and_then(Json::as_u64), Some(1), "{grown:?}");
    assert_eq!(grown.get("retracted").and_then(Json::as_u64), Some(0), "{grown:?}");
    let generation = grown.get("generation").and_then(Json::as_u64).expect("generation");
    for conn in [&mut writer, &mut reader] {
        let after = conn.request(r#"{"query": "t(n0, Y)?"}"#);
        assert_eq!(after.get("count").and_then(Json::as_u64), Some(CHAIN as u64 + 1), "{after:?}");
    }

    // Retracting the edge restores the original closure exactly
    // (delete-and-rederive agrees with from-scratch evaluation).
    let shrunk = writer.request(&format!(r#"{{"retract": ["e(n{}, n{})."]}}"#, CHAIN, CHAIN + 1));
    assert_eq!(shrunk.get("retracted").and_then(Json::as_u64), Some(1), "{shrunk:?}");
    assert!(shrunk.get("generation").and_then(Json::as_u64) > Some(generation), "{shrunk:?}");
    for conn in [&mut reader, &mut writer] {
        let restored = conn.request(r#"{"query": "t(n0, Y)?"}"#);
        assert_eq!(
            restored.get("count").and_then(Json::as_u64),
            Some(CHAIN as u64),
            "{restored:?}"
        );
    }

    // An ineffective retraction commits nothing and keeps the generation.
    let noop = writer.request(r#"{"retract": ["e(n0, n99)."]}"#);
    assert_eq!(noop.get("retracted").and_then(Json::as_u64), Some(0), "{noop:?}");
    let stats = writer.request(r#"{"stats": true}"#);
    let mutations = stats.get("mutations").expect("mutations member");
    assert_eq!(mutations.get("ok").and_then(Json::as_u64), Some(3), "{stats:?}");
    assert_eq!(mutations.get("tuples_inserted").and_then(Json::as_u64), Some(1), "{stats:?}");
    assert_eq!(mutations.get("tuples_retracted").and_then(Json::as_u64), Some(1), "{stats:?}");
    assert!(stats.get("generation").and_then(Json::as_u64).is_some(), "{stats:?}");

    server.shutdown();
}

#[test]
fn slow_writers_survive_the_idle_timeout() {
    // 600 ms idle budget; the request drips in over ~1.25 s with every
    // inter-chunk gap well under the budget. Progress must reset the idle
    // clock — the regression was accumulating it across partial reads and
    // disconnecting mid-request.
    let server = Server::spawn_with(1, &["--idle-timeout-ms", "600"]);
    let conn = server.connect();
    let mut stream = conn.stream.try_clone().expect("stream clones");
    let request = br#"{"query": "t(n0, Y)?"}"#;
    let chunks: Vec<&[u8]> = request.chunks(5).collect();
    for chunk in &chunks {
        stream.write_all(chunk).expect("chunk writes");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(250));
    }
    stream.write_all(b"\n").expect("newline writes");
    stream.flush().unwrap();
    let mut conn = conn;
    let mut line = String::new();
    let n = conn.reader.read_line(&mut line).expect("response reads");
    assert!(n > 0, "server dropped a slow but live connection");
    let response = json::parse(line.trim()).expect("response is JSON");
    assert_eq!(response.get("count").and_then(Json::as_u64), Some(CHAIN as u64), "{response:?}");

    // A genuinely idle connection is still reclaimed.
    std::thread::sleep(Duration::from_millis(1500));
    line.clear();
    let n = conn.reader.read_line(&mut line).expect("EOF reads cleanly");
    assert_eq!(n, 0, "idle connection was not reclaimed: {line:?}");

    server.shutdown();
}

#[test]
fn request_framing_edges() {
    let server = Server::spawn(1);

    // A request of exactly MAX_REQUEST_BYTES (padded with JSON whitespace)
    // is still served.
    let mut conn = server.connect();
    let body = r#"{"query": "t(n0, Y)?"}"#;
    let padded = format!("{body}{}", " ".repeat(sepra_server::MAX_REQUEST_BYTES - body.len()));
    assert_eq!(padded.len(), sepra_server::MAX_REQUEST_BYTES);
    let response = conn.request(&padded);
    assert_eq!(response.get("count").and_then(Json::as_u64), Some(CHAIN as u64), "{response:?}");
    drop(conn); // free the (single) worker for the next connection

    // One byte past the cap (and no newline yet): a structured error, then
    // the connection closes.
    let mut conn = server.connect();
    let oversized = vec![b' '; sepra_server::MAX_REQUEST_BYTES + 1];
    conn.stream.write_all(&oversized).expect("oversized writes");
    conn.stream.flush().unwrap();
    let mut line = String::new();
    conn.reader.read_line(&mut line).expect("error response reads");
    let response = json::parse(line.trim()).expect("error response is JSON");
    assert_eq!(error_kind(&response), Some("bad_request"), "{response:?}");
    assert!(
        response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("exceeds")),
        "{response:?}"
    );
    line.clear();
    assert_eq!(conn.reader.read_line(&mut line).expect("EOF reads"), 0);

    // EOF right after an unterminated final request: the request is still
    // answered before the connection winds down.
    let mut conn = server.connect();
    conn.stream.write_all(body.as_bytes()).expect("request writes");
    conn.stream.flush().unwrap();
    conn.stream.shutdown(std::net::Shutdown::Write).expect("write half closes");
    let mut line = String::new();
    let n = conn.reader.read_line(&mut line).expect("response reads");
    assert!(n > 0, "unterminated final request was dropped");
    let response = json::parse(line.trim()).expect("response is JSON");
    assert_eq!(response.get("count").and_then(Json::as_u64), Some(CHAIN as u64), "{response:?}");

    server.shutdown();
}

#[test]
fn client_subcommand_round_trips() {
    let server = Server::spawn(2);
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["client", "--addr", &server.addr, "t(n0, Y)?", "--stats"])
        .output()
        .expect("client runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let answer = json::parse(lines.next().expect("answer line")).expect("answer is JSON");
    assert_eq!(answer.get("count").and_then(Json::as_u64), Some(CHAIN as u64));
    let stats = json::parse(lines.next().expect("stats line")).expect("stats is JSON");
    assert_eq!(stats.get("queries").and_then(|q| q.get("ok")).and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn refuses_programs_that_fail_the_lint_gate() {
    let dir = std::env::temp_dir().join(format!("sepra_serve_lint_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warned.dl");
    // `q` is undefined and `p` unused: warnings, rejected under --deny.
    std::fs::write(&path, "p(X) :- q(X).\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["serve", "--addr", "127.0.0.1:0", "--deny", "warnings"])
        .arg(&path)
        .output()
        .expect("server runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to serve"), "{stderr}");
}
