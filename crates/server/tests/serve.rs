//! End-to-end tests for `sepra serve`: a real subprocess, real TCP
//! connections, concurrent clients, a query that exceeds its deadline
//! while the server keeps serving, live stats, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sepra_server::json::{self, Json};

/// Chain length for the transitive-closure fixture. Long enough that the
/// unselected closure (~ CHAIN²/2 tuples over CHAIN iterations) runs for
/// many budget checks, short enough to stay fast when allowed to finish.
const CHAIN: usize = 300;

fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
    let mut text = String::from("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n");
    for i in 0..CHAIN {
        text.push_str(&format!("e(n{i}, n{}).\n", i + 1));
    }
    let path = dir.join("chain.dl");
    std::fs::write(&path, text).expect("fixture writes");
    path
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `sepra serve` on an OS-assigned port and parses the address
    /// from its startup line.
    fn spawn(workers: usize) -> Self {
        let dir = std::env::temp_dir().join(format!("sepra_serve_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fixture = write_fixture(&dir);
        let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
            .arg("serve")
            .arg(&fixture)
            .args(["--addr", "127.0.0.1:0", "--threads", &workers.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines.next().expect("server prints a startup line").expect("startup line");
        let addr = banner
            .strip_prefix("sepra serve listening on ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("unexpected startup line: {banner}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(&self.addr).expect("connects to server");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Connection { stream, reader }
    }

    /// Sends `quit` on stdin and waits for a clean exit.
    fn shutdown(mut self) {
        let mut stdin = self.child.stdin.take().expect("stdin is piped");
        stdin.write_all(b"quit\n").expect("writes quit");
        stdin.flush().unwrap();
        drop(stdin);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait works") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not shut down within 30s of `quit`");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn request(&mut self, body: &str) -> Json {
        self.stream.write_all(body.as_bytes()).expect("request writes");
        self.stream.write_all(b"\n").expect("newline writes");
        self.stream.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response reads");
        assert!(n > 0, "server closed the connection after {body:?}");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response JSON ({e}): {line}"))
    }
}

fn error_kind(v: &Json) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

#[test]
fn serves_concurrent_clients_with_deadlines_and_stats() {
    let server = Server::spawn(4);

    // Phase 1: four concurrent clients issue selection queries with known
    // answer counts (from n_k the chain reaches CHAIN - k nodes), while a
    // fifth asks for the full closure under a 1 ms deadline — it must get
    // a structured budget_exceeded error, not a hung server or a panic.
    let mut handles = Vec::new();
    for k in [0usize, 1, 2, 3] {
        let mut conn = server.connect();
        handles.push(std::thread::spawn(move || {
            let response = conn.request(&format!(r#"{{"query": "t(n{k}, Y)?"}}"#));
            assert_eq!(
                response.get("count").and_then(Json::as_u64),
                Some((CHAIN - k) as u64),
                "client {k}: {response:?}"
            );
            assert_eq!(
                response.get("strategy").and_then(Json::as_str),
                Some("separable"),
                "client {k}"
            );
            // Answers are tuples of the query predicate, sorted.
            match response.get("answers") {
                Some(Json::Arr(rows)) => {
                    assert_eq!(rows.len(), CHAIN - k);
                    assert_eq!(
                        rows[0],
                        Json::Arr(vec![
                            Json::Str(format!("n{k}")),
                            Json::Str(format!("n{}", k + 1)),
                        ])
                    );
                }
                other => panic!("client {k}: answers missing: {other:?}"),
            }
        }));
    }
    let mut deadline_conn = server.connect();
    let timing_out = std::thread::spawn(move || {
        deadline_conn.request(r#"{"query": "t(X, Y)?", "strategy": "seminaive", "timeout_ms": 1}"#)
    });
    for handle in handles {
        handle.join().expect("client thread succeeds");
    }
    let response = timing_out.join().expect("deadline client returns");
    assert_eq!(error_kind(&response), Some("budget_exceeded"), "{response:?}");
    assert_eq!(
        response.get("error").and_then(|e| e.get("resource")).and_then(Json::as_str),
        Some("deadline"),
        "{response:?}"
    );

    // Phase 2: the server keeps serving on the same and on new
    // connections after the budget error; malformed requests get
    // structured errors without dropping the connection.
    let mut conn = server.connect();
    let bad = conn.request("this is not json");
    assert_eq!(error_kind(&bad), Some("bad_request"), "{bad:?}");
    let capped = conn.request(r#"{"query": "t(X, Y)?", "max_tuples": 10}"#);
    assert_eq!(error_kind(&capped), Some("budget_exceeded"), "{capped:?}");
    assert_eq!(
        capped.get("error").and_then(|e| e.get("resource")).and_then(Json::as_str),
        Some("tuples"),
        "{capped:?}"
    );
    let ok = conn.request(r#"{"query": "t(n5, Y)?"}"#);
    assert_eq!(ok.get("count").and_then(Json::as_u64), Some((CHAIN - 5) as u64), "{ok:?}");

    // Phase 3: live stats reflect everything above.
    let stats = conn.request(r#"{"stats": true}"#);
    let queries = stats.get("queries").expect("queries member");
    assert_eq!(queries.get("ok").and_then(Json::as_u64), Some(5), "{stats:?}");
    assert_eq!(queries.get("budget_exceeded").and_then(Json::as_u64), Some(2), "{stats:?}");
    let by_strategy = queries.get("by_strategy").expect("by_strategy member");
    assert_eq!(by_strategy.get("separable").and_then(Json::as_u64), Some(5), "{stats:?}");
    let latency = stats.get("latency_us").expect("latency member");
    for member in ["min", "median", "max"] {
        assert!(latency.get(member).and_then(Json::as_u64).is_some(), "{stats:?}");
    }
    // Five selection queries on one predicate share one compiled plan.
    let cache = stats.get("plan_cache").expect("plan_cache member");
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1), "{stats:?}");
    assert!(cache.get("hits").and_then(Json::as_u64).unwrap_or(0) >= 4, "{stats:?}");
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some(), "{stats:?}");

    // Phase 4: `quit` on stdin shuts the server down cleanly.
    server.shutdown();
}

#[test]
fn client_subcommand_round_trips() {
    let server = Server::spawn(2);
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["client", "--addr", &server.addr, "t(n0, Y)?", "--stats"])
        .output()
        .expect("client runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut lines = stdout.lines();
    let answer = json::parse(lines.next().expect("answer line")).expect("answer is JSON");
    assert_eq!(answer.get("count").and_then(Json::as_u64), Some(CHAIN as u64));
    let stats = json::parse(lines.next().expect("stats line")).expect("stats is JSON");
    assert_eq!(stats.get("queries").and_then(|q| q.get("ok")).and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn refuses_programs_that_fail_the_lint_gate() {
    let dir = std::env::temp_dir().join(format!("sepra_serve_lint_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warned.dl");
    // `q` is undefined and `p` unused: warnings, rejected under --deny.
    std::fs::write(&path, "p(X) :- q(X).\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["serve", "--addr", "127.0.0.1:0", "--deny", "warnings"])
        .arg(&path)
        .output()
        .expect("server runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to serve"), "{stderr}");
}
