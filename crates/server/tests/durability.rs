//! End-to-end durability tests: a real `sepra serve` subprocess with
//! `--data-dir`, killed with SIGKILL mid-traffic, restarted, and checked
//! against a from-scratch evaluation of the committed facts — plus the
//! offline `sepra dump`/`sepra restore` pipeline and the REPL's
//! `:save`/`:load` on the same snapshot format.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sepra_engine::QueryProcessor;
use sepra_server::json::{self, Json};

/// The chain fixture: one recursive closure over a single seeded edge.
/// Every test mutation inserts exactly one new edge `e(m_i, m_{i+1})`, so
/// the database generation (one bump per effective tuple) equals the
/// number of edges, and "recovered generation G" maps to an exact
/// committed-mutation prefix.
const PROGRAM: &str = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(m0, m1).\n";

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sepra_durability_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("chain.dl");
    std::fs::write(&path, PROGRAM).expect("fixture writes");
    path
}

struct Server {
    child: Child,
    addr: String,
    recovery_banner: Option<String>,
}

impl Server {
    /// Spawns `sepra serve` on an OS-assigned port. With `--data-dir` the
    /// startup banner includes a recovery line before the listening line;
    /// both are captured.
    fn spawn(fixture: &std::path::Path, extra_args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
            .arg("serve")
            .arg(fixture)
            .args(["--addr", "127.0.0.1:0", "--threads", "2"])
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("server spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut recovery_banner = None;
        let addr = loop {
            let line = lines.next().expect("server prints startup lines").expect("startup line");
            if let Some(rest) = line.strip_prefix("sepra serve listening on ") {
                break rest.split_whitespace().next().expect("address in banner").to_string();
            }
            if line.starts_with("sepra serve recovered generation ") {
                recovery_banner = Some(line);
            }
        };
        Server { child, addr, recovery_banner }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(&self.addr).expect("connects to server");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Connection { stream, reader }
    }

    /// SIGKILL: no destructors, no flushes — the crash the WAL exists for.
    fn kill(mut self) {
        self.child.kill().expect("kill delivers");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let mut stdin = self.child.stdin.take().expect("stdin is piped");
        stdin.write_all(b"quit\n").expect("writes quit");
        stdin.flush().unwrap();
        drop(stdin);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait works") {
                Some(status) => {
                    assert!(status.success(), "server exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("server did not shut down within 30s of `quit`");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn request(&mut self, body: &str) -> Json {
        self.stream.write_all(body.as_bytes()).expect("request writes");
        self.stream.write_all(b"\n").expect("newline writes");
        self.stream.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response reads");
        assert!(n > 0, "server closed the connection after {body:?}");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response JSON ({e}): {line}"))
    }
}

/// Sorted answer tuples of `t(m0, Y)?` from a server response.
fn answer_set(response: &Json) -> Vec<String> {
    let Some(Json::Arr(rows)) = response.get("answers") else {
        panic!("response has no answers: {response:?}");
    };
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let Json::Arr(cells) = row else { panic!("row is not an array") };
            cells
                .iter()
                .map(|c| c.as_str().unwrap_or("?").to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

/// From-scratch evaluation of the base program plus the first `mutations`
/// committed edge inserts — the ground truth recovery must match.
fn from_scratch_answers(mutations: usize) -> Vec<String> {
    let mut qp = QueryProcessor::new();
    qp.load(PROGRAM).unwrap();
    for i in 1..=mutations {
        let fact = format!("e(m{i}, m{}).", i + 1);
        qp.apply_mutation(&[fact.as_str()], &[]).unwrap();
    }
    let result = qp.query("t(m0, Y)?").unwrap();
    let mut out: Vec<String> = result
        .answers
        .iter()
        .map(|t| {
            t.values()
                .map(|v| v.display(qp.db().interner()).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

fn durability_stats(conn: &mut Connection) -> Json {
    let v = conn.request(r#"{"stats": true}"#);
    v.get("durability").expect("durability stats member").clone()
}

#[test]
fn sigkill_mid_traffic_recovers_a_committed_prefix() {
    let dir = test_dir("crash");
    let fixture = write_fixture(&dir);
    let data_dir = dir.join("data");
    let data_dir_arg = data_dir.display().to_string();
    // A small checkpoint cadence so the crash lands after several
    // checkpoint+truncate cycles, exercising checkpoint + WAL-tail
    // recovery, not just log replay.
    let args =
        ["--data-dir", data_dir_arg.as_str(), "--fsync", "always", "--checkpoint-every", "5"];

    const ACKED: usize = 12;
    let acked_generation;
    {
        let server = Server::spawn(&fixture, &args);
        let mut conn = server.connect();
        // Phase 1: acknowledged mutations. Under --fsync always each
        // acknowledgement means the record is on disk: ALL of these must
        // survive the kill.
        for i in 1..=ACKED {
            let req = format!(r#"{{"insert": ["e(m{i}, m{})."]}}"#, i + 1);
            let v = conn.request(&req);
            assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(1), "mutation {i}: {v:?}");
        }
        let stats = durability_stats(&mut conn);
        acked_generation =
            stats.get("db_generation").and_then(Json::as_u64).expect("db_generation");
        assert_eq!(acked_generation, 1 + ACKED as u64); // base edge + ACKED inserts
        assert!(
            stats.get("last_checkpoint_generation").and_then(Json::as_u64).unwrap() > 0,
            "cadence 5 must have checkpointed during 12 mutations: {stats:?}"
        );

        // Phase 2: fire-and-forget traffic, then SIGKILL mid-stream. The
        // writer thread never reads responses, so the server is killed
        // with mutations in flight.
        let addr = server.addr.clone();
        let flooder = std::thread::spawn(move || {
            if let Ok(mut stream) = TcpStream::connect(&addr) {
                for i in (ACKED + 1)..(ACKED + 200) {
                    let req = format!("{{\"insert\": [\"e(m{i}, m{}).\"]}}\n", i + 1);
                    if stream.write_all(req.as_bytes()).is_err() {
                        break;
                    }
                }
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        server.kill();
        let _ = flooder.join();
    }

    // Restart on the same directory.
    let server = Server::spawn(&fixture, &args);
    let banner = server.recovery_banner.clone().expect("restart prints a recovery banner");
    let mut conn = server.connect();
    let stats = durability_stats(&mut conn);
    let recovery = stats.get("recovery").expect("recovery member");
    let recovered =
        recovery.get("recovered_generation").and_then(Json::as_u64).expect("recovered_generation");

    // The recovery invariant: everything acknowledged survived, and the
    // recovered state is an exact committed-generation prefix — each
    // generation is one whole single-tuple mutation, so the answer set
    // must equal a from-scratch evaluation of exactly that prefix.
    assert!(
        recovered >= acked_generation,
        "acknowledged generation {acked_generation} lost: recovered only {recovered}\n{banner}"
    );
    let committed_mutations = (recovered - 1) as usize;
    let v = conn.request(r#"{"query": "t(m0, Y)?", "timeout_ms": 30000}"#);
    assert_eq!(
        answer_set(&v),
        from_scratch_answers(committed_mutations),
        "recovered answers diverge from from-scratch evaluation at generation {recovered}"
    );

    // Post-recovery commits continue the generation lineage.
    let next = committed_mutations + 1;
    let req = format!(r#"{{"insert": ["e(x{next}, y{next})."]}}"#);
    let v = conn.request(&req);
    assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(1));
    let stats = durability_stats(&mut conn);
    assert_eq!(stats.get("db_generation").and_then(Json::as_u64), Some(recovered + 1));
    server.shutdown();
}

#[test]
fn clean_restart_resumes_without_replay_regressions() {
    let dir = test_dir("clean");
    let fixture = write_fixture(&dir);
    let data_dir = dir.join("data");
    let data_dir_arg = data_dir.display().to_string();
    // Interval fsync: a clean `quit` must still lose nothing (the final
    // sync happens on shutdown).
    let args = ["--data-dir", data_dir_arg.as_str(), "--fsync", "interval:50"];

    {
        let server = Server::spawn(&fixture, &args);
        assert!(
            server.recovery_banner.as_deref().is_some_and(|b| b.contains("generation 1")),
            "fresh dir recovers the program facts only: {:?}",
            server.recovery_banner
        );
        let mut conn = server.connect();
        for i in 1..=3 {
            conn.request(&format!(r#"{{"insert": ["e(m{i}, m{})."]}}"#, i + 1));
        }
        server.shutdown();
    }
    let server = Server::spawn(&fixture, &args);
    let mut conn = server.connect();
    let v = conn.request(r#"{"query": "t(m0, Y)?"}"#);
    assert_eq!(answer_set(&v), from_scratch_answers(3));
    let stats = durability_stats(&mut conn);
    assert_eq!(
        stats.get("recovery").and_then(|r| r.get("replayed_records")).and_then(Json::as_u64),
        Some(3)
    );
    server.shutdown();
}

#[test]
fn dump_restore_roundtrip_through_the_cli() {
    let dir = test_dir("dump_restore");
    let fixture = write_fixture(&dir);
    let source_dir = dir.join("source");
    let source_arg = source_dir.display().to_string();

    // Populate a data dir through a real server.
    {
        let server =
            Server::spawn(&fixture, &["--data-dir", source_arg.as_str(), "--fsync", "always"]);
        let mut conn = server.connect();
        for i in 1..=4 {
            conn.request(&format!(r#"{{"insert": ["e(m{i}, m{})."]}}"#, i + 1));
        }
        server.shutdown();
    }

    // dump: offline export (checkpoint + WAL tail merged).
    let snapshot = dir.join("facts.sepra");
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["dump", &snapshot.display().to_string(), "--data-dir", &source_arg])
        .output()
        .expect("dump runs");
    assert!(out.status.success(), "dump failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dumped 5 facts at generation 5"), "dump said: {stdout}");

    // restore into a fresh dir; restoring again without --force refuses.
    let restored_dir = dir.join("restored");
    let restored_arg = restored_dir.display().to_string();
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["restore", &snapshot.display().to_string(), "--data-dir", &restored_arg])
        .output()
        .expect("restore runs");
    assert!(out.status.success(), "restore failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["restore", &snapshot.display().to_string(), "--data-dir", &restored_arg])
        .output()
        .expect("restore runs");
    assert!(!out.status.success(), "restore onto existing state must refuse without --force");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("already holds durable state"),
        "unexpected refusal message: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A server over the restored dir answers exactly like the original.
    let server = Server::spawn(&fixture, &["--data-dir", restored_arg.as_str()]);
    let mut conn = server.connect();
    let v = conn.request(r#"{"query": "t(m0, Y)?"}"#);
    assert_eq!(answer_set(&v), from_scratch_answers(4));
    server.shutdown();
}

#[test]
fn repl_save_and_load_share_the_snapshot_format() {
    let dir = test_dir("repl");
    let fixture = write_fixture(&dir);
    let snapshot = dir.join("session.sepra");

    // :save from a REPL session that added one fact.
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&fixture)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child.stdin.as_mut().unwrap().write_all(
                format!(":insert e(m1, m2).\n:save {}\n:quit\n", snapshot.display()).as_bytes(),
            )?;
            child.wait_with_output()
        })
        .expect("repl runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("saved 2 facts (generation 2)"), "repl said: {stdout}");

    // :load merges the snapshot into a fresh session; the query then sees
    // the chain both from the program fact and the loaded one.
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&fixture)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .and_then(|mut child| {
            child.stdin.as_mut().unwrap().write_all(
                format!(":load {}\nt(m0, Y)?\n:quit\n", snapshot.display()).as_bytes(),
            )?;
            child.wait_with_output()
        })
        .expect("repl runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The program fact e(m0,m1) was already present; only e(m1,m2) merges.
    assert!(stdout.contains("1 facts merged"), "repl said: {stdout}");
    assert!(stdout.contains("(m0, m2)"), "loaded fact missing from answers: {stdout}");
}

#[test]
fn unusable_data_dir_is_a_structured_startup_error() {
    let dir = test_dir("blocked");
    let fixture = write_fixture(&dir);
    // The data dir path runs through a regular file: creation must fail
    // with a structured error (works even when running as root, unlike a
    // read-only directory).
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"occupied").unwrap();
    let data_dir = blocker.join("data");
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg("serve")
        .arg(&fixture)
        .args(["--addr", "127.0.0.1:0", "--data-dir", &data_dir.display().to_string()])
        .output()
        .expect("serve runs");
    assert!(!out.status.success(), "serve must refuse an unusable data dir");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error: durability:") && stderr.contains("creating data dir"),
        "expected a structured durability error, got: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "startup must not panic: {stderr}");
}

/// Relation statistics (row and per-column distinct counts, the planner's
/// inputs) are derived state: nothing in the checkpoint or the WAL encodes
/// them, yet a recovered database must plan with the same numbers as the
/// live one. Recovery replays through the ordinary mutation paths, so the
/// counts are rebuilt tuple by tuple — including the decrements that
/// retracted facts applied on the live side.
#[test]
fn recovery_rebuilds_identical_relation_statistics() {
    use std::collections::BTreeMap;

    use sepra_server::{Durability, DurabilityOptions};

    /// (rows, per-column distincts) keyed by predicate *name* — the live
    /// and recovered processors intern symbols independently, so `Sym`s
    /// are not comparable across them.
    fn stats_summary(db: &sepra_storage::Database) -> BTreeMap<String, (usize, Vec<usize>)> {
        db.relations()
            .map(|(pred, rel)| {
                let stats = rel.stats().expect("database relations maintain statistics");
                let distincts = (0..rel.arity()).map(|c| stats.distinct(c)).collect();
                (db.interner().resolve(pred).to_string(), (stats.rows(), distincts))
            })
            .collect()
    }

    let data_dir = test_dir("stats_parity").join("data");
    let mut live = QueryProcessor::new();
    live.load(PROGRAM).unwrap();
    let mut durability =
        Durability::recover(&mut live, &DurabilityOptions::new(data_dir.clone())).unwrap();

    // Skewed traffic: chain edges (both columns fresh every time) plus a
    // hub whose first column repeats, with a mid-stream checkpoint so
    // recovery exercises the snapshot-load path as well as WAL replay.
    for i in 1..=8u32 {
        let chain = format!("e(m{i}, m{}).", i + 1);
        let hub = format!("e(hub, m{i}).");
        let out = live.apply_mutation(&[&chain, &hub], &[]).unwrap();
        assert!(!out.delta.is_empty());
        durability.record_commit(live.db(), &out.delta).unwrap();
        if i == 4 {
            durability.checkpoint(live.db()).unwrap();
        }
    }
    // Retractions must decrement rows and release distinct values.
    let out = live.apply_mutation(&[], &["e(hub, m3).", "e(m5, m6)."]).unwrap();
    durability.record_commit(live.db(), &out.delta).unwrap();
    durability.sync().unwrap();
    drop(durability); // release the data-dir lock for the second recovery

    let mut recovered = QueryProcessor::new();
    recovered.load(PROGRAM).unwrap();
    let _guard = Durability::recover(&mut recovered, &DurabilityOptions::new(data_dir)).unwrap();

    let live_stats = stats_summary(live.db());
    assert_eq!(live_stats, stats_summary(recovered.db()));
    // Guard against a vacuous comparison: the skew must be visible.
    let (rows, distincts) = &live_stats["e"];
    assert_eq!(*rows, 1 + 16 - 2, "seed + inserts - retracts");
    assert!(distincts[0] < *rows, "hub column must repeat values");
}
