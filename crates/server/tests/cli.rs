//! Smoke tests for the `sepra` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("buys.dl");
    std::fs::write(
        &path,
        "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
         buys(X, Y) :- perfectFor(X, Y).\n\
         friend(tom, sue). friend(sue, joe).\n\
         perfectFor(joe, widget).\n",
    )
    .expect("fixture writes");
    path
}

#[test]
fn one_shot_query() {
    let dir = std::env::temp_dir().join("sepra_cli_test1");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "--stats"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(tom, widget)"), "{stdout}");
    assert!(stdout.contains("via separable"), "{stdout}");
    assert!(stdout.contains("seen_1"), "{stdout}");
}

#[test]
fn explain_flag() {
    let dir = std::env::temp_dir().join("sepra_cli_test2");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "--explain"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("separable recursion detected"), "{stdout}");
    assert!(stdout.contains("carry_1"), "{stdout}");
}

#[test]
fn forced_strategy() {
    let dir = std::env::temp_dir().join("sepra_cli_test3");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "-s", "magic"])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("via magic"), "{stdout}");
}

#[test]
fn repl_session() {
    let dir = std::env::temp_dir().join("sepra_cli_test4");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"friend(joe, ann).\n\
              perfectFor(ann, gadget).\n\
              buys(tom, Y)?\n\
              :program\n\
              :quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(tom, widget)"), "{stdout}");
    assert!(stdout.contains("(tom, gadget)"), "{stdout}");
    assert!(stdout.contains("buys(X, Y) :- friend(X, W), buys(W, Y)."), "{stdout}");
}

#[test]
fn repl_why_command() {
    let dir = std::env::temp_dir().join("sepra_cli_test5");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child.stdin.as_mut().unwrap().write_all(b":why buys(tom, Y)?\n:quit\n").unwrap();
    let out = child.wait_with_output().expect("binary exits");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("because"), "{stdout}");
    assert!(stdout.contains("friend"), "{stdout}");
    assert!(stdout.contains("[exit 0]"), "{stdout}");
}

#[test]
fn check_flag_reports_separability() {
    let dir = std::env::temp_dir().join("sepra_cli_test6");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mixed.dl");
    std::fs::write(
        &path,
        "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
         buys(X, Y) :- perfectFor(X, Y).\n\
         sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
         sg(X, Y) :- flat(X, Y).\n",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&path)
        .arg("--check")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The separable predicate gets a structure note, the non-separable one
    // gets a condition-specific diagnostic pointing at the offending rule.
    assert!(stdout.contains("note[SEP100]"), "{stdout}");
    assert!(stdout.contains("`buys` is a separable recursion"), "{stdout}");
    assert!(stdout.contains("warning[SEP004]"), "{stdout}");
    assert!(stdout.contains("`sg` is not separable"), "{stdout}");
    assert!(stdout.contains("condition 4 of Definition 2.4"), "{stdout}");
}

#[test]
fn check_subcommand_text_json_and_deny() {
    let dir = std::env::temp_dir().join("sepra_cli_test9");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sg.dl");
    std::fs::write(
        &path,
        "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
         sg(X, Y) :- flat(X, Y).\n\
         up(a, b). down(b, c). flat(a, a).\n",
    )
    .unwrap();
    let text = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["check"])
        .arg(&path)
        .output()
        .expect("binary runs");
    // Warnings only: exit 0 without --deny warnings.
    assert!(text.status.success(), "stderr: {}", String::from_utf8_lossy(&text.stderr));
    let stdout = String::from_utf8_lossy(&text.stdout);
    assert!(stdout.contains("warning[SEP004]"), "{stdout}");
    assert!(stdout.contains("-->"), "{stdout}");
    assert!(stdout.contains('^'), "{stdout}");

    let json = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["check", "--format", "json"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(json.status.success());
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"code\": \"SEP004\""), "{stdout}");
    assert!(stdout.contains("\"severity\": \"warning\""), "{stdout}");

    let deny = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["check", "--deny", "warnings"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(deny.status.code(), Some(1), "{:?}", deny.status);
}

#[test]
fn check_subcommand_usage_errors() {
    let out =
        Command::new(env!("CARGO_BIN_EXE_sepra")).args(["check"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one file"));
    let missing = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["check", "/nonexistent/path.dl"])
        .output()
        .expect("binary runs");
    assert_eq!(missing.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot read"));
}

#[test]
fn parse_errors_render_carets() {
    let dir = std::env::temp_dir().join("sepra_cli_test10");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.dl");
    std::fs::write(&path, "edge(a, b).\npath(X, Y) :- edge(X, Y\n").unwrap();
    // Loading for evaluation: the syntax error is rendered with a snippet
    // and caret on stderr, pointing into the offending file.
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&path)
        .args(["-q", "path(a, Y)?"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[LNT000]"), "{stderr}");
    assert!(stderr.contains("broken.dl:2:"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
    // The check subcommand reports the same error on stdout and exits 1.
    let check = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .args(["check"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert_eq!(check.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&check.stdout).contains("error[LNT000]"));
}

#[test]
fn repl_lint_command() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b":lint\n\
              sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
              sg(X, Y) :- flat(X, Y).\n\
              :lint\n\
              :quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().expect("binary exits");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no rules loaded"), "{stdout}");
    assert!(stdout.contains("warning[SEP004]"), "{stdout}");
    assert!(stdout.contains("<repl>"), "{stdout}");
}

#[test]
fn format_flag_outputs_csv_and_json() {
    let dir = std::env::temp_dir().join("sepra_cli_test7");
    std::fs::create_dir_all(&dir).unwrap();
    let file = write_fixture(&dir);
    let csv = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "-f", "csv"])
        .output()
        .expect("binary runs");
    assert_eq!(String::from_utf8_lossy(&csv.stdout), "tom,widget\n");
    let json = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "--format", "json"])
        .output()
        .expect("binary runs");
    assert_eq!(String::from_utf8_lossy(&json.stdout), "[[\"tom\",\"widget\"]]\n");
    let bad = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg(&file)
        .args(["-q", "buys(tom, Y)?", "-f", "yaml"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success());
}

#[test]
fn bad_file_fails_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_sepra"))
        .arg("/nonexistent/path.dl")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
