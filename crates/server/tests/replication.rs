//! End-to-end replication tests: a real durable primary, real
//! `--replica-of` replicas, and a real `sepra route` router — all
//! separate subprocesses talking TCP. The invariants under test:
//!
//! * **Read-your-writes.** A client that commits through the primary and
//!   carries the acknowledged generation to a replica as
//!   `"min_generation"` never reads a stale state, no matter how far
//!   behind the replica was when the query arrived.
//! * **Honesty.** A lagging replica stamps responses with the generation
//!   it actually applied — never the primary's — and a missed
//!   `min_generation` deadline reports the honest shortfall.
//! * **Resync.** A SIGKILLed replica restarted from nothing converges to
//!   exact parity with a from-scratch evaluation of the primary's facts.
//! * **Routing.** The router sends mutations to the primary, serves
//!   queries from replicas, and keeps answering through a replica loss.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use sepra_engine::QueryProcessor;
use sepra_server::json::{self, Json};

/// Same chain fixture as the durability tests: one edge per mutation, so
/// the database generation counts committed edges exactly.
const PROGRAM: &str = "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(m0, m1).\n";

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sepra_repl_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_fixture(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("chain.dl");
    std::fs::write(&path, PROGRAM).expect("fixture writes");
    path
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `sepra <subcommand> ...` on an OS-assigned port and reads
    /// the listening banner (`sepra serve listening on ADDR ...` or
    /// `sepra route listening on ADDR ...`) to learn the address.
    fn spawn(subcommand: &str, args: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sepra"))
            .arg(subcommand)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("process spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut lines = BufReader::new(stdout).lines();
        let prefix = format!("sepra {subcommand} listening on ");
        let addr = loop {
            let line = lines.next().expect("startup banner appears").expect("banner line");
            if let Some(rest) = line.strip_prefix(&prefix) {
                break rest.split_whitespace().next().expect("address in banner").to_string();
            }
        };
        Server { child, addr }
    }

    fn spawn_primary(fixture: &std::path::Path, data_dir: &std::path::Path) -> Self {
        let data_dir = data_dir.display().to_string();
        Self::spawn(
            "serve",
            &[
                fixture.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--data-dir",
                &data_dir,
                "--fsync",
                "always",
                "--checkpoint-every",
                "4",
            ],
        )
    }

    fn spawn_replica(fixture: &std::path::Path, primary: &str) -> Self {
        Self::spawn(
            "serve",
            &[
                fixture.to_str().unwrap(),
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "2",
                "--replica-of",
                primary,
            ],
        )
    }

    fn spawn_router(primary: &str, replicas: &[&str]) -> Self {
        Self::spawn(
            "route",
            &[
                "--addr",
                "127.0.0.1:0",
                "--primary",
                primary,
                "--replicas",
                &replicas.join(","),
                "--probe-interval-ms",
                "100",
            ],
        )
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(&self.addr).expect("connects");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().expect("stream clones"));
        Connection { stream, reader }
    }

    /// SIGKILL: no destructors, no goodbyes — the failure replication
    /// must route around and resync from.
    fn kill(mut self) {
        self.child.kill().expect("kill delivers");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let mut stdin = self.child.stdin.take().expect("stdin is piped");
        stdin.write_all(b"quit\n").expect("writes quit");
        stdin.flush().unwrap();
        drop(stdin);
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().expect("try_wait works") {
                Some(status) => {
                    assert!(status.success(), "process exited with {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("process did not shut down within 30s of `quit`");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn request(&mut self, body: &str) -> Json {
        self.stream.write_all(body.as_bytes()).expect("request writes");
        self.stream.write_all(b"\n").expect("newline writes");
        self.stream.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("response reads");
        assert!(n > 0, "server closed the connection after {body:?}");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response JSON ({e}): {line}"))
    }
}

/// Inserts `e(m{i}, m{i+1}).` and returns the acknowledged generation.
fn insert_edge(conn: &mut Connection, i: usize) -> u64 {
    let req = format!(r#"{{"insert": ["e(m{i}, m{})."]}}"#, i + 1);
    let v = conn.request(&req);
    assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(1), "mutation {i}: {v:?}");
    v.get("generation").and_then(Json::as_u64).expect("mutation ack carries generation")
}

/// Sorted answer tuples from a query response.
fn answer_set(response: &Json) -> Vec<String> {
    let Some(Json::Arr(rows)) = response.get("answers") else {
        panic!("response has no answers: {response:?}");
    };
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            let Json::Arr(cells) = row else { panic!("row is not an array") };
            cells
                .iter()
                .map(|c| c.as_str().unwrap_or("?").to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

/// From-scratch evaluation of the program plus the first `mutations`
/// edge inserts — the ground truth a synced replica must match.
fn from_scratch_answers(mutations: usize) -> Vec<String> {
    let mut qp = QueryProcessor::new();
    qp.load(PROGRAM).unwrap();
    for i in 1..=mutations {
        let fact = format!("e(m{i}, m{}).", i + 1);
        qp.apply_mutation(&[fact.as_str()], &[]).unwrap();
    }
    let result = qp.query("t(m0, Y)?").unwrap();
    let mut out: Vec<String> = result
        .answers
        .iter()
        .map(|t| {
            t.values()
                .map(|v| v.display(qp.db().interner()).to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn min_generation_reads_are_never_stale() {
    let dir = test_dir("ryw");
    let fixture = write_fixture(&dir);
    let primary = Server::spawn_primary(&fixture, &dir.join("data"));
    let replica = Server::spawn_replica(&fixture, &primary.addr);

    let mut pconn = primary.connect();
    let mut rconn = replica.connect();
    // Commit on the primary, then IMMEDIATELY query the replica with the
    // acknowledged generation. No sleeps, no retries: min_generation is
    // the synchronization, and the answer must include the new edge every
    // single round.
    for i in 1..=20 {
        let generation = insert_edge(&mut pconn, i);
        let req = format!(
            r#"{{"query": "t(m0, Y)?", "min_generation": {generation}, "timeout_ms": 10000}}"#
        );
        let v = rconn.request(&req);
        assert_eq!(
            answer_set(&v),
            from_scratch_answers(i),
            "round {i}: replica answered below generation {generation}: {v:?}"
        );
        let stamped = v.get("generation").and_then(Json::as_u64).expect("generation stamp");
        assert!(stamped >= generation, "round {i}: stamped {stamped} < target {generation}");
    }

    replica.shutdown();
    primary.shutdown();
}

#[test]
fn lagging_replica_reports_its_honest_generation() {
    let dir = test_dir("honest");
    let fixture = write_fixture(&dir);
    let primary = Server::spawn_primary(&fixture, &dir.join("data"));
    let mut pconn = primary.connect();
    let mut last = 0;
    for i in 1..=10 {
        last = insert_edge(&mut pconn, i);
    }

    // A replica pointed at a dead address can never catch up: whatever it
    // stamps must be its own applied generation (the seeded program state
    // at generation 0-or-1), not the primary's.
    let lagging = Server::spawn_replica(&fixture, "127.0.0.1:1");
    let mut lconn = lagging.connect();
    let v = lconn.request(r#"{"query": "t(m0, Y)?"}"#);
    let stamped = v.get("generation").and_then(Json::as_u64).expect("generation stamp");
    assert!(stamped < last, "unsynced replica claims generation {stamped} >= primary's {last}");

    // And an unreachable min_generation times out with the honest
    // shortfall rather than answering stale.
    let v = lconn.request(&format!(
        r#"{{"query": "t(m0, Y)?", "min_generation": {last}, "timeout_ms": 200}}"#
    ));
    let error = v.get("error").expect("deadline miss is an error");
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("timeout"), "{v:?}");
    let reached = error.get("generation").and_then(Json::as_u64).expect("honest generation");
    assert!(reached < last, "timeout error claims generation {reached} >= target {last}");

    // A live replica, by contrast, converges: the same min_generation
    // read succeeds and stamps at or past the primary's generation.
    let live = Server::spawn_replica(&fixture, &primary.addr);
    let mut vconn = live.connect();
    let v = vconn.request(&format!(
        r#"{{"query": "t(m0, Y)?", "min_generation": {last}, "timeout_ms": 10000}}"#
    ));
    assert_eq!(answer_set(&v), from_scratch_answers(10), "synced replica at parity: {v:?}");

    live.shutdown();
    lagging.shutdown();
    primary.shutdown();
}

#[test]
fn replica_rejects_mutations_with_a_redirect() {
    let dir = test_dir("redirect");
    let fixture = write_fixture(&dir);
    let primary = Server::spawn_primary(&fixture, &dir.join("data"));
    let replica = Server::spawn_replica(&fixture, &primary.addr);

    let mut rconn = replica.connect();
    let v = rconn.request(r#"{"insert": ["e(x, y)."]}"#);
    let error = v.get("error").expect("mutation on a replica is refused");
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("read_only_replica"), "{v:?}");
    assert_eq!(
        error.get("primary").and_then(Json::as_str),
        Some(primary.addr.as_str()),
        "redirect names the primary: {v:?}"
    );

    replica.shutdown();
    primary.shutdown();
}

#[test]
fn sigkilled_replica_resyncs_to_parity_from_scratch() {
    let dir = test_dir("resync");
    let fixture = write_fixture(&dir);
    let primary = Server::spawn_primary(&fixture, &dir.join("data"));
    let mut pconn = primary.connect();

    let replica = Server::spawn_replica(&fixture, &primary.addr);
    for i in 1..=6 {
        insert_edge(&mut pconn, i);
    }
    // SIGKILL the replica mid-life, then keep committing: with
    // --checkpoint-every 4 the primary checkpoints and truncates its WAL
    // while the replica is down, so the restart cannot ride the log tail
    // alone — it must take a streamed checkpoint and then the tail.
    replica.kill();
    let mut last = 0;
    for i in 7..=18 {
        last = insert_edge(&mut pconn, i);
    }

    let restarted = Server::spawn_replica(&fixture, &primary.addr);
    let mut rconn = restarted.connect();
    let v = rconn.request(&format!(
        r#"{{"query": "t(m0, Y)?", "min_generation": {last}, "timeout_ms": 10000}}"#
    ));
    assert_eq!(
        answer_set(&v),
        from_scratch_answers(18),
        "restarted replica converged to exact parity: {v:?}"
    );

    // Its stats agree: role replica, generation at parity, lag zero.
    let stats = rconn.request(r#"{"stats": true}"#);
    let replication = stats.get("replication").expect("replica reports replication stats");
    assert_eq!(replication.get("role").and_then(Json::as_str), Some("replica"));
    assert_eq!(replication.get("generation").and_then(Json::as_u64), Some(last));
    assert_eq!(replication.get("lag").and_then(Json::as_u64), Some(0), "{stats:?}");

    restarted.shutdown();
    primary.shutdown();
}

#[test]
fn router_splits_traffic_and_survives_replica_loss() {
    let dir = test_dir("router");
    let fixture = write_fixture(&dir);
    let primary = Server::spawn_primary(&fixture, &dir.join("data"));
    let replica_a = Server::spawn_replica(&fixture, &primary.addr);
    let replica_b = Server::spawn_replica(&fixture, &primary.addr);
    let router = Server::spawn_router(&primary.addr, &[&replica_a.addr, &replica_b.addr]);

    // Give the first probe pass a moment to mark backends healthy, then
    // drive everything through the router: mutations land on the primary,
    // min_generation queries land on replicas and are never stale.
    let mut conn = router.connect();
    for i in 1..=6 {
        let generation = insert_edge(&mut conn, i);
        let v = conn.request(&format!(
            r#"{{"query": "t(m0, Y)?", "min_generation": {generation}, "timeout_ms": 10000}}"#
        ));
        assert_eq!(answer_set(&v), from_scratch_answers(i), "routed round {i}: {v:?}");
    }

    // Kill one replica. The router retries on the next healthy backend
    // and the prober marks the dead one down, so every request keeps
    // succeeding with no client-visible gap.
    replica_a.kill();
    for i in 7..=12 {
        let generation = insert_edge(&mut conn, i);
        let v = conn.request(&format!(
            r#"{{"query": "t(m0, Y)?", "min_generation": {generation}, "timeout_ms": 10000}}"#
        ));
        assert_eq!(answer_set(&v), from_scratch_answers(i), "post-kill round {i}: {v:?}");
    }

    // Router stats: answered locally; the prober settles on exactly two
    // healthy backends (primary + surviving replica) within a few probes.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = conn.request(r#"{"stats": true}"#);
        let healthy = stats
            .get("router")
            .and_then(|r| r.get("healthy"))
            .and_then(Json::as_u64)
            .expect("router stats report healthy count");
        if healthy == 2 {
            break stats;
        }
        assert!(Instant::now() < deadline, "prober never marked the dead replica down: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    };
    let Some(Json::Arr(backends)) = stats.get("backends") else {
        panic!("router stats list backends: {stats:?}");
    };
    assert_eq!(backends.len(), 3, "primary + two replicas: {stats:?}");

    router.shutdown();
    replica_b.shutdown();
    primary.shutdown();
}

#[test]
fn ephemeral_server_refuses_sync_requests() {
    let dir = test_dir("nosync");
    let fixture = write_fixture(&dir);
    // No --data-dir: nothing durable to stream from.
    let server = Server::spawn(
        "serve",
        &[fixture.to_str().unwrap(), "--addr", "127.0.0.1:0", "--threads", "2"],
    );
    let mut conn = server.connect();
    let v = conn.request(r#"{"sync": {"from_generation": 0}}"#);
    let error = v.get("error").expect("sync against ephemeral server is refused");
    assert_eq!(error.get("kind").and_then(Json::as_str), Some("sync_unavailable"), "{v:?}");
    server.shutdown();
}
