//! Golden-file tests for plan rendering — `--explain` text and the
//! structured `--explain -f json` / `:plan` report — over the committed
//! example programs in `examples/datalog/`.
//!
//! The goldens live at `tests/golden/plan/<name>.{txt,json}` in the
//! repository root. Estimates are deterministic (exact counts in, fixed
//! -point formatting out), so the files are machine-independent. After an
//! intentional change to the planner or the renderers, bless new output
//! with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p sepra-server --test golden_plan
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// (golden name, fixture, query): a separable selection (carry/seen
/// schema), a magic-sets selection with a three-literal body the planner
/// reorders, and an unbound query that falls through to semi-naive rule
/// conjunctions.
const CASES: &[(&str, &str, &str)] = &[
    ("buys_bound", "buys", "buys(tom, Y)?"),
    ("sg_bound", "sg", "sg(a, Y)?"),
    ("sg_unbound", "sg", "sg(X, Y)?"),
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/server sits two levels below the repo root")
        .to_path_buf()
}

fn run_explain(root: &Path, fixture: &str, query: &str, json: bool) -> String {
    let rel = format!("examples/datalog/{fixture}.dl");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sepra"));
    cmd.current_dir(root).arg(&rel).args(["--explain", "--threads", "1", "-q", query]);
    if json {
        cmd.args(["--format", "json"]);
    }
    let out = cmd.output().expect("binary runs");
    assert!(
        out.stderr.is_empty(),
        "sepra {rel} --explain wrote to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("plan output is UTF-8")
}

fn compare(root: &Path, name: &str, ext: &str, actual: &str) -> Result<(), String> {
    let golden = root.join("tests/golden/plan").join(format!("{name}.{ext}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, actual).unwrap();
        return Ok(());
    }
    let expected = std::fs::read_to_string(&golden).map_err(|e| {
        format!("cannot read {}: {e}\n(bless goldens with UPDATE_GOLDEN=1)", golden.display())
    })?;
    if expected == actual {
        return Ok(());
    }
    Err(format!(
        "{} is stale (bless with UPDATE_GOLDEN=1)\n--- expected\n{expected}--- actual\n{actual}",
        golden.display()
    ))
}

#[test]
fn plan_output_matches_goldens() {
    let root = repo_root();
    let mut failures = Vec::new();
    for (name, fixture, query) in CASES {
        for (json, ext) in [(false, "txt"), (true, "json")] {
            let actual = run_explain(&root, fixture, query, json);
            if let Err(e) = compare(&root, name, ext, &actual) {
                failures.push(e);
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
