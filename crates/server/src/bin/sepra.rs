//! `sepra` — a small CLI for the separable-recursion query processor.
//!
//! ```text
//! sepra [OPTIONS] [FILE...]
//! sepra check [OPTIONS] FILE...
//! sepra serve [OPTIONS] FILE...
//! sepra route --primary HOST:PORT --replicas HOST:PORT,... [OPTIONS]
//! sepra client [OPTIONS] [QUERY...]
//! sepra dump FILE --data-dir DIR
//! sepra restore FILE --data-dir DIR [--force]
//!
//! Options:
//!   -q, --query QUERY       run QUERY (e.g. 'buys(tom, Y)?') and exit
//!   -s, --strategy NAME     force a strategy: bounded|separable|magic|magic-sup|magic-subsumptive|counting|hn|seminaive|naive
//!   -f, --format FMT        answer output format: text (default) | csv | json
//!   -t, --threads N         worker threads for fixpoint iterations
//!                           (default: available parallelism; 1 = serial)
//!       --timeout MS        per-query evaluation deadline in milliseconds
//!       --max-tuples N      abort evaluation after deriving N tuples
//!       --stats             print relation-size statistics after each query
//!       --explain           print the evaluation plan instead of running
//!       --check             print the diagnostic report for the loaded program
//!       --repl              start an interactive session (default if no -q)
//!   -h, --help              this message
//! ```
//!
//! `sepra check` is the static-analysis front door: it lints one or more
//! files without evaluating anything, reporting unsafe rules, arity
//! mismatches, unused/undefined predicates (`LNT0xx`) and — per recursive
//! predicate — either the separable structure or the exact condition of
//! the paper's Definition 2.4 that fails (`SEP00x`), with source snippets
//! or as JSON (`--format json`).
//!
//! `sepra serve` loads and compiles a program once, then answers
//! line-delimited JSON queries over TCP — see `sepra serve --help` and the
//! `sepra_server::server` module docs. `sepra client` is the matching
//! one-shot test client.
//!
//! In the REPL, clauses ending in `.` extend the program/database, atoms
//! ending in `?` are queries, and commands start with `:` (`:help`).

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::time::Duration;

use sepra_core::exec::ExecOptions;
use sepra_engine::{
    render_answers, render_answers_csv, render_answers_json, PlanReport, ProcessorError,
    QueryProcessor, Strategy, StrategyChoice,
};
use sepra_eval::Budget;
use sepra_repl::{route, RouteOptions};
use sepra_server::{
    default_threads, json, load_offline, serve, CheckpointFormat, DurabilityOptions, ServeOptions,
    DEFAULT_CHECKPOINT_EVERY,
};
use sepra_wal::checkpoint::checkpoint_file_name;
use sepra_wal::store::{read_recovery, WAL_FILE};
use sepra_wal::{
    codec, list_checkpoints, read_checkpoint_file, write_checkpoint_file, FsyncPolicy, WalWriter,
};

struct Options {
    files: Vec<String>,
    query: Option<String>,
    strategy: StrategyChoice,
    stats: bool,
    explain: bool,
    check: bool,
    repl: bool,
    format: Format,
    threads: usize,
    timeout: Option<Duration>,
    max_tuples: Option<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Csv,
    Json,
}

/// Parses the main CLI's arguments. `Ok(None)` means `--help` was handled
/// and the process should exit successfully.
fn parse_args(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut opts = Options {
        files: Vec::new(),
        query: None,
        strategy: StrategyChoice::Auto,
        stats: false,
        explain: false,
        check: false,
        repl: false,
        format: Format::Text,
        threads: default_threads(),
        timeout: None,
        max_tuples: None,
    };
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-q" | "--query" => {
                opts.query = Some(args.next().ok_or("missing argument for --query")?);
            }
            "-s" | "--strategy" => {
                let name = args.next().ok_or("missing argument for --strategy")?;
                opts.strategy = StrategyChoice::Force(name.parse::<Strategy>()?);
            }
            "--stats" => opts.stats = true,
            "--explain" => opts.explain = true,
            "--check" => opts.check = true,
            "-f" | "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("csv") => Format::Csv,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects text|csv|json, got {:?}",
                            other.unwrap_or("<missing>")
                        ))
                    }
                };
            }
            "-t" | "--threads" => {
                let n = args.next().ok_or("missing argument for --threads")?;
                opts.threads =
                    n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads expects a positive integer, got `{n}`")
                    })?;
            }
            "--timeout" => {
                let ms = args.next().ok_or("missing argument for --timeout")?;
                let ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("--timeout expects milliseconds, got `{ms}`"))?;
                opts.timeout = Some(Duration::from_millis(ms));
            }
            "--max-tuples" => {
                let n = args.next().ok_or("missing argument for --max-tuples")?;
                opts.max_tuples = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("--max-tuples expects an integer, got `{n}`"))?,
                );
            }
            "--repl" => opts.repl = true,
            "-h" | "--help" => {
                print!("{}", HELP);
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(Some(opts))
}

const HELP: &str = "\
sepra — deductive database engine with compiled separable recursions

Usage: sepra [OPTIONS] [FILE...]
       sepra check [OPTIONS] FILE...     (see `sepra check --help`)
       sepra serve [OPTIONS] FILE...     (see `sepra serve --help`)
       sepra route [OPTIONS]             (see `sepra route --help`)
       sepra client [OPTIONS] [QUERY...] (see `sepra client --help`)
       sepra dump FILE --data-dir DIR    (see `sepra dump --help`)
       sepra restore FILE --data-dir DIR (see `sepra restore --help`)

Options:
  -q, --query QUERY     run QUERY (e.g. 'buys(tom, Y)?') and exit
  -s, --strategy NAME   bounded|separable|magic|magic-sup|magic-subsumptive|counting|hn|seminaive|naive
  -t, --threads N       worker threads for fixpoint iterations
                        (default: available parallelism; 1 = serial)
      --timeout MS      per-query evaluation deadline in milliseconds
      --max-tuples N    abort evaluation after deriving N tuples
      --stats           print relation-size statistics after each query
      --explain         print the evaluation plan instead of running
                        (join orders + cost estimates; -f json for the
                        structured report)
      --check           print the diagnostic report for the loaded program
  -f, --format FMT      answer output format: text (default) | csv | json
      --repl            interactive session (default when no --query)
  -h, --help            this message
";

const CHECK_HELP: &str = "\
sepra check — static analysis for Datalog programs

Usage: sepra check [OPTIONS] FILE...

Lints each FILE without evaluating it: unsafe rules, arity mismatches,
undefined/unused predicates, duplicate clauses (LNT0xx), and — for every
recursive predicate — either its separable class structure (SEP100) or
the violated condition of Definition 2.4 (SEP001..SEP004), each pointing
at the offending rule and argument positions.

Options:
  -q, --query QUERY     analyze relative to QUERY (reachability, arity)
  -f, --format FMT      report format: text (default) | json
      --deny warnings   exit nonzero on warnings, not just errors
  -h, --help            this message

Exit status: 0 clean, 1 errors (or warnings under --deny warnings),
2 usage or I/O failure.
";

const SERVE_HELP: &str = "\
sepra serve — a concurrent query service over TCP

Usage: sepra serve [OPTIONS] FILE...

Loads and compiles the program once (recursion detection, supporting
strata, shared plan cache), then serves line-delimited JSON requests:

  -> {\"query\": \"t(a, Y)?\", \"timeout_ms\": 250}
  <- {\"answers\": [[\"a\",\"b\"]], \"count\": 1, \"strategy\": \"separable\",
      \"elapsed_us\": 113, \"stats\": {...}}
  -> {\"insert\": [\"e(b, c).\"], \"retract\": [\"e(a, b).\"]}
  <- {\"inserted\": 1, \"retracted\": 1, \"generation\": 5, ...}
  -> {\"stats\": true}
  <- {\"uptime_ms\": ..., \"generation\": ..., \"queries\": {...}, ...}

Requests may force a \"strategy\" and cap work with \"timeout_ms\" /
\"max_tuples\"; an exceeded budget returns a structured
{\"error\": {\"kind\": \"budget_exceeded\", ...}} and the server keeps
serving. \"insert\"/\"retract\" requests mutate the fact database:
retractions apply before insertions, derived answers are maintained
incrementally, and the whole mutation commits all-or-none — a query
never sees a half-applied mutation. Programs that fail `sepra check`
are refused at startup. Shutdown: a `quit` line on stdin, SIGINT, or
SIGTERM (in-flight queries are cancelled through their budgets).

With --data-dir the server is durable: every committed mutation is
appended to a write-ahead log before it is acknowledged, checkpoints
snapshot the full fact database every --checkpoint-every records (and
truncate the log), and startup recovers the newest checkpoint plus the
WAL tail — a `kill -9` loses at most the fsync window and never leaves
a half-applied mutation. `{\"stats\": true}` then reports a
\"durability\" object (WAL bytes, records since checkpoint, recovery).

With --replica-of the server is a read replica: it syncs the primary's
checkpoint and live WAL stream, applies each record through the same
incremental-maintenance path as live mutations, and serves queries —
stamping every response with the applied \"generation\". Mutations are
rejected with a {\"kind\": \"read_only_replica\"} error naming the
primary. A query may carry \"min_generation\": G to wait (bounded by
its deadline) until the replica has applied generation G — read-your-
writes for a client that just mutated through the primary.

Options:
      --addr HOST:PORT  bind address (default 127.0.0.1:7464; port 0
                        picks a free port, printed on startup)
  -t, --threads N       worker threads / concurrent connections
                        (default: available parallelism)
      --timeout MS      default per-query deadline (requests override)
      --max-tuples N    default per-query derived-tuple cap
      --idle-timeout-ms MS
                        disconnect a connection idle for MS milliseconds
                        (default 30000)
      --data-dir DIR    persist mutations under DIR (WAL + checkpoints)
                        and recover from it on startup
      --fsync POLICY    WAL flush policy: always (default; acknowledged
                        implies durable) | interval[:MS] | never
      --checkpoint-every N
                        checkpoint after N WAL records (default 1024;
                        0 disables automatic checkpoints)
      --checkpoint-format v1|v2
                        body format for new checkpoints: v2 (default)
                        is the columnar, memory-mappable layout; v1
                        keeps the row-major format pre-columnar
                        replicas can cold-sync from
      --replica-of HOST:PORT
                        run as a read replica of the primary at
                        HOST:PORT (mutually exclusive with --data-dir)
      --deny warnings   refuse to start on lint warnings, not just errors
  -h, --help            this message
";

const ROUTE_HELP: &str = "\
sepra route — a query router for a primary plus read replicas

Usage: sepra route --primary HOST:PORT --replicas HOST:PORT,... [OPTIONS]

Listens for the same line-delimited JSON protocol as `sepra serve` and
forwards each request to a backend: mutations (\"insert\"/\"retract\")
go to the primary, queries round-robin across the healthy replicas
(falling back to the primary when none are healthy), and
{\"stats\": true} is answered by the router itself with per-backend
health, generation, and lag behind the primary. A background prober
re-checks every backend, so a killed replica is routed around within
one probe interval and rejoins automatically once it resyncs. A query
that fails on one replica is retried once on the next healthy backend.

Options:
      --primary HOST:PORT
                        the primary server (required; mutations go here)
      --replicas LIST   comma-separated replica addresses (repeatable)
      --addr HOST:PORT  bind address (default 127.0.0.1:7465; port 0
                        picks a free port, printed on startup)
  -t, --threads N       worker threads / concurrent connections
                        (default: available parallelism)
      --probe-interval-ms MS
                        health-probe cadence (default 500)
  -h, --help            this message
";

const DUMP_HELP: &str = "\
sepra dump — export a data directory as one snapshot file

Usage: sepra dump FILE --data-dir DIR

Reads DIR's durable state — the newest valid checkpoint with the
write-ahead-log tail replayed on top (a torn final record is ignored) —
and writes it to FILE in the checkpoint container format. Strictly
read-only on DIR: safe to run against a live server. The snapshot is
portable (it carries its own symbol table) and is what `sepra restore`
and the REPL's `:load` consume.

Options:
      --data-dir DIR    the data directory to export (required)
  -h, --help            this message
";

const RESTORE_HELP: &str = "\
sepra restore — initialize a data directory from a snapshot file

Usage: sepra restore FILE --data-dir DIR [--force]

Validates FILE (container checksum and a full decode), then replaces
DIR's durable state with it: the snapshot becomes DIR's checkpoint and
the write-ahead log restarts empty. A subsequent
`sepra serve --data-dir DIR` recovers exactly the snapshot's facts.
Refuses to overwrite existing durable state unless --force is given.

Options:
      --data-dir DIR    the data directory to (re)initialize (required)
      --force           replace existing durable state in DIR
  -h, --help            this message
";

const CLIENT_HELP: &str = "\
sepra client — one-shot client for a running `sepra serve`

Usage: sepra client [OPTIONS] [QUERY...]

Sends each QUERY (e.g. 'buys(tom, Y)?') as a JSON request on one
connection and prints each JSON response line to stdout.

Options:
      --addr HOST:PORT  server address (default 127.0.0.1:7464)
  -s, --strategy NAME   force a strategy on every query
      --timeout MS      per-query deadline sent with every query
      --max-tuples N    per-query derived-tuple cap sent with every query
      --stats           also request server statistics (after the queries)
      --raw JSON        send JSON verbatim as one request (repeatable)
  -h, --help            this message

Exit status: 0 if every request got a response, 2 on usage or I/O errors.
";

const REPL_HELP: &str = "\
Clauses ending in `.` extend the program or database.
Atoms ending in `?` run as queries.
Commands:
  :strategy NAME   force a strategy (auto|bounded|separable|magic|magic-sup|magic-subsumptive|counting|hn|seminaive|naive)
  :explain QUERY   show the evaluation plan for QUERY
                   (join orders with per-scan cost estimates)
  :plan QUERY      the same plan as one line of JSON
  :why QUERY       answer QUERY and show one derivation per answer
  :insert FACT.    add ground facts, maintaining answers incrementally
  :retract FACT.   remove ground facts (delete-and-rederive)
  :save PATH       snapshot the fact database to PATH (checkpoint format,
                   readable by `sepra restore` and :load)
  :load PATH       merge the facts of a snapshot into the session
                   (insert-only, through incremental maintenance)
  :stats on|off    toggle statistics output
  :lint [QUERY]    diagnostic report, optionally relative to QUERY
                   (includes STR00x stratification findings when the
                   program uses `!p(...)` negation or aggregate heads)
  :check           alias for :lint without a query
  :program         list loaded rules
  :help (:h)       this message
  :quit (:q)       exit
";

/// Renders a load/parse failure. Frontend errors carry spans, so they get
/// the full rustc-style snippet against the text that produced them; other
/// errors fall back to a one-line message.
fn report_ast_error(name: &str, text: &str, e: &ProcessorError) {
    match e {
        ProcessorError::Ast(ast) => {
            let file = sepra_lint::SourceFile::new(name, text);
            let diag = sepra_lint::parse_error_diagnostic(ast);
            eprint!("{}", sepra_lint::render_diagnostic_text(&diag, &file));
        }
        other => eprintln!("error: {other}"),
    }
}

/// Loads every file into a fresh processor, reporting the first failure.
fn load_files(files: &[String]) -> Result<QueryProcessor, ()> {
    let mut qp = QueryProcessor::new();
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return Err(());
            }
        };
        if let Err(e) = qp.load(&text) {
            report_ast_error(file, &text, &e);
            return Err(());
        }
    }
    Ok(qp)
}

/// The `sepra check FILE...` subcommand: lint-only, no evaluation.
fn run_check(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut json = false;
    let mut deny_warnings = false;
    let mut query: Option<String> = None;
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-f" | "--format" => match args.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    return usage_error(&format!(
                        "--format expects text|json, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "--deny" => match args.next().map(String::as_str) {
                Some("warnings") => deny_warnings = true,
                other => {
                    return usage_error(&format!(
                        "--deny expects `warnings`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "-q" | "--query" => match args.next() {
                Some(q) => query = Some(q.clone()),
                None => return usage_error("missing argument for --query"),
            },
            "-h" | "--help" => {
                print!("{}", CHECK_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}` (try `sepra check --help`)"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return usage_error("sepra check needs at least one file (try `sepra check --help`)");
    }
    let mut worst: u8 = 0;
    for (i, file) in files.iter().enumerate() {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                worst = worst.max(2);
                continue;
            }
        };
        let result = sepra_lint::check_source(file, &text, query.as_deref());
        if json {
            // One JSON document per file, newline-separated (JSON lines of
            // pretty-printed objects; single-file invocations emit exactly
            // one object).
            print!("{}", result.render_json());
        } else {
            if i > 0 {
                println!();
            }
            print!("{}", result.render_text());
        }
        worst = worst.max(result.exit_code(deny_warnings) as u8);
    }
    ExitCode::from(worst)
}

/// The `sepra serve FILE...` subcommand.
fn run_serve(args: &[String]) -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut opts = ServeOptions::default();
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_format: Option<CheckpointFormat> = None;
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage_error("missing argument for --data-dir"),
            },
            "--fsync" => match args.next().map(|s| s.parse::<FsyncPolicy>()) {
                Some(Ok(policy)) => fsync = Some(policy),
                Some(Err(e)) => return usage_error(&e),
                None => return usage_error("missing argument for --fsync"),
            },
            "--checkpoint-every" => {
                let Some(n) = args.next() else {
                    return usage_error("missing argument for --checkpoint-every");
                };
                match n.parse::<u64>() {
                    Ok(n) => checkpoint_every = Some(n),
                    Err(_) => {
                        return usage_error(&format!(
                            "--checkpoint-every expects a record count, got `{n}`"
                        ))
                    }
                }
            }
            "--checkpoint-format" => match args.next().map(|s| s.parse::<CheckpointFormat>()) {
                Some(Ok(format)) => checkpoint_format = Some(format),
                Some(Err(e)) => return usage_error(&e),
                None => return usage_error("missing argument for --checkpoint-format"),
            },
            "--addr" => match args.next() {
                Some(a) => opts.addr = a.clone(),
                None => return usage_error("missing argument for --addr"),
            },
            "-t" | "--threads" => {
                let Some(n) = args.next() else {
                    return usage_error("missing argument for --threads");
                };
                match n.parse::<usize>().ok().filter(|&n| n >= 1) {
                    Some(n) => opts.threads = n,
                    None => {
                        return usage_error(&format!(
                            "--threads expects a positive integer, got `{n}`"
                        ))
                    }
                }
            }
            "--timeout" => {
                let Some(ms) = args.next() else {
                    return usage_error("missing argument for --timeout");
                };
                match ms.parse::<u64>() {
                    Ok(ms) => opts.default_timeout = Some(Duration::from_millis(ms)),
                    Err(_) => {
                        return usage_error(&format!("--timeout expects milliseconds, got `{ms}`"))
                    }
                }
            }
            "--max-tuples" => {
                let Some(n) = args.next() else {
                    return usage_error("missing argument for --max-tuples");
                };
                match n.parse::<usize>() {
                    Ok(n) => opts.default_max_tuples = Some(n),
                    Err(_) => {
                        return usage_error(&format!("--max-tuples expects an integer, got `{n}`"))
                    }
                }
            }
            "--idle-timeout-ms" => {
                let Some(ms) = args.next() else {
                    return usage_error("missing argument for --idle-timeout-ms");
                };
                match ms.parse::<u64>() {
                    Ok(ms) => opts.idle_timeout = Duration::from_millis(ms),
                    Err(_) => {
                        return usage_error(&format!(
                            "--idle-timeout-ms expects milliseconds, got `{ms}`"
                        ))
                    }
                }
            }
            "--replica-of" => match args.next() {
                Some(primary) => opts.replica_of = Some(primary.clone()),
                None => return usage_error("missing argument for --replica-of"),
            },
            "--deny" => match args.next().map(String::as_str) {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return usage_error(&format!(
                        "--deny expects `warnings`, got {:?}",
                        other.unwrap_or("<missing>")
                    ))
                }
            },
            "-h" | "--help" => {
                print!("{}", SERVE_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}` (try `sepra serve --help`)"))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return usage_error("sepra serve needs at least one file (try `sepra serve --help`)");
    }
    if opts.replica_of.is_some()
        && (data_dir.is_some()
            || fsync.is_some()
            || checkpoint_every.is_some()
            || checkpoint_format.is_some())
    {
        return usage_error(
            "--replica-of is mutually exclusive with --data-dir/--fsync/--checkpoint-every \
             (a replica's durable lineage is the primary's)",
        );
    }
    match data_dir {
        Some(dir) => {
            opts.durability = Some(DurabilityOptions {
                data_dir: dir,
                fsync: fsync.unwrap_or_default(),
                checkpoint_every: checkpoint_every.unwrap_or(DEFAULT_CHECKPOINT_EVERY),
                checkpoint_format: checkpoint_format.unwrap_or_default(),
            });
        }
        None if fsync.is_some() || checkpoint_every.is_some() || checkpoint_format.is_some() => {
            return usage_error(
                "--fsync, --checkpoint-every, and --checkpoint-format require --data-dir",
            );
        }
        None => {}
    }
    let Ok(qp) = load_files(&files) else {
        return ExitCode::FAILURE;
    };
    match serve(qp, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `sepra route` subcommand: mutation/query router for a primary
/// plus read replicas.
fn run_route(args: &[String]) -> ExitCode {
    let mut opts = RouteOptions {
        addr: "127.0.0.1:7465".to_string(),
        primary: String::new(),
        replicas: Vec::new(),
        threads: default_threads(),
        probe_interval: Duration::from_millis(500),
    };
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--primary" => match args.next() {
                Some(a) => opts.primary = a.clone(),
                None => return usage_error("missing argument for --primary"),
            },
            "--replicas" => match args.next() {
                Some(list) => opts.replicas.extend(
                    list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                ),
                None => return usage_error("missing argument for --replicas"),
            },
            "--addr" => match args.next() {
                Some(a) => opts.addr = a.clone(),
                None => return usage_error("missing argument for --addr"),
            },
            "-t" | "--threads" => {
                let Some(n) = args.next() else {
                    return usage_error("missing argument for --threads");
                };
                match n.parse::<usize>().ok().filter(|&n| n >= 1) {
                    Some(n) => opts.threads = n,
                    None => {
                        return usage_error(&format!(
                            "--threads expects a positive integer, got `{n}`"
                        ))
                    }
                }
            }
            "--probe-interval-ms" => {
                let Some(ms) = args.next() else {
                    return usage_error("missing argument for --probe-interval-ms");
                };
                match ms.parse::<u64>() {
                    Ok(ms) => opts.probe_interval = Duration::from_millis(ms),
                    Err(_) => {
                        return usage_error(&format!(
                            "--probe-interval-ms expects milliseconds, got `{ms}`"
                        ))
                    }
                }
            }
            "-h" | "--help" => {
                print!("{}", ROUTE_HELP);
                return ExitCode::SUCCESS;
            }
            other => {
                return usage_error(&format!("unknown option `{other}` (try `sepra route --help`)"))
            }
        }
    }
    if opts.primary.is_empty() {
        return usage_error("sepra route needs --primary HOST:PORT (try `sepra route --help`)");
    }
    match route(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `sepra dump FILE --data-dir DIR` subcommand: exports the durable
/// state of a data directory (newest valid checkpoint + WAL tail, torn
/// tail ignored) as one checkpoint-format snapshot file. Strictly
/// read-only, so it is safe against a live server's directory.
fn run_dump(args: &[String]) -> ExitCode {
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut file: Option<String> = None;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage_error("missing argument for --data-dir"),
            },
            "-h" | "--help" => {
                print!("{}", DUMP_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown option `{other}` (try `sepra dump --help`)"))
            }
            positional if file.is_none() => file = Some(positional.to_string()),
            extra => return usage_error(&format!("unexpected argument `{extra}`")),
        }
    }
    let Some(file) = file else {
        return usage_error("sepra dump needs an output FILE (try `sepra dump --help`)");
    };
    let Some(data_dir) = data_dir else {
        return usage_error("sepra dump needs --data-dir DIR (try `sepra dump --help`)");
    };
    let recovery = match read_recovery(&data_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if recovery.checkpoint_body.is_none() && recovery.records.is_empty() {
        eprintln!("error: {} holds no durable state to dump", data_dir.display());
        return ExitCode::FAILURE;
    }
    let db = match load_offline(&data_dir) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let body = codec::encode_database(&db);
    if let Err(e) = write_checkpoint_file(std::path::Path::new(&file), db.generation(), &body) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!("dumped {} facts at generation {} to {file}", db.total_tuples(), db.generation());
    ExitCode::SUCCESS
}

/// The `sepra restore FILE --data-dir DIR` subcommand: initializes a data
/// directory from a snapshot file (the format `sepra dump` and the REPL's
/// `:save` write). Refuses to overwrite existing durable state without
/// `--force`.
fn run_restore(args: &[String]) -> ExitCode {
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut file: Option<String> = None;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut force = false;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(std::path::PathBuf::from(dir)),
                None => return usage_error("missing argument for --data-dir"),
            },
            "--force" => force = true,
            "-h" | "--help" => {
                print!("{}", RESTORE_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!(
                    "unknown option `{other}` (try `sepra restore --help`)"
                ))
            }
            positional if file.is_none() => file = Some(positional.to_string()),
            extra => return usage_error(&format!("unexpected argument `{extra}`")),
        }
    }
    let Some(file) = file else {
        return usage_error("sepra restore needs a snapshot FILE (try `sepra restore --help`)");
    };
    let Some(data_dir) = data_dir else {
        return usage_error("sepra restore needs --data-dir DIR (try `sepra restore --help`)");
    };
    // Validate the snapshot fully (container checksum AND body decode)
    // before touching the directory.
    let (generation, body) = match read_checkpoint_file(std::path::Path::new(&file)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut probe = sepra_storage::Database::new();
    if let Err(e) = codec::decode_snapshot_into(&body, &mut probe) {
        eprintln!("error: {file} does not decode as an EDB snapshot: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(&data_dir) {
        eprintln!("error: creating data dir {}: {e}", data_dir.display());
        return ExitCode::FAILURE;
    }
    match read_recovery(&data_dir) {
        Ok(existing) => {
            let occupied = existing.checkpoint_body.is_some()
                || !existing.records.is_empty()
                || existing.stale_records > 0;
            if occupied && !force {
                eprintln!(
                    "error: {} already holds durable state (generation {}); \
                     use --force to replace it",
                    data_dir.display(),
                    existing.recovered_generation()
                );
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Replace wholesale: old checkpoints and the old WAL describe a state
    // the restored snapshot supersedes.
    match list_checkpoints(&data_dir) {
        Ok(old) => {
            for (_, path) in old {
                let _ = std::fs::remove_file(path);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let _ = std::fs::remove_file(data_dir.join(WAL_FILE));
    if let Err(e) =
        write_checkpoint_file(&data_dir.join(checkpoint_file_name(generation)), generation, &body)
    {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    // A fresh, empty WAL so the directory is immediately servable.
    if let Err(e) = WalWriter::open(&data_dir.join(WAL_FILE), FsyncPolicy::Always) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "restored {} facts at generation {generation} into {}",
        probe.total_tuples(),
        data_dir.display()
    );
    ExitCode::SUCCESS
}

/// The `sepra client` subcommand: one connection, one request per line.
fn run_client(args: &[String]) -> ExitCode {
    let mut addr = String::from("127.0.0.1:7464");
    let mut queries: Vec<String> = Vec::new();
    let mut raw: Vec<String> = Vec::new();
    let mut strategy: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut max_tuples: Option<u64> = None;
    let mut stats = false;
    let usage_error = |msg: &str| {
        eprintln!("error: {msg}");
        ExitCode::from(2)
    };
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error("missing argument for --addr"),
            },
            "-s" | "--strategy" => match args.next() {
                Some(s) => strategy = Some(s.clone()),
                None => return usage_error("missing argument for --strategy"),
            },
            "--timeout" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => timeout_ms = Some(ms),
                None => return usage_error("--timeout expects milliseconds"),
            },
            "--max-tuples" => match args.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => max_tuples = Some(n),
                None => return usage_error("--max-tuples expects an integer"),
            },
            "--stats" => stats = true,
            "--raw" => match args.next() {
                Some(r) => raw.push(r.clone()),
                None => return usage_error("missing argument for --raw"),
            },
            "-h" | "--help" => {
                print!("{}", CLIENT_HELP);
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!(
                    "unknown option `{other}` (try `sepra client --help`)"
                ))
            }
            query => queries.push(query.to_string()),
        }
    }
    if queries.is_empty() && raw.is_empty() && !stats {
        return usage_error("sepra client needs a QUERY, --raw, or --stats");
    }
    let mut requests: Vec<String> = Vec::new();
    for query in &queries {
        let mut w = json::ObjWriter::new();
        w.str("query", query);
        if let Some(s) = &strategy {
            w.str("strategy", s);
        }
        if let Some(ms) = timeout_ms {
            w.num("timeout_ms", ms);
        }
        if let Some(n) = max_tuples {
            w.num("max_tuples", n);
        }
        requests.push(w.finish());
    }
    requests.extend(raw);
    if stats {
        requests.push(r#"{"stats":true}"#.to_string());
    }

    let stream = match std::net::TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = BufReader::new(stream);
    for request in &requests {
        if writer.write_all(request.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            eprintln!("error: connection to {addr} lost");
            return ExitCode::from(2);
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => {
                eprintln!("error: server closed the connection");
                return ExitCode::from(2);
            }
            Ok(_) => print!("{response}"),
            Err(e) => {
                eprintln!("error: reading response: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Runs one query and prints the outcome. Returns `false` on parse or
/// evaluation failure so the one-shot path can exit nonzero; the REPL
/// ignores the result and keeps the session alive.
fn run_query(
    qp: &mut QueryProcessor,
    src: &str,
    strategy: StrategyChoice,
    stats: bool,
    format: Format,
) -> bool {
    let query = match qp.parse_query(src) {
        Ok(q) => q,
        Err(e) => {
            report_ast_error("<query>", src, &e);
            return false;
        }
    };
    match qp.run_query(&query, strategy) {
        Ok(result) => match format {
            Format::Text => {
                print!("{}", render_answers(&result.answers, qp.db().interner()));
                println!(
                    "-- {} answers in {:.3?} via {}",
                    result.answers.len(),
                    result.elapsed,
                    result.strategy
                );
                if stats {
                    print!("{}", result.stats);
                }
            }
            Format::Csv => print!("{}", render_answers_csv(&result.answers, qp.db().interner())),
            Format::Json => print!("{}", render_answers_json(&result.answers, qp.db().interner())),
        },
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    }
    true
}

/// Renders a [`PlanReport`] as one line of JSON — the `:plan` and
/// `--explain -f json` output. Estimates are fixed-point decimals so the
/// output is stable for golden tests.
fn plan_report_json(report: &PlanReport) -> String {
    let mut conjs = String::from("[");
    for (i, conj) in report.conjunctions.iter().enumerate() {
        if i > 0 {
            conjs.push(',');
        }
        let mut scans = String::from("[");
        for (j, s) in conj.scans.iter().enumerate() {
            if j > 0 {
                scans.push(',');
            }
            let mut scan = json::ObjWriter::new();
            scan.str("rel", &s.rel)
                .raw("rows", &format!("{:.0}", s.rows))
                .num("keyed_cols", s.keyed_cols as u64)
                .raw("estimate", &format!("{:.4}", s.estimate));
            scans.push_str(&scan.finish());
        }
        scans.push(']');
        let mut c = json::ObjWriter::new();
        c.str("label", &conj.label).raw("scans", &scans);
        conjs.push_str(&c.finish());
    }
    conjs.push(']');
    let mut out = json::ObjWriter::new();
    out.str("query", &report.query)
        .str("strategy", &report.strategy)
        .str("plan_mode", report.plan_mode)
        .raw("conjunctions", &conjs)
        .str("text", &report.text);
    out.finish()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => return run_check(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("route") => return run_route(&args[1..]),
        Some("client") => return run_client(&args[1..]),
        Some("dump") => return run_dump(&args[1..]),
        Some("restore") => return run_restore(&args[1..]),
        _ => {}
    }
    let opts = match parse_args(args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut budget = Budget::unlimited();
    if let Some(t) = opts.timeout {
        budget = budget.timeout(t);
    }
    if let Some(n) = opts.max_tuples {
        budget = budget.tuples(n);
    }
    let Ok(mut qp) = load_files(&opts.files) else {
        return ExitCode::FAILURE;
    };
    qp.set_exec_options(ExecOptions { threads: opts.threads, budget, ..ExecOptions::default() });

    if opts.check {
        print!("{}", qp.check_report());
        return ExitCode::SUCCESS;
    }

    if let Some(query) = &opts.query {
        if opts.explain {
            // `--explain -f json` emits the structured report; other
            // formats get the rendered text.
            let rendered = if opts.format == Format::Json {
                qp.plan_report(query).map(|r| format!("{}\n", plan_report_json(&r)))
            } else {
                qp.explain(query)
            };
            match rendered {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else if !run_query(&mut qp, query, opts.strategy, opts.stats, opts.format) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // REPL.
    println!("sepra — type :help for commands");
    let stdin = std::io::stdin();
    let mut strategy = opts.strategy;
    let mut stats = opts.stats;
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("sepra> ");
        } else {
            print!("   ... ");
        }
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if buffer.is_empty() && line.starts_with(':') {
            let mut parts = line.splitn(2, ' ');
            let cmd = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or("").trim();
            match cmd {
                ":quit" | ":q" | ":exit" => break,
                ":help" | ":h" => print!("{REPL_HELP}"),
                ":stats" => {
                    stats = rest != "off";
                    println!("stats {}", if stats { "on" } else { "off" });
                }
                ":strategy" => {
                    if rest == "auto" {
                        strategy = StrategyChoice::Auto;
                        println!("strategy auto");
                    } else {
                        match rest.parse::<Strategy>() {
                            Ok(s) => {
                                strategy = StrategyChoice::Force(s);
                                println!("strategy {s}");
                            }
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                ":explain" => match qp.explain(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":plan" => match qp.plan_report(rest) {
                    Ok(report) => println!("{}", plan_report_json(&report)),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":why" => match qp.why(rest) {
                    Ok(text) => print!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                },
                ":insert" | ":retract" => {
                    if rest.is_empty() {
                        eprintln!("error: {cmd} expects one or more facts, e.g. {cmd} e(a, b).");
                    } else {
                        let (inserts, retracts): (&[&str], &[&str]) =
                            if cmd == ":insert" { (&[rest], &[]) } else { (&[], &[rest]) };
                        match qp.apply_mutation(inserts, retracts) {
                            Ok(out) => {
                                println!(
                                    "{} inserted, {} retracted in {:.3?} (generation {})",
                                    out.inserted, out.retracted, out.elapsed, out.generation
                                );
                                if stats {
                                    print!("{}", out.stats);
                                }
                            }
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                ":save" | ":load" => {
                    if rest.is_empty() {
                        eprintln!("error: {cmd} expects a file path, e.g. {cmd} facts.sepra");
                    } else if cmd == ":save" {
                        let db = qp.db();
                        let body = codec::encode_database(db);
                        match write_checkpoint_file(
                            std::path::Path::new(rest),
                            db.generation(),
                            &body,
                        ) {
                            Ok(()) => println!(
                                "saved {} facts (generation {}) to {rest}",
                                db.total_tuples(),
                                db.generation()
                            ),
                            Err(e) => eprintln!("error: {e}"),
                        }
                    } else {
                        let loaded = read_checkpoint_file(std::path::Path::new(rest)).and_then(
                            |(_, body)| {
                                Ok(codec::decode_database_as_inserts(
                                    &body,
                                    qp.db_mut().interner_mut(),
                                )?)
                            },
                        );
                        match loaded {
                            Ok((_, delta)) => match qp.apply_delta_mutation(delta) {
                                Ok(out) => {
                                    println!(
                                        "{} facts merged in {:.3?} (generation {})",
                                        out.inserted, out.elapsed, out.generation
                                    );
                                    if stats {
                                        print!("{}", out.stats);
                                    }
                                }
                                Err(e) => eprintln!("error: {e}"),
                            },
                            Err(e) => eprintln!("error: {e}"),
                        }
                    }
                }
                ":lint" => {
                    if qp.source().trim().is_empty() {
                        println!("no rules loaded");
                    } else {
                        let q = if rest.is_empty() { None } else { Some(rest) };
                        print!("{}", qp.lint("<repl>", q).render_text());
                    }
                }
                ":check" => print!("{}", qp.check_report()),
                ":program" => {
                    print!(
                        "{}",
                        sepra_ast::pretty::program_to_string(qp.program(), qp.db().interner())
                    );
                }
                other => eprintln!("error: unknown command {other} (try :help)"),
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        // A statement is complete at a trailing `.` or `?`.
        let complete = line.ends_with('.') || line.ends_with('?');
        if !complete {
            continue;
        }
        let stmt = buffer.trim().to_string();
        buffer.clear();
        if stmt.ends_with('?') {
            run_query(&mut qp, &stmt, strategy, stats, opts.format);
        } else if let Err(e) = qp.load(&stmt) {
            report_ast_error("<repl>", &stmt, &e);
        }
    }
    ExitCode::SUCCESS
}
