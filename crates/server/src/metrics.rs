//! Live engine statistics for the query service.
//!
//! One [`Metrics`] instance is shared (behind an `Arc`) by every worker;
//! recording a query takes one short mutex acquisition. The `stats`
//! request renders a snapshot: uptime, per-strategy query counts,
//! cumulative tuples/iterations, and latency min/median/max over a bounded
//! reservoir of recent samples.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many recent latency samples the median is computed over; older
/// samples are overwritten ring-buffer style so memory stays bounded on a
/// long-lived server (min/max remain all-time).
const LATENCY_WINDOW: usize = 4096;

/// Shared query-service counters.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ok: u64,
    errors: u64,
    budget_exceeded: u64,
    by_strategy: BTreeMap<String, u64>,
    bounded_eliminations: u64,
    tuples_inserted: u64,
    iterations: u64,
    mutations: u64,
    mutation_failures: u64,
    mutation_inserted: u64,
    mutation_retracted: u64,
    plans_costed: u64,
    plan_fallbacks: u64,
    latency_min_us: Option<u64>,
    latency_max_us: u64,
    samples: Vec<u64>,
    next_sample: usize,
}

/// A point-in-time copy of the counters, for rendering or assertions.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub uptime: Duration,
    pub ok: u64,
    pub errors: u64,
    pub budget_exceeded: u64,
    pub by_strategy: BTreeMap<String, u64>,
    /// Queries answered by bounded-recursion elimination: the recursion
    /// was compiled away and no fixpoint ran.
    pub bounded_eliminations: u64,
    pub tuples_inserted: u64,
    pub iterations: u64,
    pub mutations: u64,
    pub mutation_failures: u64,
    pub mutation_inserted: u64,
    pub mutation_retracted: u64,
    pub plans_costed: u64,
    pub plan_fallbacks: u64,
    pub latency_min_us: u64,
    pub latency_median_us: u64,
    pub latency_max_us: u64,
}

impl Snapshot {
    /// Total queries answered (successes plus failures of any kind).
    pub fn total(&self) -> u64 {
        self.ok + self.errors + self.budget_exceeded
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates zeroed metrics; uptime counts from now.
    pub fn new() -> Self {
        Self { started: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A worker that panicked while holding the lock has already
        // recorded or not recorded its query; the counters stay usable.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn record_latency(inner: &mut Inner, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        inner.latency_min_us = Some(inner.latency_min_us.map_or(us, |m| m.min(us)));
        inner.latency_max_us = inner.latency_max_us.max(us);
        if inner.samples.len() < LATENCY_WINDOW {
            inner.samples.push(us);
        } else {
            let slot = inner.next_sample % LATENCY_WINDOW;
            inner.samples[slot] = us;
        }
        inner.next_sample = inner.next_sample.wrapping_add(1);
    }

    /// Records a successfully answered query.
    pub fn record_ok(&self, strategy: &str, elapsed: Duration, tuples: u64, iterations: u64) {
        let mut inner = self.lock();
        inner.ok += 1;
        *inner.by_strategy.entry(strategy.to_string()).or_insert(0) += 1;
        if strategy == "bounded" {
            inner.bounded_eliminations += 1;
        }
        inner.tuples_inserted += tuples;
        inner.iterations += iterations;
        Self::record_latency(&mut inner, elapsed);
    }

    /// Records a query that failed; budget exhaustion is counted
    /// separately from other errors (it is the expected outcome of a
    /// deadline, not a fault).
    pub fn record_error(&self, budget_exceeded: bool, elapsed: Duration) {
        let mut inner = self.lock();
        if budget_exceeded {
            inner.budget_exceeded += 1;
        } else {
            inner.errors += 1;
        }
        Self::record_latency(&mut inner, elapsed);
    }

    /// Records a committed mutation: how many EDB tuples it effectively
    /// inserted and retracted, and how long the maintenance took.
    pub fn record_mutation(&self, inserted: u64, retracted: u64, elapsed: Duration) {
        let mut inner = self.lock();
        inner.mutations += 1;
        inner.mutation_inserted += inserted;
        inner.mutation_retracted += retracted;
        Self::record_latency(&mut inner, elapsed);
    }

    /// Records a mutation that was rejected (parse error, arity clash,
    /// exhausted budget); the database was left untouched.
    pub fn record_mutation_failure(&self) {
        self.lock().mutation_failures += 1;
    }

    /// Records how many conjunctions an operation's planner cost-ordered
    /// and how many of those fell back to the static heuristic for lack
    /// of statistics (see `sepra_eval::planner`).
    pub fn record_planner(&self, costed: u64, fallbacks: u64) {
        let mut inner = self.lock();
        inner.plans_costed += costed;
        inner.plan_fallbacks += fallbacks;
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut sorted = inner.samples.clone();
        sorted.sort_unstable();
        let median = if sorted.is_empty() { 0 } else { sorted[sorted.len() / 2] };
        Snapshot {
            uptime: self.started.elapsed(),
            ok: inner.ok,
            errors: inner.errors,
            budget_exceeded: inner.budget_exceeded,
            by_strategy: inner.by_strategy.clone(),
            bounded_eliminations: inner.bounded_eliminations,
            tuples_inserted: inner.tuples_inserted,
            iterations: inner.iterations,
            mutations: inner.mutations,
            mutation_failures: inner.mutation_failures,
            mutation_inserted: inner.mutation_inserted,
            mutation_retracted: inner.mutation_retracted,
            plans_costed: inner.plans_costed,
            plan_fallbacks: inner.plan_fallbacks,
            latency_min_us: inner.latency_min_us.unwrap_or(0),
            latency_median_us: median,
            latency_max_us: inner.latency_max_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_strategy_and_outcome() {
        let m = Metrics::new();
        m.record_ok("separable", Duration::from_micros(100), 10, 3);
        m.record_ok("separable", Duration::from_micros(300), 20, 5);
        m.record_ok("seminaive", Duration::from_micros(200), 7, 2);
        m.record_error(true, Duration::from_micros(50));
        m.record_error(false, Duration::from_micros(60));

        let s = m.snapshot();
        assert_eq!(s.ok, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.budget_exceeded, 1);
        assert_eq!(s.total(), 5);
        assert_eq!(s.by_strategy.get("separable"), Some(&2));
        assert_eq!(s.by_strategy.get("seminaive"), Some(&1));
        assert_eq!(s.tuples_inserted, 37);
        assert_eq!(s.iterations, 10);
        assert_eq!(s.latency_min_us, 50);
        assert_eq!(s.latency_max_us, 300);
        // Sorted samples: 50, 60, 100, 200, 300 → median 100.
        assert_eq!(s.latency_median_us, 100);
    }

    #[test]
    fn latency_window_stays_bounded() {
        let m = Metrics::new();
        for i in 0..(LATENCY_WINDOW as u64 + 100) {
            m.record_ok("seminaive", Duration::from_micros(i), 0, 0);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_min_us, 0); // all-time min survives eviction
        assert_eq!(s.latency_max_us, LATENCY_WINDOW as u64 + 99);
        assert_eq!(s.total(), LATENCY_WINDOW as u64 + 100);
    }

    #[test]
    fn bounded_eliminations_count_bounded_runs_only() {
        let m = Metrics::new();
        m.record_ok("bounded", Duration::from_micros(10), 4, 0);
        m.record_ok("bounded", Duration::from_micros(20), 4, 0);
        m.record_ok("seminaive", Duration::from_micros(30), 4, 2);
        let s = m.snapshot();
        assert_eq!(s.bounded_eliminations, 2);
        assert_eq!(s.by_strategy.get("bounded"), Some(&2));
    }

    #[test]
    fn planner_counters_accumulate() {
        let m = Metrics::new();
        m.record_planner(3, 1);
        m.record_planner(2, 0);
        let s = m.snapshot();
        assert_eq!(s.plans_costed, 5);
        assert_eq!(s.plan_fallbacks, 1);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.total(), 0);
        assert_eq!(s.latency_min_us, 0);
        assert_eq!(s.latency_median_us, 0);
        assert_eq!(s.latency_max_us, 0);
        assert!(s.by_strategy.is_empty());
    }
}
