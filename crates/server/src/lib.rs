//! The `sepra` CLI and the `sepra serve` concurrent query service.
//!
//! The paper's closing argument is that compiled separable recursions
//! belong *inside* a query processor, supplementing the general
//! algorithms. This crate is the front door to that processor: the `sepra`
//! binary (one-shot queries, a REPL, `sepra check` static analysis) and a
//! long-lived TCP query service that loads and compiles a program once,
//! then answers concurrent line-delimited JSON queries with per-request
//! deadlines, tuple caps, cancellation on shutdown, and live engine
//! statistics (per-strategy counts, latency aggregates, plan-cache
//! hit rates).
//!
//! See [`server`] for the wire protocol, [`metrics`] for what the `stats`
//! request reports, and [`json`] for the dependency-free JSON layer (now
//! hosted by `sepra-repl` so the replication protocol can share it, and
//! re-exported here unchanged).

pub mod durability;
pub mod metrics;
pub mod replica;
pub mod server;

pub use durability::{
    load_offline, CheckpointFormat, Durability, DurabilityOptions, DEFAULT_CHECKPOINT_EVERY,
};
pub use metrics::{Metrics, Snapshot};
pub use sepra_repl::json;
pub use server::{lint_gate, serve, ServeError, ServeOptions, MAX_REQUEST_BYTES};

/// Default worker count: whatever the OS reports, falling back to serial.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
