//! The replica applier: `sepra serve --replica-of HOST:PORT`.
//!
//! A replica is an ordinary query server whose mutations arrive over the
//! wire instead of from clients. One dedicated thread owns the sync
//! connection to the primary ([`sepra_repl::SyncClient`]) and applies
//! validated events into the shared master processor; the worker pool
//! keeps serving reads from snapshots throughout, exactly as on a
//! primary. What the applier maintains:
//!
//! * **Same code path as live mutations.** A streamed WAL record's delta
//!   goes through [`QueryProcessor::apply_delta_mutation`] — the
//!   identical incremental-maintenance path the primary's own commits and
//!   crash recovery use — then the record's stamped generation is adopted
//!   verbatim. A replica's state is therefore always the exact EDB of
//!   some committed-generation prefix of the primary, never an
//!   approximation.
//! * **Idempotence at generation granularity.** Every event at or below
//!   the replica's current generation is skipped, so reconnect overlap
//!   (the feeder re-sends from the requested floor) and checkpoint
//!   re-ships are harmless.
//! * **Publish order.** After applying: processor generation first (so
//!   workers refresh), then the gate (so a `min_generation` waiter that
//!   wakes always finds a refreshable snapshot at its target).
//!
//! Any stream error — connection loss, a failed checksum, a decode
//! failure — tears down the connection and reconnects from the replica's
//! current generation. The feeder decides from that floor whether the
//! WAL tail suffices or a checkpoint must be re-shipped.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sepra_repl::{SyncClient, SyncEvent};
use sepra_wal::codec;

use crate::server::SharedState;

/// Delay between reconnect attempts when the primary is unreachable.
const RECONNECT_DELAY: Duration = Duration::from_millis(250);

/// Applies one validated sync event to the shared state. Returns `Err`
/// with a description when the stream content cannot be applied (the
/// caller reconnects; state is never left half-applied — both checkpoint
/// and delta application are all-or-nothing).
pub(crate) fn apply_event(shared: &SharedState, event: SyncEvent) -> Result<(), String> {
    match event {
        SyncEvent::Ping { generation } => {
            bump_primary_generation(shared, generation);
            Ok(())
        }
        SyncEvent::Record { generation, payload } => {
            bump_primary_generation(shared, generation);
            let mut master = shared.lock_master();
            if generation <= master.db().generation() {
                return Ok(()); // reconnect overlap: already applied
            }
            let delta = codec::decode_delta(&payload, master.interner_mut())
                .map_err(|e| format!("decoding record at generation {generation}: {e}"))?;
            master
                .apply_delta_mutation(delta)
                .map_err(|e| format!("applying record at generation {generation}: {e}"))?;
            // Adopt the primary's stamp (the local effective-tuple count
            // can differ when a record carries already-present tuples).
            master.adopt_db_generation(generation);
            shared.generation.store(master.generation(), Ordering::SeqCst);
            drop(master);
            shared.applied_records.fetch_add(1, Ordering::SeqCst);
            shared.gate.publish(generation);
            Ok(())
        }
        SyncEvent::Checkpoint { generation, body } => {
            bump_primary_generation(shared, generation);
            let mut master = shared.lock_master();
            if generation <= master.db().generation() {
                return Ok(()); // re-ship of a snapshot we already cover
            }
            // The snapshot is authoritative for the whole EDB: clear
            // first so tuples it says were retracted stay retracted. This
            // goes through `db_mut` (invalidating prepared state), so
            // re-prepare before serving — checkpoints arrive rarely
            // (initial sync and truncation races), records do the
            // steady-state work.
            let db = master.db_mut();
            db.clear_relations();
            codec::decode_snapshot_into(&body, db)
                .map_err(|e| format!("decoding checkpoint at generation {generation}: {e}"))?;
            db.force_generation(generation);
            master
                .prepare()
                .map_err(|e| format!("re-preparing after checkpoint {generation}: {e}"))?;
            shared.generation.store(master.generation(), Ordering::SeqCst);
            drop(master);
            shared.gate.publish(generation);
            Ok(())
        }
    }
}

/// Tracks the highest primary generation seen on the stream (pings carry
/// the primary's current position; records and checkpoints imply it).
fn bump_primary_generation(shared: &SharedState, generation: u64) {
    shared.primary_generation.fetch_max(generation, Ordering::SeqCst);
}

/// The applier loop: connect from the current generation, apply events,
/// reconnect on any failure, until shutdown.
fn applier_loop(primary: &str, shared: &SharedState, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        let from_generation = shared.gate.current();
        let mut client = match SyncClient::connect(primary, from_generation) {
            Ok(client) => client,
            Err(_) => {
                // Primary down or unreachable: keep serving (lagging)
                // reads and retry. Sleep in one slice — short enough that
                // shutdown and recovery both stay prompt.
                std::thread::sleep(RECONNECT_DELAY);
                continue;
            }
        };
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match client.next_event() {
                Ok(event) => {
                    if apply_event(shared, event).is_err() {
                        break; // unapplicable content: resync from scratch
                    }
                }
                Err(_) => break, // stream error: reconnect
            }
        }
    }
}

/// Spawns the applier thread for `serve --replica-of`.
pub(crate) fn spawn_applier(
    primary: String,
    shared: Arc<SharedState>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("sepra-replica".into())
        .spawn(move || applier_loop(&primary, &shared, &shutdown))
}
