//! The `sepra serve` query service.
//!
//! A server loads and compiles a program once ([`QueryProcessor::prepare`]
//! interns symbols, detects recursions, materializes supporting strata, and
//! enables the shared plan cache), then answers line-delimited JSON
//! requests over TCP:
//!
//! ```text
//! -> {"query": "t(a, Y)?", "strategy": "separable", "timeout_ms": 250, "max_tuples": 100000}
//! <- {"answers": [["a","b"], ...], "count": 2, "strategy": "separable",
//!     "elapsed_us": 113, "stats": {"iterations": 4, "tuples_inserted": 9, "rows_scanned": 31}}
//! -> {"insert": ["e(b, c)."], "retract": ["e(a, b)."]}
//! <- {"inserted": 1, "retracted": 1, "generation": 5, "elapsed_us": 87, "stats": {...}}
//! -> {"stats": true}
//! <- {"uptime_ms": ..., "threads": ..., "generation": ..., "queries": {...}, ...}
//! ```
//!
//! Concurrency is a hand-rolled worker pool over `std::net` (the workspace
//! takes no external dependencies): each worker owns a cheap
//! [`QueryProcessor`] clone — a copy-on-write database snapshot sharing the
//! prepared state and plan cache — and pulls connections from a
//! condvar-guarded queue. Every request runs under a [`Budget`] that
//! combines the server-wide defaults, the request's overrides, and a
//! cancellation flag raised at shutdown, so a deadline or a Ctrl-C
//! surfaces as a structured `budget_exceeded` error instead of a stuck
//! fixpoint.
//!
//! Mutations (`insert`/`retract` requests) are serialized through one
//! master processor behind a mutex — writes are exclusive, reads share
//! snapshots. [`QueryProcessor::apply_mutation`] stages the whole delta and
//! maintains the prepared materializations incrementally, so a mutation is
//! all-or-none; publishing the new database generation afterwards makes
//! every worker refresh its snapshot before its next request. A query
//! therefore observes either none or all of a mutation, never a prefix.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sepra_engine::{GenerationGate, ProcessorError, QueryProcessor, Strategy, StrategyChoice};
use sepra_eval::{Budget, EvalError};
use sepra_repl::feeder::refuse_sync;
use sepra_repl::protocol::parse_sync_request;
use sepra_repl::stream_to_follower;
use sepra_wal::WalError;

use crate::durability::{Durability, DurabilityOptions};
use crate::json::{self, Json, ObjWriter};
use crate::metrics::Metrics;

/// Requests larger than this are rejected without parsing (the protocol is
/// one query per line; 64 KiB is far beyond any sensible query text).
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Default for [`ServeOptions::idle_timeout`]: how long a connection may
/// sit idle mid-protocol before the worker reclaims itself. Reads poll in
/// [`READ_POLL`] slices so an idle worker still notices shutdown promptly.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
const READ_POLL: Duration = Duration::from_millis(200);
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// How often the accept loop and idle workers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long a `min_generation` read waits for the replica to catch up
/// when the request carries no deadline of its own (no `timeout_ms`, no
/// server default).
const MIN_GENERATION_WAIT: Duration = Duration::from_secs(10);

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind, e.g. `127.0.0.1:7464` (port 0 picks a free port;
    /// the chosen address is printed on startup).
    pub addr: String,
    /// Worker threads — concurrent connections served (each query runs its
    /// fixpoints serially; parallelism is across requests).
    pub threads: usize,
    /// Default per-query deadline; a request's `timeout_ms` overrides it.
    pub default_timeout: Option<Duration>,
    /// Default per-query derived-tuple cap; `max_tuples` overrides it.
    pub default_max_tuples: Option<usize>,
    /// Refuse to start on lint warnings too, not just errors.
    pub deny_warnings: bool,
    /// How long a connection may sit idle mid-protocol before its worker
    /// reclaims itself (cumulative wait between complete requests).
    pub idle_timeout: Duration,
    /// With `Some`, the server is durable: mutations are write-ahead
    /// logged under the data dir, checkpoints roll per the cadence, and
    /// startup recovers the newest durable state. `None` is the original
    /// ephemeral behavior.
    pub durability: Option<DurabilityOptions>,
    /// With `Some(HOST:PORT)`, the server is a **read replica**: it syncs
    /// its EDB from the primary's checkpoint + WAL stream, serves reads
    /// (stamped with the applied generation), and rejects mutations with
    /// a redirect naming the primary. Mutually exclusive with
    /// `durability` — a replica's durable state *is* the primary's.
    pub replica_of: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7464".into(),
            threads: crate::default_threads(),
            default_timeout: None,
            default_max_tuples: None,
            deny_warnings: false,
            idle_timeout: IDLE_TIMEOUT,
            durability: None,
            replica_of: None,
        }
    }
}

/// Why the server refused to start (it never fails once serving).
#[derive(Debug)]
pub enum ServeError {
    /// The loaded program has deny-level diagnostics; the rendered report
    /// is included. The gate mirrors `sepra check`: a program that fails
    /// static analysis is refused before a socket is ever bound.
    Lint(String),
    /// Preparing the processor (support materialization) failed.
    Prepare(ProcessorError),
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// Opening the data directory or recovering durable state failed
    /// (unwritable/readonly dir, corrupt frame past its checksum, …).
    /// Startup refuses rather than serving a silently ephemeral server.
    Durability(WalError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Lint(report) => {
                write!(f, "refusing to serve a program with lint errors\n{report}")
            }
            ServeError::Prepare(e) => write!(f, "preparing the program failed: {e}"),
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Durability(e) => write!(f, "durability: {e}"),
        }
    }
}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Durability(e)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The `sepra check` gate: refuses a program whose diagnostics would make
/// `sepra check` exit nonzero (errors always; warnings under
/// `deny_warnings`).
pub fn lint_gate(qp: &QueryProcessor, deny_warnings: bool) -> Result<(), ServeError> {
    let result = qp.lint("<program>", None);
    if result.exit_code(deny_warnings) != 0 {
        return Err(ServeError::Lint(result.render_text()));
    }
    Ok(())
}

/// Runs the query service until shutdown (a `quit` line on stdin, SIGINT,
/// or SIGTERM). Prints `sepra serve listening on ADDR (N workers)` once
/// the socket is bound.
pub fn serve(mut qp: QueryProcessor, opts: &ServeOptions) -> Result<(), ServeError> {
    lint_gate(&qp, opts.deny_warnings)?;
    if opts.replica_of.is_some() && opts.durability.is_some() {
        return Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "--replica-of and --data-dir are mutually exclusive: a replica's durable state \
             is the primary's",
        )));
    }
    // Recovery runs before `prepare`, so support materialization happens
    // once, over the recovered EDB.
    let durability = match &opts.durability {
        Some(durability_opts) => {
            let durability = Durability::recover(&mut qp, durability_opts)?;
            println!("sepra serve {}", durability.recovery_banner());
            Some(durability)
        }
        None => None,
    };
    qp.prepare().map_err(ServeError::Prepare)?;
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    match &opts.replica_of {
        Some(primary) => println!(
            "sepra serve listening on {addr} ({} workers, replica of {primary})",
            opts.threads.max(1)
        ),
        None => println!("sepra serve listening on {addr} ({} workers)", opts.threads.max(1)),
    }
    let _ = std::io::stdout().flush();

    let shutdown = Arc::new(AtomicBool::new(false));
    watch_stdin(Arc::clone(&shutdown));
    signal::install();
    run(listener, qp, opts, shutdown, durability)
}

/// The accept loop and worker pool, parameterized over the listener and
/// shutdown flag so tests can drive a server in-process. Returns once the
/// flag is raised and every worker has drained.
pub fn run(
    listener: TcpListener,
    qp: QueryProcessor,
    opts: &ServeOptions,
    shutdown: Arc<AtomicBool>,
    durability: Option<Durability>,
) -> Result<(), ServeError> {
    listener.set_nonblocking(true)?;
    let metrics = Arc::new(Metrics::new());
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    let gate = GenerationGate::new();
    gate.publish(qp.db().generation());
    let shared = Arc::new(SharedState {
        generation: AtomicU64::new(qp.generation()),
        primary_generation: AtomicU64::new(qp.db().generation()),
        master: Mutex::new(qp),
        durability: durability.map(Mutex::new),
        gate,
        replica_of: opts.replica_of.clone(),
        applied_records: AtomicU64::new(0),
    });

    // A replica pulls its state from the primary on a dedicated applier
    // thread; queries keep being served from snapshots throughout.
    let applier = opts
        .replica_of
        .as_ref()
        .map(|primary| {
            crate::replica::spawn_applier(
                primary.clone(),
                Arc::clone(&shared),
                Arc::clone(&shutdown),
            )
        })
        .transpose()?;

    let mut workers = Vec::new();
    for i in 0..opts.threads.max(1) {
        let worker = Worker {
            qp: shared.lock_master().clone(),
            shared: Arc::clone(&shared),
            queue: Arc::clone(&queue),
            shutdown: Arc::clone(&shutdown),
            metrics: Arc::clone(&metrics),
            default_timeout: opts.default_timeout,
            default_max_tuples: opts.default_max_tuples,
            idle_timeout: opts.idle_timeout,
            threads: opts.threads.max(1),
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("sepra-worker-{i}"))
                .spawn(move || worker.run())?,
        );
    }

    // `--fsync interval:MS` defers syncs to the next append; the accept
    // loop backstops that with a periodic flush so the documented loss
    // window ("at most one interval") holds when mutations stop arriving.
    let deferred_fsync = shared
        .durability
        .as_ref()
        .and_then(|d| d.lock().unwrap_or_else(|e| e.into_inner()).deferred_sync_interval());
    let mut last_flush_check = Instant::now();

    while !shutdown.load(Ordering::SeqCst) {
        if signal::raised() {
            shutdown.store(true, Ordering::SeqCst);
            break;
        }
        if let (Some(interval), Some(durability)) = (deferred_fsync, &shared.durability) {
            if last_flush_check.elapsed() >= interval {
                let _ = durability.lock().unwrap_or_else(|e| e.into_inner()).flush_if_stale();
                last_flush_check = Instant::now();
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let (lock, cvar) = &*queue;
                lock.lock().unwrap_or_else(|e| e.into_inner()).push_back(stream);
                cvar.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }

    // Raising the flag cancels in-flight budgets (every request's budget
    // carries it as a cancellation token); waking the condvar releases
    // idle workers.
    shutdown.store(true, Ordering::SeqCst);
    queue.1.notify_all();
    for handle in workers {
        let _ = handle.join();
    }
    if let Some(handle) = applier {
        let _ = handle.join();
    }
    // Clean shutdown flushes policy-deferred WAL writes: `--fsync
    // interval`/`never` only risk loss on a crash, not on an exit.
    if let Some(durability) = &shared.durability {
        let _ = durability.lock().unwrap_or_else(|e| e.into_inner()).sync();
    }
    Ok(())
}

/// Watches stdin for a `quit`/`shutdown` line on a detached thread. EOF
/// stops the watcher without stopping the server (so a backgrounded
/// server with a closed stdin keeps running; use SIGINT/SIGTERM there).
fn watch_stdin(shutdown: Arc<AtomicBool>) {
    let _ = std::thread::Builder::new().name("sepra-stdin".into()).spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if matches!(line.trim(), "quit" | "shutdown" | "exit") {
                        shutdown.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            }
        }
    });
}

/// SIGINT/SIGTERM handling without a libc dependency: a hand-rolled
/// binding to `signal(2)` flips a process-global flag the accept loop
/// polls. Non-Unix builds compile the polling to a constant `false`.
#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static RAISED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        RAISED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    pub(super) fn raised() -> bool {
        RAISED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signal {
    pub(super) fn install() {}

    pub(super) fn raised() -> bool {
        false
    }
}

/// The mutable server state every worker shares: the master processor
/// (mutations are serialized through its mutex — write-exclusive) and the
/// published database generation workers compare their snapshots against.
pub(crate) struct SharedState {
    pub(crate) master: Mutex<QueryProcessor>,
    /// [`QueryProcessor::generation`] of the last committed mutation (or,
    /// on a replica, the last applied sync event). Published *after* the
    /// master commits, so a worker observing the new value is guaranteed
    /// to clone a fully mutated master.
    pub(crate) generation: AtomicU64,
    /// The durability pipeline (`--data-dir`). Lock order: master first,
    /// then durability — stats readers take durability alone, never the
    /// reverse.
    pub(crate) durability: Option<Mutex<Durability>>,
    /// The committed **database** generation — the durable lineage WAL
    /// records and checkpoints are stamped with, and the number every
    /// client-visible `"generation"` field reports. Published after the
    /// processor generation, so a waiter released by the gate always finds
    /// a refreshable snapshot at or past its target.
    pub(crate) gate: GenerationGate,
    /// `Some(addr)` when this server is a read replica of `addr`.
    pub(crate) replica_of: Option<String>,
    /// On a replica: the primary's generation as last reported by the
    /// sync stream (pings carry it), for honest lag accounting.
    pub(crate) primary_generation: AtomicU64,
    /// On a replica: WAL records applied since startup.
    pub(crate) applied_records: AtomicU64,
}

impl SharedState {
    pub(crate) fn lock_master(&self) -> std::sync::MutexGuard<'_, QueryProcessor> {
        // A worker that panicked mid-mutation never committed (the master
        // only changes at `apply_mutation`'s final commit step), so the
        // state behind a poisoned lock is still consistent.
        self.master.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One worker thread: owns a processor clone and serves whole connections
/// pulled from the shared queue.
struct Worker {
    qp: QueryProcessor,
    shared: Arc<SharedState>,
    queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    default_timeout: Option<Duration>,
    default_max_tuples: Option<usize>,
    idle_timeout: Duration,
    threads: usize,
}

impl Worker {
    fn run(mut self) {
        loop {
            let stream = {
                let (lock, cvar) = &*self.queue;
                let mut q = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(stream) = q.pop_front() {
                        break Some(stream);
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    let (guard, _) =
                        cvar.wait_timeout(q, POLL_INTERVAL).unwrap_or_else(|e| e.into_inner());
                    q = guard;
                }
            };
            match stream {
                Some(stream) => self.handle_connection(stream),
                None => return,
            }
        }
    }

    fn handle_connection(&mut self, stream: TcpStream) {
        // Short read timeouts so a worker parked on an idle connection
        // still notices shutdown within one poll interval; `idle` tracks
        // the cumulative wait so connections are still reclaimed.
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        // Responses are one small write each on a ping-pong connection:
        // without nodelay, Nagle + the peer's delayed ACK adds a flat
        // ~40 ms to every round trip.
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        let mut line = Vec::new();
        let mut idle = Duration::ZERO;
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // The cap counts the request line itself: filling it without a
            // newline means the client sent an oversized request. A timed-
            // out read leaves any partial line in `line` for the next poll.
            let remaining = (MAX_REQUEST_BYTES + 1).saturating_sub(line.len());
            if remaining == 0 {
                let _ = write_line(
                    &mut writer,
                    &error_response(
                        "bad_request",
                        &format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                        None,
                    ),
                );
                return;
            }
            let sofar = line.len();
            match (&mut reader).take(remaining as u64).read_until(b'\n', &mut line) {
                Ok(0) if line.is_empty() => return,        // EOF: client is done
                Ok(0) => {}                                // EOF with a final unterminated request
                Ok(_) if line.last() == Some(&b'\n') => {} // one complete request
                Ok(_) => {
                    // Mid-line (take cap reached): progress was made, so
                    // the connection is not idle.
                    idle = Duration::ZERO;
                    continue;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // A timed-out read may still have consumed partial
                    // bytes into `line`; that is progress, and a slow
                    // writer must not be reclaimed while still sending.
                    if line.len() > sofar {
                        idle = Duration::ZERO;
                    } else {
                        idle += READ_POLL;
                        if idle >= self.idle_timeout {
                            return;
                        }
                    }
                    continue;
                }
                Err(_) => return, // reset
            }
            idle = Duration::ZERO;
            let response = match std::str::from_utf8(&line) {
                Ok(text) if text.trim().is_empty() => {
                    line.clear();
                    continue;
                }
                Ok(text) => match sync_request_of(text.trim()) {
                    // A sync request turns this connection into a
                    // replication stream: hand the socket to a dedicated
                    // feeder thread (streams run for hours — parking a
                    // pool worker on one would starve queries) and free
                    // this worker for the next connection.
                    Some(Ok(from_generation)) => {
                        self.handle_sync(writer, from_generation);
                        return;
                    }
                    Some(Err(message)) => error_response("bad_request", &message, None),
                    None => self.handle_request(text.trim()),
                },
                Err(_) => error_response("bad_request", "request is not valid UTF-8", None),
            };
            line.clear();
            if write_line(&mut writer, &response).is_err() {
                return;
            }
        }
    }

    /// Serves (or refuses) one follower's sync stream. Only a durable
    /// primary can feed followers: the stream's source of truth is the
    /// data directory, which an ephemeral server does not have and a
    /// replica does not own.
    fn handle_sync(&self, stream: TcpStream, from_generation: u64) {
        if self.shared.replica_of.is_some() {
            let _ = refuse_sync(
                &stream,
                "sync_unavailable",
                "this server is a replica; sync from the primary instead",
            );
            return;
        }
        let Some(durability) = &self.shared.durability else {
            let _ = refuse_sync(
                &stream,
                "sync_unavailable",
                "this server is ephemeral (started without --data-dir); only a durable \
                 server can feed replicas",
            );
            return;
        };
        let source = durability.lock().unwrap_or_else(|e| e.into_inner()).sync_source();
        let shared = Arc::clone(&self.shared);
        let shutdown = Arc::clone(&self.shutdown);
        let _ = std::thread::Builder::new().name("sepra-sync".into()).spawn(move || {
            let _ = stream_to_follower(&stream, from_generation, &source, &shutdown, &|| {
                shared.gate.current()
            });
        });
    }

    /// Replaces this worker's snapshot with the master's when a mutation
    /// has been published since the snapshot was taken.
    fn refresh_snapshot(&mut self) {
        if self.shared.generation.load(Ordering::SeqCst) != self.qp.generation() {
            self.qp = self.shared.lock_master().clone();
        }
    }

    /// Parks until the applied db generation reaches `target` or `limit`
    /// elapses, waiting in short slices so shutdown stays prompt. Returns
    /// the generation actually reached.
    fn await_generation(&self, target: u64, limit: Duration) -> u64 {
        let deadline = Instant::now() + limit;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let reached = self.shared.gate.wait_for(target, remaining.min(READ_POLL));
            if reached >= target || remaining <= READ_POLL || self.shutdown.load(Ordering::SeqCst) {
                return reached;
            }
        }
    }

    fn handle_request(&mut self, text: &str) -> String {
        let request = match json::parse(text) {
            Ok(v) => v,
            Err(e) => return error_response("bad_request", &format!("invalid JSON: {e}"), None),
        };
        // Reads share snapshots: pick up the latest committed mutation
        // before answering, so a query issued after a mutation response
        // was sent always sees the mutated database.
        self.refresh_snapshot();
        if request.get("stats").and_then(Json::as_bool) == Some(true) {
            return stats_response(&self.metrics, &self.qp, &self.shared, self.threads);
        }
        if request.get("insert").is_some() || request.get("retract").is_some() {
            if request.get("query").is_some() {
                return error_response(
                    "bad_request",
                    "a request is either a query or a mutation, not both",
                    None,
                );
            }
            return self.handle_mutation(&request);
        }
        let Some(query) = request.get("query").and_then(Json::as_str).map(str::to_owned) else {
            return error_response(
                "bad_request",
                "request needs a \"query\" member (or \"insert\"/\"retract\", or \"stats\": true)",
                None,
            );
        };
        let choice = match request.get("strategy").and_then(Json::as_str) {
            None => StrategyChoice::Auto,
            Some(name) => match name.parse::<Strategy>() {
                Ok(s) => StrategyChoice::Force(s),
                Err(e) => return error_response("bad_request", &e, None),
            },
        };
        let budget = match self.request_budget(&request) {
            Ok(budget) => budget,
            Err(message) => return error_response("bad_request", &message, None),
        };
        // Generation-consistent reads: `"min_generation": G` parks the
        // request until the applied generation reaches G (read-your-writes
        // against a replica that is still catching up), bounded by the
        // request's deadline budget. The budget above was already started,
        // so wait time counts against the query's own deadline too.
        match budget_field(&request, "min_generation") {
            Err(message) => return error_response("bad_request", &message, None),
            Ok(None) => {}
            Ok(Some(target)) => {
                let limit = match budget_field(&request, "timeout_ms") {
                    Ok(Some(ms)) => Duration::from_millis(ms),
                    _ => self.default_timeout.unwrap_or(MIN_GENERATION_WAIT),
                };
                let reached = self.await_generation(target, limit);
                if reached < target {
                    let mut detail = ObjWriter::new();
                    detail
                        .str("kind", "timeout")
                        .str(
                            "message",
                            &format!(
                                "generation {target} not reached within the deadline \
                                 (applied generation is {reached})"
                            ),
                        )
                        .num("generation", reached);
                    let mut out = ObjWriter::new();
                    out.raw("error", &detail.finish());
                    return out.finish();
                }
                // The gate is published after the master commits, so a
                // released waiter refreshes into a snapshot at or past G.
                self.refresh_snapshot();
            }
        }
        self.qp.set_exec_options(sepra_core::exec::ExecOptions {
            budget,
            ..sepra_core::exec::ExecOptions::default()
        });

        let start = Instant::now();
        match self.qp.query_with(&query, choice) {
            Ok(result) => {
                self.metrics.record_ok(
                    &result.strategy.to_string(),
                    start.elapsed(),
                    result.stats.tuples_inserted as u64,
                    result.stats.iterations as u64,
                );
                self.metrics.record_planner(
                    result.stats.plans_costed as u64,
                    result.stats.plan_fallbacks as u64,
                );
                let interner = self.qp.db().interner();
                let mut rows = String::from("[");
                for (i, tuple) in result.answers.iter().enumerate() {
                    if i > 0 {
                        rows.push(',');
                    }
                    rows.push('[');
                    for (j, value) in tuple.values().enumerate() {
                        if j > 0 {
                            rows.push(',');
                        }
                        rows.push('"');
                        rows.push_str(&json::escape(&value.display(interner).to_string()));
                        rows.push('"');
                    }
                    rows.push(']');
                }
                rows.push(']');
                let mut stats = ObjWriter::new();
                stats
                    .num("iterations", result.stats.iterations as u64)
                    .num("tuples_inserted", result.stats.tuples_inserted as u64)
                    .num("rows_scanned", result.stats.rows_scanned as u64);
                // Every answer is stamped with the db generation of the
                // snapshot that produced it, so clients can compare reads
                // across replicas (and against mutation acks).
                let mut out = ObjWriter::new();
                out.raw("answers", &rows)
                    .num("count", result.answers.len() as u64)
                    .str("strategy", &result.strategy.to_string())
                    .num("generation", self.qp.db().generation())
                    .num(
                        "elapsed_us",
                        u64::try_from(result.elapsed.as_micros()).unwrap_or(u64::MAX),
                    )
                    .raw("stats", &stats.finish());
                out.finish()
            }
            Err(e) => {
                let budget_exceeded =
                    matches!(&e, ProcessorError::Eval(EvalError::BudgetExceeded { .. }));
                self.metrics.record_error(budget_exceeded, start.elapsed());
                match e {
                    ProcessorError::Eval(EvalError::BudgetExceeded { what, resource }) => {
                        let mut detail = ObjWriter::new();
                        detail
                            .str("kind", "budget_exceeded")
                            .str(
                                "message",
                                &format!("budget exceeded in {what}: {}", resource.name()),
                            )
                            .str("what", &what)
                            .str("resource", resource.name());
                        let mut out = ObjWriter::new();
                        out.raw("error", &detail.finish());
                        out.finish()
                    }
                    ProcessorError::Ast(e) => error_response("parse", &e.to_string(), None),
                    ProcessorError::Eval(e) => error_response("eval", &e.to_string(), None),
                    ProcessorError::Facts(e) => error_response("facts", &e, None),
                    ProcessorError::StrategyUnavailable(e) => {
                        error_response("strategy_unavailable", &e, None)
                    }
                }
            }
        }
    }

    /// The per-request budget: server defaults, request overrides, and the
    /// shutdown flag as a cancellation token. Fails (→ `bad_request`) when
    /// a budget member is present but not a nonnegative integer.
    fn request_budget(&self, request: &Json) -> Result<Budget, String> {
        let mut budget = Budget::unlimited().cancellable(Arc::clone(&self.shutdown));
        if let Some(ms) = budget_field(request, "timeout_ms")? {
            budget = budget.timeout(Duration::from_millis(ms));
        } else if let Some(t) = self.default_timeout {
            budget = budget.timeout(t);
        }
        if let Some(n) = budget_field(request, "max_tuples")? {
            budget = budget.tuples(n as usize);
        } else if let Some(n) = self.default_max_tuples {
            budget = budget.tuples(n);
        }
        Ok(budget)
    }

    /// Applies an `insert`/`retract` request through the shared master
    /// processor (write-exclusive) and renders the outcome.
    fn handle_mutation(&mut self, request: &Json) -> String {
        if let Some(primary) = &self.shared.replica_of {
            // The structured redirect: clients (and the router) read
            // `error.primary` to re-aim the mutation.
            let mut detail = ObjWriter::new();
            detail
                .str("kind", "read_only_replica")
                .str(
                    "message",
                    &format!("this server is a read-only replica; send mutations to {primary}"),
                )
                .str("primary", primary);
            let mut out = ObjWriter::new();
            out.raw("error", &detail.finish());
            return out.finish();
        }
        let (inserts, retracts) =
            match (fact_list(request, "insert"), fact_list(request, "retract")) {
                (Ok(i), Ok(r)) => (i, r),
                (Err(message), _) | (_, Err(message)) => {
                    return error_response("bad_request", &message, None)
                }
            };
        let budget = match self.request_budget(request) {
            Ok(budget) => budget,
            Err(message) => return error_response("bad_request", &message, None),
        };
        let insert_refs: Vec<&str> = inserts.iter().map(String::as_str).collect();
        let retract_refs: Vec<&str> = retracts.iter().map(String::as_str).collect();

        let start = Instant::now();
        let outcome = {
            let mut master = self.shared.lock_master();
            // With durability on, keep a copy-on-write backup so a failed
            // WAL append can roll the in-memory commit back: a mutation is
            // acknowledged only once it is both applied *and* logged.
            let backup = self.shared.durability.as_ref().map(|_| master.clone());
            master.set_exec_options(sepra_core::exec::ExecOptions {
                budget,
                ..sepra_core::exec::ExecOptions::default()
            });
            let outcome = master.apply_mutation(&insert_refs, &retract_refs);
            if let Ok(out) = &outcome {
                if !out.delta.is_empty() {
                    if let Some(durability) = &self.shared.durability {
                        let append = durability
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .record_commit(master.db(), &out.delta);
                        if let Err(e) = append {
                            // Write-ahead failed: the commit would not
                            // survive a crash, so it must not be visible
                            // at all. Restore the pre-mutation master.
                            *master = backup.expect("backup exists when durability is on");
                            self.metrics.record_mutation_failure();
                            return error_response(
                                "wal",
                                &format!(
                                    "mutation rolled back, write-ahead log append failed: {e}"
                                ),
                                None,
                            );
                        }
                    }
                }
                // Commit order matters: refresh our own snapshot and
                // publish the generation only after the master committed
                // and the delta is logged, so no snapshot can observe a
                // non-durable mutation. The gate (the client-visible db
                // generation) is published last: a waiter it releases
                // must find the processor generation already advanced.
                self.qp = master.clone();
                self.shared.generation.store(self.qp.generation(), Ordering::SeqCst);
                self.shared.gate.publish(self.qp.db().generation());
            }
            outcome
        };
        match outcome {
            Ok(out) => {
                self.metrics.record_mutation(
                    out.inserted as u64,
                    out.retracted as u64,
                    start.elapsed(),
                );
                self.metrics
                    .record_planner(out.stats.plans_costed as u64, out.stats.plan_fallbacks as u64);
                let mut stats = ObjWriter::new();
                stats
                    .num("iterations", out.stats.iterations as u64)
                    .num("tuples_inserted", out.stats.tuples_inserted as u64)
                    .num("rows_scanned", out.stats.rows_scanned as u64);
                // The stamped generation is the *database* generation —
                // the durable lineage WAL records carry and replicas
                // report — so a client can hand it straight to a replica
                // as `min_generation` for read-your-writes.
                let mut response = ObjWriter::new();
                response
                    .num("inserted", out.inserted as u64)
                    .num("retracted", out.retracted as u64)
                    .num("generation", self.qp.db().generation())
                    .num("elapsed_us", u64::try_from(out.elapsed.as_micros()).unwrap_or(u64::MAX))
                    .raw("stats", &stats.finish());
                response.finish()
            }
            Err(e) => {
                self.metrics.record_mutation_failure();
                match e {
                    ProcessorError::Eval(EvalError::BudgetExceeded { what, resource }) => {
                        let mut detail = ObjWriter::new();
                        detail
                            .str("kind", "budget_exceeded")
                            .str(
                                "message",
                                &format!("budget exceeded in {what}: {}", resource.name()),
                            )
                            .str("what", &what)
                            .str("resource", resource.name());
                        let mut out = ObjWriter::new();
                        out.raw("error", &detail.finish());
                        out.finish()
                    }
                    ProcessorError::Ast(e) => error_response("parse", &e.to_string(), None),
                    ProcessorError::Eval(e) => error_response("eval", &e.to_string(), None),
                    ProcessorError::Facts(e) => error_response("facts", &e, None),
                    ProcessorError::StrategyUnavailable(e) => {
                        error_response("strategy_unavailable", &e, None)
                    }
                }
            }
        }
    }
}

/// Detects a `{"sync": ...}` request without disturbing the normal
/// request path: `None` means "not a sync request, handle normally". The
/// substring pre-check keeps the common path at one JSON parse.
fn sync_request_of(text: &str) -> Option<Result<u64, String>> {
    if !text.contains("\"sync\"") {
        return None;
    }
    let request = json::parse(text).ok()?;
    parse_sync_request(&request)
}

/// Reads an optional budget member, failing when it is present but not a
/// nonnegative integer (silently ignoring `"timeout_ms": "soon"` would
/// run the query unbounded — the opposite of what the client asked for).
fn budget_field(request: &Json, key: &str) -> Result<Option<u64>, String> {
    match request.get(key) {
        None => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n)),
            None => Err(format!("\"{key}\" must be a nonnegative integer")),
        },
    }
}

/// Reads an optional `insert`/`retract` member as a list of fact strings.
fn fact_list(request: &Json, key: &str) -> Result<Vec<String>, String> {
    match request.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|item| match item.as_str() {
                Some(s) => Ok(s.to_owned()),
                None => Err(format!("\"{key}\" must be an array of fact strings")),
            })
            .collect(),
        Some(_) => Err(format!("\"{key}\" must be an array of fact strings")),
    }
}

fn write_line(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    // One write per response: splitting the newline into a second small
    // write lets Nagle hold it until the first segment is acknowledged,
    // which with the peer's delayed ACK puts a flat ~40 ms on every
    // request/response round trip.
    let mut framed = String::with_capacity(response.len() + 1);
    framed.push_str(response);
    framed.push('\n');
    writer.write_all(framed.as_bytes())
}

/// Renders `{"error": {"kind": ..., "message": ..., "what"?: ...}}`.
fn error_response(kind: &str, message: &str, what: Option<&str>) -> String {
    let mut detail = ObjWriter::new();
    detail.str("kind", kind).str("message", message);
    if let Some(what) = what {
        detail.str("what", what);
    }
    let mut out = ObjWriter::new();
    out.raw("error", &detail.finish());
    out.finish()
}

/// Renders the `{"stats": true}` response from the live counters.
fn stats_response(
    metrics: &Metrics,
    qp: &QueryProcessor,
    shared: &SharedState,
    threads: usize,
) -> String {
    let s = metrics.snapshot();
    let mut by_strategy = ObjWriter::new();
    for (strategy, count) in &s.by_strategy {
        by_strategy.num(strategy, *count);
    }
    let mut queries = ObjWriter::new();
    queries
        .num("total", s.total())
        .num("ok", s.ok)
        .num("errors", s.errors)
        .num("budget_exceeded", s.budget_exceeded)
        .num("bounded_eliminations", s.bounded_eliminations)
        .raw("by_strategy", &by_strategy.finish());
    let mut mutations = ObjWriter::new();
    mutations
        .num("total", s.mutations + s.mutation_failures)
        .num("ok", s.mutations)
        .num("errors", s.mutation_failures)
        .num("tuples_inserted", s.mutation_inserted)
        .num("tuples_retracted", s.mutation_retracted);
    let mut latency = ObjWriter::new();
    latency
        .num("min", s.latency_min_us)
        .num("median", s.latency_median_us)
        .num("max", s.latency_max_us);
    let cache = qp.plan_cache();
    let mut plan_cache = ObjWriter::new();
    plan_cache
        .num("entries", cache.entries() as u64)
        .num("hits", cache.hits())
        .num("misses", cache.misses());
    // Planner counters: conjunctions cost-ordered, stats-less fallbacks,
    // cache entries dropped for statistics drift, and replans (a replan is
    // a compile the cache could not serve, i.e. a miss).
    let mut planner = ObjWriter::new();
    planner
        .num("plans_costed", s.plans_costed)
        .num("fallbacks", s.plan_fallbacks)
        .num("drift_invalidations", cache.drift_invalidations())
        .num("replans", cache.misses());
    // The client-visible generation is the committed *database*
    // generation (the WAL/checkpoint lineage) — comparable across the
    // primary, its replicas, and mutation acks.
    let applied = shared.gate.current();
    let mut out = ObjWriter::new();
    out.num("uptime_ms", u64::try_from(s.uptime.as_millis()).unwrap_or(u64::MAX))
        .num("threads", threads as u64)
        .num("generation", applied)
        .raw("queries", &queries.finish())
        .raw("mutations", &mutations.finish())
        .num("tuples_inserted", s.tuples_inserted)
        .num("iterations", s.iterations)
        .raw("latency_us", &latency.finish())
        .raw("plan_cache", &plan_cache.finish())
        .raw("planner", &planner.finish());
    if let Some(primary) = &shared.replica_of {
        let primary_generation = shared.primary_generation.load(Ordering::SeqCst);
        let mut replication = ObjWriter::new();
        replication
            .str("role", "replica")
            .str("primary", primary)
            .num("generation", applied)
            .num("primary_generation", primary_generation)
            .num("lag", primary_generation.saturating_sub(applied))
            .num("applied_records", shared.applied_records.load(Ordering::SeqCst));
        out.raw("replication", &replication.finish());
    } else if shared.durability.is_some() {
        let mut replication = ObjWriter::new();
        replication.str("role", "primary").num("generation", applied);
        out.raw("replication", &replication.finish());
    }
    if let Some(durability) = &shared.durability {
        let durability = durability.lock().unwrap_or_else(|e| e.into_inner());
        out.raw("durability", &durability.stats_json(qp.db().generation()));
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn processor() -> QueryProcessor {
        let mut qp = QueryProcessor::new();
        qp.load(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- perfectFor(X, Y).\n\
             friend(tom, sue). friend(sue, joe).\n\
             perfectFor(joe, widget).\n",
        )
        .unwrap();
        qp
    }

    fn worker(qp: QueryProcessor) -> Worker {
        worker_with(qp, None)
    }

    fn worker_with(qp: QueryProcessor, durability: Option<Durability>) -> Worker {
        let gate = GenerationGate::new();
        gate.publish(qp.db().generation());
        let shared = Arc::new(SharedState {
            generation: AtomicU64::new(qp.generation()),
            primary_generation: AtomicU64::new(qp.db().generation()),
            master: Mutex::new(qp.clone()),
            durability: durability.map(Mutex::new),
            gate,
            replica_of: None,
            applied_records: AtomicU64::new(0),
        });
        Worker {
            qp,
            shared,
            queue: Arc::new((Mutex::new(VecDeque::new()), Condvar::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(Metrics::new()),
            default_timeout: None,
            default_max_tuples: None,
            idle_timeout: IDLE_TIMEOUT,
            threads: 1,
        }
    }

    #[test]
    fn answers_a_query_request() {
        let mut w = worker(processor());
        let response = w.handle_request(r#"{"query": "buys(tom, Y)?"}"#);
        let v = json::parse(&response).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("strategy").and_then(Json::as_str), Some("separable"));
        assert_eq!(
            v.get("answers"),
            Some(&Json::Arr(vec![Json::Arr(vec![
                Json::Str("tom".into()),
                Json::Str("widget".into()),
            ])]))
        );
        assert!(v.get("stats").and_then(|s| s.get("iterations")).is_some());
    }

    #[test]
    fn budget_exceeded_is_structured() {
        let mut w = worker(processor());
        let response = w.handle_request(r#"{"query": "buys(tom, Y)?", "max_tuples": 0}"#);
        let v = json::parse(&response).unwrap();
        let error = v.get("error").expect("error member");
        assert_eq!(error.get("kind").and_then(Json::as_str), Some("budget_exceeded"));
        assert_eq!(error.get("resource").and_then(Json::as_str), Some("tuples"));
        // The worker stays usable afterwards.
        let ok = w.handle_request(r#"{"query": "buys(tom, Y)?"}"#);
        assert!(json::parse(&ok).unwrap().get("answers").is_some());
    }

    #[test]
    fn malformed_requests_get_bad_request() {
        let mut w = worker(processor());
        for request in ["nonsense", "{}", r#"{"query": 7}"#, r#"{"query": "t(", "x": }"#] {
            let v = json::parse(&w.handle_request(request)).unwrap();
            assert_eq!(
                v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("bad_request"),
                "request {request:?}"
            );
        }
        let v = json::parse(&w.handle_request(r#"{"query": "buys(tom"}"#)).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("parse")
        );
    }

    #[test]
    fn stats_request_reports_counters() {
        let mut w = worker(processor());
        w.handle_request(r#"{"query": "buys(tom, Y)?"}"#);
        w.handle_request(r#"{"query": "buys(tom, Y)?", "max_tuples": 0}"#);
        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        let queries = v.get("queries").expect("queries member");
        assert_eq!(queries.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(queries.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(queries.get("budget_exceeded").and_then(Json::as_u64), Some(1));
        assert_eq!(
            queries.get("by_strategy").and_then(|b| b.get("separable")).and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(queries.get("bounded_eliminations").and_then(Json::as_u64), Some(0));
        assert!(v.get("latency_us").and_then(|l| l.get("median")).is_some());
        assert!(v.get("plan_cache").is_some());
        assert!(v.get("uptime_ms").is_some());
        // Two-atom bodies have nothing to reorder, so nothing was costed —
        // but the planner counters are visible and zeroed.
        let planner = v.get("planner").expect("planner member");
        assert_eq!(planner.get("fallbacks").and_then(Json::as_u64), Some(0));
        assert_eq!(planner.get("drift_invalidations").and_then(Json::as_u64), Some(0));
        assert!(planner.get("replans").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn bounded_queries_are_counted_as_eliminations() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "t(X, Y) :- sym(X, Y), t(Y, X).\n\
             t(X, Y) :- base(X, Y).\n\
             sym(a, b). sym(b, a). base(b, a).\n",
        )
        .unwrap();
        let mut w = worker(qp);
        let v = json::parse(&w.handle_request(r#"{"query": "t(X, Y)?"}"#)).unwrap();
        assert_eq!(v.get("strategy").and_then(Json::as_str), Some("bounded"));
        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        let queries = v.get("queries").expect("queries member");
        assert_eq!(queries.get("bounded_eliminations").and_then(Json::as_u64), Some(1));
        assert_eq!(
            queries.get("by_strategy").and_then(|b| b.get("bounded")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn planner_counters_reflect_cost_based_ordering() {
        let mut qp = QueryProcessor::new();
        qp.load(
            "reach(X, Y) :- hop(X, A), hop(A, B), reach(B, Y).\n\
             reach(X, Y) :- goal(X, Y).\n\
             hop(a, b). hop(b, c). hop(c, d). goal(c, done).\n",
        )
        .unwrap();
        let mut w = worker(qp);
        let v = json::parse(&w.handle_request(r#"{"query": "reach(a, Y)?"}"#)).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        // The 3-atom recursive body was cost-ordered over real statistics:
        // at least one conjunction costed, and no stats-less fallback.
        let planner = v.get("planner").expect("planner member");
        assert!(planner.get("plans_costed").and_then(Json::as_u64).unwrap() > 0, "{planner:?}");
        assert_eq!(planner.get("fallbacks").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn mutation_request_updates_answers() {
        let mut w = worker(processor());
        let v = json::parse(&w.handle_request(r#"{"query": "buys(tom, Y)?"}"#)).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));

        let response = w.handle_request(
            r#"{"insert": ["perfectFor(sue, gift)."], "retract": ["friend(sue, joe)."]}"#,
        );
        let v = json::parse(&response).unwrap();
        assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("retracted").and_then(Json::as_u64), Some(1));
        let generation = v.get("generation").and_then(Json::as_u64).expect("generation");
        assert!(v.get("elapsed_us").is_some());
        assert!(v.get("stats").and_then(|s| s.get("tuples_inserted")).is_some());

        // tom -> sue -> gift is derivable; the joe -> widget path is gone.
        let v = json::parse(&w.handle_request(r#"{"query": "buys(tom, Y)?"}"#)).unwrap();
        assert_eq!(
            v.get("answers"),
            Some(&Json::Arr(vec![Json::Arr(vec![
                Json::Str("tom".into()),
                Json::Str("gift".into()),
            ])]))
        );

        // Stats report the mutation and the published generation.
        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        assert_eq!(v.get("generation").and_then(Json::as_u64), Some(generation));
        let mutations = v.get("mutations").expect("mutations member");
        assert_eq!(mutations.get("ok").and_then(Json::as_u64), Some(1));
        assert_eq!(mutations.get("tuples_inserted").and_then(Json::as_u64), Some(1));
        assert_eq!(mutations.get("tuples_retracted").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn another_workers_snapshot_sees_committed_mutations() {
        let mut a = worker(processor());
        let mut b = Worker {
            qp: a.shared.lock_master().clone(),
            shared: Arc::clone(&a.shared),
            queue: Arc::clone(&a.queue),
            shutdown: Arc::clone(&a.shutdown),
            metrics: Arc::clone(&a.metrics),
            default_timeout: None,
            default_max_tuples: None,
            idle_timeout: IDLE_TIMEOUT,
            threads: 1,
        };
        // Warm b's snapshot, mutate through a, then query through b: the
        // generation check must force b to re-clone.
        let v = json::parse(&b.handle_request(r#"{"query": "buys(tom, Y)?"}"#)).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        a.handle_request(r#"{"insert": ["perfectFor(joe, socks)."]}"#);
        let v = json::parse(&b.handle_request(r#"{"query": "buys(tom, Y)?"}"#)).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn failed_mutations_leave_the_database_alone() {
        let mut w = worker(processor());
        // Arity clash: friend is binary.
        let v = json::parse(&w.handle_request(r#"{"insert": ["friend(solo)."]}"#)).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
            Some("facts")
        );
        let v = json::parse(&w.handle_request(r#"{"query": "buys(tom, Y)?"}"#)).unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        assert_eq!(
            v.get("mutations").and_then(|m| m.get("errors")).and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn malformed_mutations_get_bad_request() {
        let mut w = worker(processor());
        for request in [
            r#"{"insert": "perfectFor(a, b)."}"#,
            r#"{"insert": [7]}"#,
            r#"{"retract": {"fact": "x"}}"#,
            r#"{"insert": ["p(a)."], "query": "p(X)?"}"#,
        ] {
            let v = json::parse(&w.handle_request(request)).unwrap();
            assert_eq!(
                v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("bad_request"),
                "request {request:?}"
            );
        }
    }

    #[test]
    fn invalid_budget_members_get_bad_request() {
        let mut w = worker(processor());
        for request in [
            r#"{"query": "buys(tom, Y)?", "timeout_ms": "soon"}"#,
            r#"{"query": "buys(tom, Y)?", "max_tuples": -1}"#,
            r#"{"query": "buys(tom, Y)?", "timeout_ms": 1.5}"#,
            r#"{"insert": ["perfectFor(a, b)."], "max_tuples": true}"#,
        ] {
            let v = json::parse(&w.handle_request(request)).unwrap();
            assert_eq!(
                v.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
                Some("bad_request"),
                "request {request:?}"
            );
        }
        // Valid overrides still work.
        let v =
            json::parse(&w.handle_request(r#"{"query": "buys(tom, Y)?", "timeout_ms": 10000}"#))
                .unwrap();
        assert_eq!(v.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn durable_worker_logs_commits_and_reports_stats() {
        let dir = std::env::temp_dir()
            .join(format!("sepra_server_worker_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurabilityOptions::new(dir.clone());
        let mut qp = processor();
        let durability = Durability::recover(&mut qp, &opts).unwrap();
        let mut w = worker_with(qp, Some(durability));

        let v =
            json::parse(&w.handle_request(r#"{"insert": ["perfectFor(sue, gift)."]}"#)).unwrap();
        assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(1));
        // A no-op mutation must not grow the log.
        let v =
            json::parse(&w.handle_request(r#"{"insert": ["perfectFor(sue, gift)."]}"#)).unwrap();
        assert_eq!(v.get("inserted").and_then(Json::as_u64), Some(0));

        let v = json::parse(&w.handle_request(r#"{"stats": true}"#)).unwrap();
        let durability = v.get("durability").expect("durability member");
        assert_eq!(durability.get("records_since_checkpoint").and_then(Json::as_u64), Some(1));
        assert_eq!(durability.get("fsync").and_then(Json::as_str), Some("always"));
        assert!(durability.get("wal_bytes").and_then(Json::as_u64).unwrap() > 8);
        let recovery = durability.get("recovery").expect("recovery member");
        assert_eq!(recovery.get("replayed_records").and_then(Json::as_u64), Some(0));

        // A fresh processor recovering the same dir sees the commit.
        drop(w);
        let mut fresh = processor();
        let recovered = Durability::recover(&mut fresh, &opts).unwrap();
        assert_eq!(recovered.recovery().replayed_records, 1);
    }

    #[test]
    fn lint_gate_rejects_deny_level_programs() {
        // `q` is undefined and `p` unused — warning-level diagnostics, so
        // the gate passes by default but rejects under --deny warnings.
        let mut qp = QueryProcessor::new();
        qp.load("p(X) :- q(X).\n").unwrap();
        assert!(lint_gate(&qp, false).is_ok());
        assert!(matches!(lint_gate(&qp, true), Err(ServeError::Lint(_))));
    }
}
