//! Wiring between the query service and the [`sepra_wal`] durability
//! layer.
//!
//! With `--data-dir` the server becomes crash-safe: every committed
//! mutation's *effective* delta is appended to the WAL before the new
//! snapshot generation is published (write-ahead: once a client sees the
//! acknowledgement, recovery will replay the commit), and every
//! `--checkpoint-every` records the full EDB is snapshotted so the log
//! can be truncated. Startup recovery runs before
//! [`QueryProcessor::prepare`]: the newest valid checkpoint replaces the
//! program file's facts wholesale (the snapshot is authoritative — facts
//! retracted before the checkpoint must not resurrect from the `.dl`
//! file), then the WAL tail replays through
//! [`QueryProcessor::apply_delta_mutation`], the same incremental-
//! maintenance path live mutations take. A dir with no checkpoint gets
//! one immediately after recovery (covering the program file's facts), so
//! durable state is self-contained from the first startup.
//!
//! Generation bookkeeping: WAL records and checkpoints are stamped with
//! the **database** generation (one bump per effective tuple), which is
//! the durable lineage. Recovery forces the counter to each replayed
//! stamp, so post-recovery commits continue the on-disk numbering.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use sepra_engine::QueryProcessor;
use sepra_storage::{Database, EdbDelta};
use sepra_wal::store::read_recovery;
use sepra_wal::{codec, DurableStore, FsyncPolicy, WalError};

use crate::json::ObjWriter;

/// Default for [`DurabilityOptions::checkpoint_every`].
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

/// Which snapshot body new checkpoints are written with. Readers accept
/// both regardless ([`codec::decode_snapshot_into`] sniffs the body), so
/// this only picks the *write* format: `V1` keeps a rollout's primaries
/// emitting checkpoints that pre-columnar replicas can still cold-sync
/// from; `V2` (the default) writes the columnar, memory-mappable layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointFormat {
    /// The row-major tuple-at-a-time frame.
    V1,
    /// The columnar `SEPRCOL2` frame.
    #[default]
    V2,
}

impl std::fmt::Display for CheckpointFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFormat::V1 => write!(f, "v1"),
            CheckpointFormat::V2 => write!(f, "v2"),
        }
    }
}

impl std::str::FromStr for CheckpointFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "v1" | "1" => Ok(CheckpointFormat::V1),
            "v2" | "2" => Ok(CheckpointFormat::V2),
            other => Err(format!("unknown checkpoint format '{other}' (expected v1 or v2)")),
        }
    }
}

/// Durability configuration for `sepra serve --data-dir`.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding `wal.log` and `ckpt-*.sepra` (created if absent).
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many WAL records since the last checkpoint
    /// (0 disables automatic checkpoints; the log then grows unbounded).
    pub checkpoint_every: u64,
    /// The body format for checkpoints this server writes.
    pub checkpoint_format: CheckpointFormat,
}

impl DurabilityOptions {
    /// Options for `data_dir` with default fsync (`always`), checkpoint
    /// cadence, and checkpoint format.
    pub fn new(data_dir: PathBuf) -> Self {
        DurabilityOptions {
            data_dir,
            fsync: FsyncPolicy::default(),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            checkpoint_format: CheckpointFormat::default(),
        }
    }
}

/// What startup recovery did, frozen for the lifetime of the server and
/// reported under `{"stats": true}`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Generation of the checkpoint that seeded the EDB (0 = none).
    pub checkpoint_generation: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Torn/corrupt WAL tail bytes truncated.
    pub truncated_bytes: u64,
    /// The database generation recovery ended at.
    pub recovered_generation: u64,
    /// Wall-clock time of the whole recovery.
    pub duration: Duration,
}

/// An open durability pipeline: owns the [`DurableStore`] and the
/// checkpoint cadence. Lives behind its own mutex in the server's shared
/// state; commits lock master first, then this — stats readers lock only
/// this.
#[derive(Debug)]
pub struct Durability {
    store: DurableStore,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    checkpoint_format: CheckpointFormat,
    recovery: RecoveryReport,
}

impl Durability {
    /// Opens `opts.data_dir`, recovers `qp` to the newest durable state
    /// (checkpoint + WAL replay, truncating a torn tail), and returns the
    /// pipeline ready to record commits. Call before
    /// [`QueryProcessor::prepare`] — replay is plain delta application
    /// then; support materialization happens once, after, over the
    /// recovered EDB.
    pub fn recover(qp: &mut QueryProcessor, opts: &DurabilityOptions) -> Result<Self, WalError> {
        let start = Instant::now();
        let (store, recovery) = DurableStore::open(&opts.data_dir, opts.fsync)?;
        let mut report = RecoveryReport {
            checkpoint_generation: recovery.checkpoint_generation.unwrap_or(0),
            truncated_bytes: recovery.truncated_bytes,
            ..RecoveryReport::default()
        };
        if let Some(body) = &recovery.checkpoint_body {
            // The snapshot is the whole EDB: drop the program file's
            // facts first so pre-checkpoint retractions stay retracted.
            qp.db_mut().clear_relations();
            let generation = codec::decode_snapshot_into(body, qp.db_mut())?;
            qp.db_mut().force_generation(generation);
        }
        for record in &recovery.records {
            let delta = codec::decode_delta(&record.payload, qp.db_mut().interner_mut())?;
            qp.apply_delta_mutation(delta).map_err(|e| {
                WalError::io(
                    format!("replaying WAL record at generation {}", record.generation),
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
                )
            })?;
            qp.db_mut().force_generation(record.generation);
            report.replayed_records += 1;
        }
        report.recovered_generation = qp.db().generation();
        report.duration = start.elapsed();
        let mut durability = Durability {
            store,
            fsync: opts.fsync,
            checkpoint_every: opts.checkpoint_every,
            checkpoint_format: opts.checkpoint_format,
            recovery: report,
        };
        if recovery.checkpoint_body.is_none() {
            // No checkpoint on disk (fresh dir, or every candidate was
            // corrupt): snapshot the recovered EDB now so the durable
            // state is self-contained — `sepra dump` and later recoveries
            // no longer depend on the program file for the base facts.
            durability.checkpoint(qp.db())?;
        }
        Ok(durability)
    }

    /// Records one committed mutation: appends the effective delta to the
    /// WAL (fsync per policy), then rolls a checkpoint if the cadence is
    /// due. Call **while still holding the master lock, before publishing
    /// the new generation**; on `Err` the caller must roll the master
    /// back, because the commit is not durable.
    ///
    /// Returns whether a checkpoint was written.
    pub fn record_commit(&mut self, db: &Database, delta: &EdbDelta) -> Result<bool, WalError> {
        let payload = codec::encode_delta(delta, db.interner());
        self.store.append_delta(db.generation(), &payload)?;
        if self.checkpoint_every > 0
            && self.store.records_since_checkpoint() >= self.checkpoint_every
        {
            self.checkpoint(db)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Writes a checkpoint of `db` now (in the configured body format),
    /// truncating the WAL.
    pub fn checkpoint(&mut self, db: &Database) -> Result<(), WalError> {
        let body = match self.checkpoint_format {
            CheckpointFormat::V1 => codec::encode_database(db),
            CheckpointFormat::V2 => codec::encode_database_columnar(db),
        };
        self.store.checkpoint(db.generation(), &body)
    }

    /// Flushes policy-deferred WAL writes (clean shutdown).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.store.sync()
    }

    /// The deferral window of `--fsync interval:MS`, `None` for the
    /// policies with nothing to flush in the background (`always` syncs
    /// in the commit path; `never` leaves flushing to the OS by design).
    pub fn deferred_sync_interval(&self) -> Option<Duration> {
        match self.fsync {
            FsyncPolicy::Interval(interval) => Some(interval),
            FsyncPolicy::Always | FsyncPolicy::Never => None,
        }
    }

    /// Flushes policy-deferred WAL appends if the fsync interval has
    /// elapsed. The accept loop drives this so `interval:MS` keeps its
    /// "at most one interval of acknowledged commits" loss bound even
    /// when mutations stop arriving (the deferred sync otherwise only
    /// runs on the next append).
    pub fn flush_if_stale(&mut self) -> Result<bool, WalError> {
        self.store.sync_if_stale()
    }

    /// The frozen startup-recovery report.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The replication feeder's view of this data directory: the path it
    /// streams checkpoints and the WAL tail from, plus the lease table
    /// the checkpoint pruner honors (a snapshot mid-stream to a follower
    /// is never deleted under it).
    pub fn sync_source(&self) -> sepra_repl::SyncSource {
        sepra_repl::SyncSource {
            data_dir: self.store.dir().to_path_buf(),
            leases: self.store.leases(),
        }
    }

    /// One line for the startup banner, e.g.
    /// `recovered generation 12 (checkpoint 8, replayed 4 records) in 1 ms`.
    pub fn recovery_banner(&self) -> String {
        let r = &self.recovery;
        let mut line = format!(
            "recovered generation {} (checkpoint {}, replayed {} records",
            r.recovered_generation, r.checkpoint_generation, r.replayed_records
        );
        if r.truncated_bytes > 0 {
            line.push_str(&format!(", truncated {} torn bytes", r.truncated_bytes));
        }
        line.push_str(&format!(") in {} ms", r.duration.as_millis()));
        line
    }

    /// The `"durability"` object for the `{"stats": true}` response.
    pub fn stats_json(&self, db_generation: u64) -> String {
        let mut recovery = ObjWriter::new();
        recovery
            .num("checkpoint_generation", self.recovery.checkpoint_generation)
            .num("replayed_records", self.recovery.replayed_records)
            .num("truncated_bytes", self.recovery.truncated_bytes)
            .num("recovered_generation", self.recovery.recovered_generation)
            .num(
                "duration_ms",
                u64::try_from(self.recovery.duration.as_millis()).unwrap_or(u64::MAX),
            );
        let mut out = ObjWriter::new();
        out.str("data_dir", &self.store.dir().display().to_string())
            .str("fsync", &self.fsync.to_string())
            .num("wal_bytes", self.store.wal_bytes())
            .num("records_since_checkpoint", self.store.records_since_checkpoint())
            .num("last_checkpoint_generation", self.store.last_checkpoint_generation())
            .num("checkpoint_every", self.checkpoint_every)
            .str("checkpoint_format", &self.checkpoint_format.to_string())
            .num("db_generation", db_generation)
            .raw("recovery", &recovery.finish());
        out.finish()
    }
}

/// Reads the durable EDB state of `data_dir` without touching it (no tail
/// truncation, no locks): the newest valid checkpoint with the WAL tail
/// replayed on top, as a standalone [`Database`]. `sepra dump` is built on
/// this so it can run against a live server's directory.
pub fn load_offline(data_dir: &std::path::Path) -> Result<Database, WalError> {
    let recovery = read_recovery(data_dir)?;
    let mut db = Database::new();
    if let Some(body) = &recovery.checkpoint_body {
        let generation = codec::decode_snapshot_into(body, &mut db)?;
        db.force_generation(generation);
    }
    for record in &recovery.records {
        let delta = codec::decode_delta(&record.payload, db.interner_mut())?;
        db.apply_delta(&delta).map_err(|e| {
            WalError::io(
                format!("replaying WAL record at generation {}", record.generation),
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()),
            )
        })?;
        db.force_generation(record.generation);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("sepra_server_durability_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fact_strings(db: &Database) -> Vec<String> {
        let mut facts = Vec::new();
        for (pred, relation) in db.relations() {
            let name = db.interner().resolve(pred).to_string();
            for tuple in relation.iter() {
                let args: Vec<String> =
                    tuple.values().map(|v| v.display(db.interner()).to_string()).collect();
                facts.push(format!("{name}({})", args.join(",")));
            }
        }
        facts.sort();
        facts
    }

    fn processor() -> QueryProcessor {
        let mut qp = QueryProcessor::new();
        qp.load("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).\ne(a, b). e(b, c).\n").unwrap();
        qp
    }

    #[test]
    fn commits_survive_reopen() {
        let dir = tmp_dir("reopen");
        let opts = DurabilityOptions::new(dir.clone());
        {
            let mut qp = processor();
            let mut durability = Durability::recover(&mut qp, &opts).unwrap();
            assert_eq!(durability.recovery().replayed_records, 0);
            let out = qp.apply_mutation(&["e(c, d)."], &[]).unwrap();
            durability.record_commit(qp.db(), &out.delta).unwrap();
            let out = qp.apply_mutation(&["e(d, a)."], &["e(a, b)."]).unwrap();
            durability.record_commit(qp.db(), &out.delta).unwrap();
        }
        let mut fresh = processor();
        let durability = Durability::recover(&mut fresh, &opts).unwrap();
        assert_eq!(durability.recovery().replayed_records, 2);
        let direct = {
            let mut qp = processor();
            qp.apply_mutation(&["e(c, d)."], &[]).unwrap();
            qp.apply_mutation(&["e(d, a)."], &["e(a, b)."]).unwrap();
            qp
        };
        assert_eq!(fact_strings(fresh.db()), fact_strings(direct.db()));
        assert_eq!(fresh.db().generation(), direct.db().generation());
    }

    #[test]
    fn checkpoint_replaces_program_facts() {
        let dir = tmp_dir("authoritative");
        let opts = DurabilityOptions::new(dir.clone());
        {
            let mut qp = processor();
            let mut durability = Durability::recover(&mut qp, &opts).unwrap();
            // Retract a fact that the program file will try to reload.
            let out = qp.apply_mutation(&[], &["e(a, b)."]).unwrap();
            durability.record_commit(qp.db(), &out.delta).unwrap();
            durability.checkpoint(qp.db()).unwrap();
        }
        let mut fresh = processor();
        let durability = Durability::recover(&mut fresh, &opts).unwrap();
        // The retraction held: the checkpoint is authoritative, the
        // program file's `e(a, b).` must not resurrect.
        assert!(!fact_strings(fresh.db()).contains(&"e(a,b)".to_string()));
        assert_eq!(durability.recovery().replayed_records, 0);
        assert!(durability.recovery().checkpoint_generation > 0);
    }

    #[test]
    fn cadence_rolls_checkpoints_and_bounds_replay() {
        let dir = tmp_dir("cadence");
        let mut opts = DurabilityOptions::new(dir.clone());
        opts.checkpoint_every = 2;
        {
            let mut qp = processor();
            let mut durability = Durability::recover(&mut qp, &opts).unwrap();
            let nodes = ["n1", "n2", "n3", "n4", "n5"];
            let mut checkpoints = 0;
            for (i, node) in nodes.iter().enumerate() {
                let fact = format!("e({node}, {}).", nodes[(i + 1) % nodes.len()]);
                let out = qp.apply_mutation(&[fact.as_str()], &[]).unwrap();
                if durability.record_commit(qp.db(), &out.delta).unwrap() {
                    checkpoints += 1;
                }
            }
            assert_eq!(checkpoints, 2); // 5 records, cadence 2
        }
        let mut fresh = processor();
        let durability = Durability::recover(&mut fresh, &opts).unwrap();
        // Only the records after the last checkpoint replay.
        assert_eq!(durability.recovery().replayed_records, 1);
        assert_eq!(fact_strings(fresh.db()).len(), 2 + 5);
    }

    #[test]
    fn offline_load_matches_live_recovery() {
        let dir = tmp_dir("offline");
        let opts = DurabilityOptions::new(dir.clone());
        {
            let mut qp = processor();
            let mut durability = Durability::recover(&mut qp, &opts).unwrap();
            let out = qp.apply_mutation(&["e(x, y)."], &[]).unwrap();
            durability.record_commit(qp.db(), &out.delta).unwrap();
            durability.checkpoint(qp.db()).unwrap();
            let out = qp.apply_mutation(&["e(y, z)."], &[]).unwrap();
            durability.record_commit(qp.db(), &out.delta).unwrap();
        }
        let offline = load_offline(&dir).unwrap();
        let mut live = processor();
        let _ = Durability::recover(&mut live, &opts).unwrap();
        // The offline view has no program file, so compare EDB facts only.
        assert_eq!(fact_strings(&offline), fact_strings(live.db()));
        assert_eq!(offline.generation(), live.db().generation());
    }

    #[test]
    fn both_checkpoint_formats_recover_identically() {
        // A directory checkpointed in v1 and one in v2 recover to the
        // same state — and a v1 directory reopened by a v2-writing server
        // (the rollout path) keeps working.
        let mut recovered = Vec::new();
        for format in [CheckpointFormat::V1, CheckpointFormat::V2] {
            let dir = tmp_dir(&format!("format_{format}"));
            let mut opts = DurabilityOptions::new(dir.clone());
            opts.checkpoint_format = format;
            {
                let mut qp = processor();
                let mut durability = Durability::recover(&mut qp, &opts).unwrap();
                let out = qp.apply_mutation(&["e(c, d)."], &["e(a, b)."]).unwrap();
                durability.record_commit(qp.db(), &out.delta).unwrap();
                durability.checkpoint(qp.db()).unwrap();
            }
            // Reopen with the *other* format configured: reading is
            // format-agnostic, only new checkpoints change.
            let mut reopen_opts = opts.clone();
            reopen_opts.checkpoint_format = match format {
                CheckpointFormat::V1 => CheckpointFormat::V2,
                CheckpointFormat::V2 => CheckpointFormat::V1,
            };
            let mut fresh = processor();
            let durability = Durability::recover(&mut fresh, &reopen_opts).unwrap();
            assert_eq!(durability.recovery().replayed_records, 0, "{format}");
            assert!(!fact_strings(fresh.db()).contains(&"e(a,b)".to_string()), "{format}");
            recovered.push((fact_strings(fresh.db()), fresh.db().generation()));
        }
        assert_eq!(recovered[0], recovered[1]);
    }

    #[test]
    fn missing_dir_parent_is_a_structured_error() {
        // A data dir under a *file* cannot be created.
        let base = tmp_dir("blocked");
        std::fs::create_dir_all(&base).unwrap();
        let file = base.join("occupied");
        std::fs::write(&file, b"not a directory").unwrap();
        let mut qp = processor();
        let err = Durability::recover(&mut qp, &DurabilityOptions::new(file.join("data")))
            .expect_err("creating a data dir under a file must fail");
        assert!(err.to_string().contains("creating data dir"));
    }
}
