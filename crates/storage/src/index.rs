//! Hash indexes on column subsets.
//!
//! An [`Index`] maps each distinct key (the projection of a tuple onto a
//! fixed set of columns) to the dense positions of the matching tuples in a
//! [`Relation`]. Relations grow during fixpoint evaluation, so an index
//! built earlier is brought up to date incrementally with
//! [`Index::extend_to`]; evaluators refresh indexes at iteration boundaries
//! instead of rebuilding them. Keys are assembled from the relation's
//! column slices directly, so extending an index on `k` columns of a wide
//! relation streams `k` contiguous arrays.
//!
//! Live retraction is the one mutation that invalidates dense positions:
//! [`Relation::remove_batch`] compacts storage and bumps the relation's
//! compaction epoch. `extend_to` records the epoch it last saw and
//! self-heals with a full rebuild when the epoch has moved (or the covered
//! watermark exceeds the relation — the same staleness seen from the other
//! side), so no caller can accidentally probe positions from before a
//! retraction.

use crate::hasher::FxHashMap;
use crate::relation::{Relation, Row};
use crate::value::Value;

/// A hash index of a relation on a fixed set of key columns.
#[derive(Debug, Clone)]
pub struct Index {
    /// The key columns, in key order.
    columns: Vec<usize>,
    /// Key projection → dense tuple positions (ascending).
    map: FxHashMap<Box<[Value]>, Vec<u32>>,
    /// Number of relation tuples already indexed.
    covered: usize,
    /// The relation's compaction epoch when last extended; a mismatch on
    /// the next `extend_to` forces a full rebuild.
    epoch: u64,
}

impl Index {
    /// Builds an index of `relation` on `columns`.
    pub fn build(relation: &Relation, columns: Vec<usize>) -> Self {
        let mut index = Index { columns, map: FxHashMap::default(), covered: 0, epoch: 0 };
        index.extend_to(relation);
        index
    }

    /// The key columns.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of tuples covered so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Indexes any tuples appended to `relation` since the last call. If
    /// the relation was compacted in between (its epoch moved), the index
    /// rebuilds from scratch instead of extending — stale dense positions
    /// never survive a retraction.
    ///
    /// # Panics
    /// Panics if a key column is out of range for the relation's arity.
    pub fn extend_to(&mut self, relation: &Relation) {
        if self.epoch != relation.compaction_epoch() || self.covered > relation.len() {
            self.map.clear();
            self.covered = 0;
            self.epoch = relation.compaction_epoch();
        }
        let key_cols: Vec<&[Value]> = self.columns.iter().map(|&c| relation.column(c)).collect();
        let mut scratch: Vec<Value> = Vec::with_capacity(self.columns.len());
        for pos in self.covered..relation.len() {
            let pos32 = u32::try_from(pos).expect("index overflow");
            // Build the key in the scratch buffer and only allocate a boxed
            // key the first time this projection is seen.
            scratch.clear();
            scratch.extend(key_cols.iter().map(|col| col[pos]));
            if let Some(positions) = self.map.get_mut(scratch.as_slice()) {
                positions.push(pos32);
            } else {
                self.map.insert(scratch.as_slice().into(), vec![pos32]);
            }
        }
        self.covered = relation.len();
    }

    /// The dense positions of tuples whose key columns equal `key`, among
    /// the covered prefix.
    pub fn lookup(&self, key: &[Value]) -> &[u32] {
        debug_assert_eq!(key.len(), self.columns.len());
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Iterates over the matching rows of `relation` for `key`.
    ///
    /// The relation passed must be the one the index was built over (same
    /// insertion order); only the covered prefix is consulted.
    pub fn probe<'r>(
        &'r self,
        relation: &'r Relation,
        key: &[Value],
    ) -> impl Iterator<Item = Row<'r>> + 'r {
        self.lookup(key)
            .iter()
            .map(move |&pos| relation.get(pos as usize).expect("index within relation"))
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use sepra_ast::Sym;

    fn v(n: u32) -> Value {
        Value::sym(Sym(n))
    }

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([v(a), v(b)])
    }

    fn sample() -> Relation {
        Relation::from_tuples(2, vec![t2(1, 10), t2(1, 11), t2(2, 20), t2(3, 30)])
    }

    #[test]
    fn lookup_on_first_column() {
        let r = sample();
        let idx = Index::build(&r, vec![0]);
        let hits: Vec<Tuple> = idx.probe(&r, &[v(1)]).map(|row| row.to_tuple()).collect();
        assert_eq!(hits, vec![t2(1, 10), t2(1, 11)]);
        assert!(idx.probe(&r, &[v(9)]).next().is_none());
        assert_eq!(idx.key_count(), 3);
    }

    #[test]
    fn lookup_on_second_column() {
        let r = sample();
        let idx = Index::build(&r, vec![1]);
        let hits: Vec<Tuple> = idx.probe(&r, &[v(20)]).map(|row| row.to_tuple()).collect();
        assert_eq!(hits, vec![t2(2, 20)]);
    }

    #[test]
    fn composite_key() {
        let r = sample();
        let idx = Index::build(&r, vec![0, 1]);
        assert_eq!(idx.probe(&r, &[v(1), v(11)]).count(), 1);
        assert_eq!(idx.probe(&r, &[v(1), v(20)]).count(), 0);
    }

    #[test]
    fn incremental_extension() {
        let mut r = sample();
        let mut idx = Index::build(&r, vec![0]);
        assert_eq!(idx.covered(), 4);
        r.insert(t2(1, 12));
        // Not yet visible.
        assert_eq!(idx.probe(&r, &[v(1)]).count(), 2);
        idx.extend_to(&r);
        assert_eq!(idx.covered(), 5);
        assert_eq!(idx.probe(&r, &[v(1)]).count(), 3);
    }

    #[test]
    fn empty_key_indexes_everything() {
        let r = sample();
        let idx = Index::build(&r, vec![]);
        assert_eq!(idx.probe(&r, &[]).count(), 4);
    }

    /// Regression (retraction staleness): an index extended across a
    /// `remove_batch` compaction must rebuild, not keep probing shifted
    /// dense positions.
    #[test]
    fn extension_across_compaction_rebuilds() {
        let mut r = sample();
        let mut idx = Index::build(&r, vec![0]);
        assert_eq!(idx.covered(), 4);

        // Remove the first row: every later row shifts down one position.
        assert!(r.remove(&t2(1, 10)));
        r.insert(t2(4, 40));
        idx.extend_to(&r);
        assert_eq!(idx.covered(), r.len());

        // Every key resolves to the right rows under the new positions.
        let hits: Vec<Tuple> = idx.probe(&r, &[v(1)]).map(|row| row.to_tuple()).collect();
        assert_eq!(hits, vec![t2(1, 11)]);
        assert_eq!(
            idx.probe(&r, &[v(2)]).map(|row| row.to_tuple()).collect::<Vec<_>>(),
            vec![t2(2, 20)]
        );
        assert_eq!(idx.probe(&r, &[v(4)]).count(), 1);

        // Removing everything then re-extending also heals (covered would
        // otherwise exceed the relation).
        let rest: Vec<Tuple> = r.iter().map(|row| row.to_tuple()).collect();
        r.remove_batch(&rest);
        idx.extend_to(&r);
        assert_eq!(idx.covered(), 0);
        assert_eq!(idx.key_count(), 0);
    }
}
