//! Evaluation statistics — the paper's cost metric.
//!
//! Section 4 of the paper compares algorithms by *the size of the relations
//! generated in the course of answering a query* (Definition 4.2): an
//! algorithm is `O(f(n))` on a query if every relation it constructs has
//! size `O(f(n))`, and `Ω(f(n))` if some constructed relation reaches that
//! size. [`EvalStats`] records exactly this: the peak size of every working
//! relation an evaluator materializes (`carry`/`seen`/`ans` for Separable,
//! `magic`/`t` for Magic Sets, `count`/`t` for Counting), plus iteration and
//! insertion counters useful for sanity checks and benchmarks.

use std::collections::BTreeMap;

/// Statistics collected by an evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Peak size of each working relation, by display name.
    pub relation_sizes: BTreeMap<String, usize>,
    /// Total successful tuple insertions across all working relations
    /// (deduplicated inserts).
    pub tuples_inserted: usize,
    /// Total insertion attempts (including duplicates) — a proxy for work
    /// performed by joins.
    pub insert_attempts: usize,
    /// Number of fixpoint iterations executed (across all loops).
    pub iterations: usize,
    /// Total tuples considered by scans and index probes — the join-work
    /// metric (used by the supplementary-magic ablation, where work moves
    /// from re-computation to materialization).
    pub rows_scanned: usize,
    /// Conjunctions ordered by the cost-based planner during this run
    /// (includes the fallback orderings below).
    pub plans_costed: usize,
    /// Conjunctions the planner had to order with the static bound-first
    /// heuristic because no relation statistics were available.
    pub plan_fallbacks: usize,
}

impl EvalStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `name` reached `size` tuples (keeps the maximum).
    pub fn record_size(&mut self, name: &str, size: usize) {
        let entry = self.relation_sizes.entry(name.to_string()).or_insert(0);
        *entry = (*entry).max(size);
    }

    /// Records the outcome of an insertion attempt.
    pub fn record_insert(&mut self, was_new: bool) {
        self.insert_attempts += 1;
        if was_new {
            self.tuples_inserted += 1;
        }
    }

    /// Records `count` insertion attempts of which `new` were new.
    pub fn record_inserts(&mut self, attempts: usize, new: usize) {
        self.insert_attempts += attempts;
        self.tuples_inserted += new;
    }

    /// Records one fixpoint iteration.
    pub fn record_iteration(&mut self) {
        self.iterations += 1;
    }

    /// Records tuples considered by scans/probes.
    pub fn record_scanned(&mut self, rows: usize) {
        self.rows_scanned += rows;
    }

    /// The largest relation constructed — the paper's headline number.
    pub fn max_relation_size(&self) -> usize {
        self.relation_sizes.values().copied().max().unwrap_or(0)
    }

    /// Sum of the peak sizes of all working relations.
    pub fn total_relation_size(&self) -> usize {
        self.relation_sizes.values().sum()
    }

    /// Merges another run's statistics into this one (sizes take maxima,
    /// counters add). Used when a query decomposes into a union of full
    /// selections (Lemma 2.1).
    pub fn merge(&mut self, other: &EvalStats) {
        for (name, &size) in &other.relation_sizes {
            self.record_size(name, size);
        }
        self.tuples_inserted += other.tuples_inserted;
        self.insert_attempts += other.insert_attempts;
        self.iterations += other.iterations;
        self.rows_scanned += other.rows_scanned;
        self.plans_costed += other.plans_costed;
        self.plan_fallbacks += other.plan_fallbacks;
    }
}

impl std::fmt::Display for EvalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "max relation {} | total {} | inserted {} / attempts {} | iterations {}",
            self.max_relation_size(),
            self.total_relation_size(),
            self.tuples_inserted,
            self.insert_attempts,
            self.iterations
        )?;
        for (name, size) in &self.relation_sizes {
            writeln!(f, "  {name}: {size}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_size_keeps_max() {
        let mut s = EvalStats::new();
        s.record_size("carry_1", 5);
        s.record_size("carry_1", 3);
        s.record_size("carry_1", 9);
        assert_eq!(s.relation_sizes["carry_1"], 9);
        assert_eq!(s.max_relation_size(), 9);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = EvalStats::new();
        s.record_insert(true);
        s.record_insert(false);
        s.record_inserts(10, 4);
        assert_eq!(s.tuples_inserted, 5);
        assert_eq!(s.insert_attempts, 12);
        s.record_iteration();
        s.record_iteration();
        assert_eq!(s.iterations, 2);
    }

    #[test]
    fn merge_takes_max_sizes_and_sums_counters() {
        let mut a = EvalStats::new();
        a.record_size("seen_1", 10);
        a.record_inserts(5, 5);
        let mut b = EvalStats::new();
        b.record_size("seen_1", 7);
        b.record_size("seen_2", 3);
        b.record_inserts(4, 2);
        b.record_iteration();
        a.merge(&b);
        assert_eq!(a.relation_sizes["seen_1"], 10);
        assert_eq!(a.relation_sizes["seen_2"], 3);
        assert_eq!(a.tuples_inserted, 7);
        assert_eq!(a.iterations, 1);
        assert_eq!(a.total_relation_size(), 13);
    }
}
