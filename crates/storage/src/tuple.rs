//! Fixed-arity tuples of values.

use std::fmt;
use std::ops::Deref;

use sepra_ast::Interner;

use crate::value::Value;

/// An immutable tuple of [`Value`]s.
///
/// Tuples are boxed slices: two words on the stack, one allocation, cheap to
/// hash and compare. Zero-arity tuples (for propositional predicates) are
/// legal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl Into<Box<[Value]>>) -> Self {
        Tuple(values.into())
    }

    /// The empty (zero-arity) tuple.
    pub fn unit() -> Self {
        Tuple(Box::new([]))
    }

    /// The arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects onto `columns` (0-based, may repeat or reorder).
    ///
    /// # Panics
    /// Panics if any column is out of range.
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple(columns.iter().map(|&c| self.0[c]).collect())
    }

    /// Projects onto `columns` into a caller-provided buffer, clearing it
    /// first. Probe loops reuse one buffer across tuples so per-probe key
    /// construction allocates nothing.
    ///
    /// # Panics
    /// Panics if any column is out of range.
    #[inline]
    pub fn project_into(&self, columns: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(columns.iter().map(|&c| self.0[c]));
    }

    /// Renders the tuple, e.g. `(tom, 3)`.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayTuple<'a> {
        DisplayTuple { tuple: self, interner }
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(v: [Value; N]) -> Self {
        Tuple(Box::new(v))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

/// Display adapter for [`Tuple`].
pub struct DisplayTuple<'a> {
    tuple: &'a Tuple,
    interner: &'a Interner,
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.tuple.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.display(self.interner))?;
        }
        write!(f, ")")
    }
}

/// Display adapter for an owned value sequence — the borrowed-row
/// counterpart of [`DisplayTuple`] (see `Row::display`), rendering the
/// same `(a, b)` form.
pub struct DisplayValues<'a> {
    values: Vec<Value>,
    interner: &'a Interner,
}

impl<'a> DisplayValues<'a> {
    /// Wraps `values` for display with `interner`.
    pub fn new(values: Vec<Value>, interner: &'a Interner) -> Self {
        DisplayValues { values, interner }
    }
}

impl fmt::Display for DisplayValues<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", v.display(self.interner))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;

    fn v(n: u32) -> Value {
        Value::sym(Sym(n))
    }

    #[test]
    fn construction_and_access() {
        let t = Tuple::from(vec![v(1), v(2), v(3)]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], v(2));
        assert_eq!(Tuple::unit().arity(), 0);
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = Tuple::from([v(10), v(20), v(30)]);
        assert_eq!(t.project(&[2, 0]), Tuple::from([v(30), v(10)]));
        assert_eq!(t.project(&[1, 1]), Tuple::from([v(20), v(20)]));
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = Tuple::from([v(1), v(2)]);
        let b = Tuple::from(vec![v(1), v(2)]);
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn display() {
        let mut i = Interner::new();
        let tom = i.intern("tom");
        let t = Tuple::from([Value::sym(tom), Value::int(5).unwrap()]);
        assert_eq!(t.display(&i).to_string(), "(tom, 5)");
    }
}
