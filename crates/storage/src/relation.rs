//! Deduplicating, insertion-ordered relations with columnar storage.
//!
//! [`Relation`] is the workhorse of every evaluator in this workspace. It
//! stores tuples densely in insertion order (so semi-naive deltas are just
//! index ranges) and deduplicates through a private open-addressing table of
//! indexes into the dense storage. The dense storage is **columnar**: one
//! `Vec<Value>` per column (struct-of-arrays), so a join that touches two
//! columns of a wide relation streams two contiguous arrays instead of
//! hopping across per-tuple allocations, and checkpointing can write whole
//! columns as fixed-width word runs. Row identity (the dense index), the
//! cached row hashes, and the probe table are unchanged from the row-store
//! layout, so positional delta frontiers keep working.
//!
//! Rows are read through the borrowed [`Row`] view (`row[c]` indexes a
//! column, [`Row::to_tuple`] materializes an owned [`Tuple`]). Fixpoint
//! evaluation only ever adds; removal exists solely for live EDB retraction
//! ([`Relation::remove_batch`]), compacts the dense storage, and bumps the
//! relation's **compaction epoch** — any holder of positional state (an
//! [`Index`](crate::Index)'s covered watermark, a `since` frontier) must
//! reset when the epoch changes, because dense indices have shifted.

use std::fmt;

use sepra_ast::Interner;

use crate::hasher::hash_word_iter;
use crate::relstats::RelStats;
use crate::tuple::Tuple;
use crate::value::Value;

const EMPTY: u32 = u32::MAX;
/// Grow when the table is 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// A set of same-arity tuples with O(1) membership and stable insertion
/// order, stored column-major.
///
/// ```
/// use sepra_ast::Sym;
/// use sepra_storage::{Relation, Tuple, Value};
///
/// let mut rel = Relation::new(2);
/// let t = Tuple::from([Value::sym(Sym(1)), Value::sym(Sym(2))]);
/// assert!(rel.insert(t.clone()));  // new
/// assert!(!rel.insert(t.clone())); // duplicate
/// assert!(rel.contains(&t));
/// assert_eq!(rel.len(), 1);
/// assert_eq!(rel.column(0), &[Value::sym(Sym(1))]);
/// ```
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    /// Column-major dense storage: `cols[c][i]` is column `c` of row `i`.
    /// `cols.len() == arity` (zero-arity relations have no columns; the row
    /// count lives in `hashes`).
    cols: Box<[Vec<Value>]>,
    /// Cached row hashes, parallel to the columns, so growing the table and
    /// probing long collision chains never re-hash a stored row.
    hashes: Vec<u64>,
    /// Open-addressing table of dense row indexes; length is a power of
    /// two, `EMPTY` marks free slots.
    table: Vec<u32>,
    /// Bumped whenever compaction shifts dense indices (an effective
    /// [`Relation::remove_batch`]). Positional state captured before a
    /// different epoch is stale.
    epoch: u64,
    /// Maintained cardinality/distinct-count statistics, enabled only for
    /// EDB relations (see [`Relation::with_stats`]). Working relations of
    /// fixpoint loops leave this `None`: they churn millions of tuples and
    /// the planner never consults them.
    stats: Option<Box<RelStats>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            cols: vec![Vec::new(); arity].into_boxed_slice(),
            hashes: Vec::new(),
            table: vec![EMPTY; 8],
            epoch: 0,
            stats: None,
        }
    }

    /// Creates an empty relation that maintains [`RelStats`] across every
    /// insert and removal. [`Database`](crate::Database) creates all of its
    /// relations this way, so EDB statistics are always fresh.
    pub fn with_stats(arity: usize) -> Self {
        let mut r = Relation::new(arity);
        r.stats = Some(Box::new(RelStats::new(arity)));
        r
    }

    /// Creates an empty relation sized for roughly `capacity` tuples.
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        let slots = (capacity * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        Relation {
            arity,
            cols: (0..arity).map(|_| Vec::with_capacity(capacity)).collect(),
            hashes: Vec::with_capacity(capacity),
            table: vec![EMPTY; slots],
            epoch: 0,
            stats: None,
        }
    }

    /// Builds a relation directly from its columns (all the same length;
    /// zero-arity relations pass `rows` explicitly since they have no
    /// columns). Duplicate rows are dropped, keeping the first occurrence —
    /// input from our own snapshot writer is duplicate-free, but a hostile
    /// or corrupt checkpoint must not corrupt the probe table. Returns the
    /// relation and how many duplicate rows were dropped.
    ///
    /// This is the bulk-load path for columnar checkpoints: when the input
    /// is duplicate-free (the common case) the column vectors are adopted
    /// wholesale — no per-tuple allocation or copy.
    ///
    /// # Panics
    /// Panics if the columns disagree on length or their count differs from
    /// `arity`.
    pub fn from_columns(
        arity: usize,
        columns: Vec<Vec<Value>>,
        rows: usize,
        with_stats: bool,
    ) -> (Self, usize) {
        assert_eq!(columns.len(), arity, "column count does not match arity");
        for col in &columns {
            assert_eq!(col.len(), rows, "columns disagree on row count");
        }
        let slots = (rows * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        let mut table = vec![EMPTY; slots];
        let mut hashes = Vec::with_capacity(rows);
        let mask = slots - 1;
        let mut dup_rows: Vec<usize> = Vec::new();
        for i in 0..rows {
            let hash = hash_word_iter(arity, columns.iter().map(|c| c[i].raw()));
            let mut slot = (hash as usize) & mask;
            let dup = loop {
                match table[slot] {
                    EMPTY => {
                        table[slot] = u32::try_from(hashes.len()).expect("relation overflow");
                        break false;
                    }
                    idx if hashes[idx as usize] == hash
                        && columns.iter().all(|c| c[idx as usize] == c[i]) =>
                    {
                        break true
                    }
                    _ => slot = (slot + 1) & mask,
                }
            };
            if dup {
                dup_rows.push(i);
            } else {
                hashes.push(hash);
            }
        }
        let cols: Box<[Vec<Value>]> = if dup_rows.is_empty() {
            columns.into_boxed_slice()
        } else {
            // Rare (hostile input): filter the duplicates out column-wise.
            // The probe table above indexed rows by their *deduplicated*
            // position, so it is already consistent with the filtered
            // columns.
            let mut doomed = vec![false; rows];
            for &i in &dup_rows {
                doomed[i] = true;
            }
            columns
                .into_iter()
                .map(|col| {
                    col.into_iter().zip(&doomed).filter(|(_, &d)| !d).map(|(v, _)| v).collect()
                })
                .collect()
        };
        let mut r = Relation { arity, cols, hashes, table, epoch: 0, stats: None };
        if with_stats {
            r.stats = Some(Box::new(r.rebuild_stats()));
        }
        (r, dup_rows.len())
    }

    /// The maintained statistics, if this relation was created with
    /// [`Relation::with_stats`] (or inherited them through
    /// [`Relation::slice_range`] / the bulk union path).
    pub fn stats(&self) -> Option<&RelStats> {
        self.stats.as_deref()
    }

    /// Ensures maintained statistics exist, rebuilding them from the
    /// stored rows if absent. Bulk-load paths use this to promote a
    /// stats-less relation before installing it into a
    /// [`Database`](crate::Database).
    pub fn ensure_stats(&mut self) {
        if self.stats.is_none() {
            self.stats = Some(Box::new(self.rebuild_stats()));
        }
    }

    /// The arity every tuple must have.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// One dense column, in insertion order. `column(c)[i]` is row `i`'s
    /// value in column `c`.
    ///
    /// # Panics
    /// Panics if `c >= arity`.
    #[inline]
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// The compaction epoch: bumped every time removal shifts dense row
    /// indices. Positional state (index watermarks, `since` frontiers)
    /// captured under an older epoch is stale and must be rebuilt.
    #[inline]
    pub fn compaction_epoch(&self) -> u64 {
        self.epoch
    }

    #[inline]
    fn row_eq_values(&self, idx: usize, values: &[Value]) -> bool {
        self.cols.iter().zip(values).all(|(col, v)| col[idx] == *v)
    }

    fn rebuild_stats(&self) -> RelStats {
        let mut s = RelStats::new(self.arity);
        for idx in 0..self.len() {
            s.on_insert(self.cols.iter().map(|c| c[idx]));
        }
        s
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        self.insert_row(&tuple)
    }

    /// Inserts one row given as a value slice (the allocation-free twin of
    /// [`Relation::insert`] — evaluator inner loops emit straight from
    /// their slot buffers). Returns `true` if the row was new.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the relation's arity.
    pub fn insert_row(&mut self, values: &[Value]) -> bool {
        assert_eq!(
            values.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            values.len(),
            self.arity
        );
        let hash = hash_word_iter(values.len(), values.iter().map(|v| v.raw()));
        self.insert_hashed(values, hash)
    }

    /// Insert with a precomputed hash (bulk paths reuse cached hashes).
    fn insert_hashed(&mut self, values: &[Value], hash: u64) -> bool {
        if self.hashes.len() + 1 > self.table.len() * LOAD_NUM / LOAD_DEN {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => {
                    let idx = u32::try_from(self.hashes.len()).expect("relation overflow");
                    self.table[slot] = idx;
                    if let Some(stats) = &mut self.stats {
                        stats.on_insert(values.iter().copied());
                    }
                    for (col, &v) in self.cols.iter_mut().zip(values) {
                        col.push(v);
                    }
                    self.hashes.push(hash);
                    return true;
                }
                idx if self.hashes[idx as usize] == hash
                    && self.row_eq_values(idx as usize, values) =>
                {
                    return false
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Builds a new relation from a contiguous range of this relation's
    /// rows, in order.
    ///
    /// Because ranges of a deduplicated relation are themselves
    /// duplicate-free, the copy reuses the cached hashes and rebuilds the
    /// table by pure slot insertion — no row is re-hashed or compared.
    /// Parallel evaluators use this to cut a delta into worker shards.
    ///
    /// If this relation maintains [`RelStats`], the slice gets *rebuilt*
    /// stats covering exactly its rows (linear in the slice — shard deltas
    /// are stats-less, so the hot parallel path never pays this).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice_range(&self, range: std::ops::Range<usize>) -> Relation {
        let cols: Box<[Vec<Value>]> =
            self.cols.iter().map(|col| col[range.clone()].to_vec()).collect();
        let hashes: Vec<u64> = self.hashes[range].to_vec();
        let slots = (hashes.len() * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        let mut table = vec![EMPTY; slots];
        let mask = slots - 1;
        for (i, &hash) in hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = u32::try_from(i).expect("relation overflow");
        }
        let mut sliced = Relation { arity: self.arity, cols, hashes, table, epoch: 0, stats: None };
        if self.stats.is_some() {
            sliced.stats = Some(Box::new(sliced.rebuild_stats()));
        }
        sliced
    }

    /// Whether `tuple` is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.find(tuple).is_some()
    }

    /// Whether the row given as a value slice is present (the
    /// allocation-free twin of [`Relation::contains`] — negation checks
    /// probe straight from the evaluator's slot buffers). A slice of the
    /// wrong arity is simply absent.
    pub fn contains_values(&self, values: &[Value]) -> bool {
        if values.len() != self.arity {
            return false;
        }
        let hash = hash_word_iter(values.len(), values.iter().map(|v| v.raw()));
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return false,
                idx if self.hashes[idx as usize] == hash
                    && self.row_eq_values(idx as usize, values) =>
                {
                    return true
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Whether the row viewed by `row` (possibly of another relation) is
    /// present, reusing the row's cached hash.
    pub fn contains_row(&self, row: Row<'_>) -> bool {
        self.contains_row_of(row.rel, row.idx)
    }

    /// Inserts the row viewed by `row` (possibly of another relation),
    /// reusing its cached hash. Returns `true` if the row was new.
    ///
    /// # Panics
    /// Panics if the row's arity differs from the relation's.
    pub fn insert_from(&mut self, row: Row<'_>) -> bool {
        assert_eq!(
            row.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            row.arity(),
            self.arity
        );
        let values = row.to_vec();
        self.insert_hashed(&values, row.rel.hashes[row.idx])
    }

    /// Whether the row at `idx` of `other` is present in `self` (no
    /// materialization; reuses `other`'s cached hash).
    fn contains_row_of(&self, other: &Relation, idx: usize) -> bool {
        if other.arity != self.arity {
            return false;
        }
        let hash = other.hashes[idx];
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return false,
                i if self.hashes[i as usize] == hash
                    && self
                        .cols
                        .iter()
                        .zip(other.cols.iter())
                        .all(|(a, b)| a[i as usize] == b[idx]) =>
                {
                    return true
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Removes one tuple, returning `true` if it was present.
    ///
    /// Remaining tuples keep their relative insertion order. Removal
    /// compacts the dense storage and rebuilds the probe table, so batch
    /// retraction should go through [`Relation::remove_batch`], which pays
    /// the rebuild once.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.remove_batch(std::slice::from_ref(tuple)) == 1
    }

    /// Removes every listed tuple (duplicates and absent tuples are
    /// ignored), returning how many were actually removed. Remaining
    /// tuples keep their relative insertion order; the probe table is
    /// rebuilt once and the compaction epoch is bumped (dense indices have
    /// shifted — positional frontiers and index watermarks are now stale).
    pub fn remove_batch(&mut self, tuples: &[Tuple]) -> usize {
        let mut doomed = vec![false; self.len()];
        let mut removed = 0;
        for t in tuples {
            if let Some(idx) = self.find(t) {
                if !doomed[idx] {
                    doomed[idx] = true;
                    removed += 1;
                }
            }
        }
        if removed == 0 {
            return 0;
        }
        if let Some(stats) = self.stats.take() {
            let mut stats = stats;
            for (idx, &d) in doomed.iter().enumerate() {
                if d {
                    stats.on_remove(self.cols.iter().map(|c| c[idx]));
                }
            }
            self.stats = Some(stats);
        }
        for col in self.cols.iter_mut() {
            let mut write = 0;
            for (read, &dead) in doomed.iter().enumerate() {
                if !dead {
                    col[write] = col[read];
                    write += 1;
                }
            }
            col.truncate(write);
        }
        let mut write = 0;
        for (read, &dead) in doomed.iter().enumerate() {
            if !dead {
                self.hashes[write] = self.hashes[read];
                write += 1;
            }
        }
        self.hashes.truncate(write);
        let slots = (write * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        self.table = vec![EMPTY; slots];
        let mask = slots - 1;
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = u32::try_from(i).expect("relation overflow");
        }
        self.epoch += 1;
        removed
    }

    /// The dense index of `tuple`, if present.
    fn find(&self, tuple: &Tuple) -> Option<usize> {
        if tuple.arity() != self.arity {
            return None;
        }
        let values: &[Value] = tuple;
        let hash = hash_word_iter(values.len(), values.iter().map(|v| v.raw()));
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                idx if self.hashes[idx as usize] == hash
                    && self.row_eq_values(idx as usize, values) =>
                {
                    return Some(idx as usize)
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(8);
        let mut table = vec![EMPTY; new_len];
        let mask = new_len - 1;
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = u32::try_from(i).expect("relation overflow");
        }
        self.table = table;
    }

    /// Iterates over the rows in insertion order.
    pub fn iter(&self) -> Rows<'_> {
        Rows { rel: self, next: 0, end: self.len() }
    }

    /// The rows inserted at or after position `from` — a semi-naive delta
    /// frontier.
    ///
    /// Positional frontiers are only meaningful within one compaction
    /// epoch: after [`Relation::remove_batch`] dense indices shift, so a
    /// `from` captured before the removal no longer names the rows it did.
    /// Debug builds assert `from <= len` to catch exactly that staleness
    /// (a frontier past the end after compaction); release builds saturate
    /// to an empty frontier rather than panic.
    pub fn since(&self, from: usize) -> Rows<'_> {
        debug_assert!(
            from <= self.len(),
            "stale delta frontier: since({from}) on a relation of {} rows — was the frontier \
             captured before a remove_batch compaction (epoch {})?",
            self.len(),
            self.epoch
        );
        Rows { rel: self, next: from.min(self.len()), end: self.len() }
    }

    /// The row at dense position `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<Row<'_>> {
        (idx < self.len()).then_some(Row { rel: self, idx })
    }

    /// The row at dense position `idx`, without the bounds check wrapper.
    ///
    /// # Panics
    /// Panics (on column access) if `idx` is out of bounds.
    #[inline]
    pub fn row(&self, idx: usize) -> Row<'_> {
        Row { rel: self, idx }
    }

    /// Inserts every tuple of `other` (arity must match), returning how
    /// many were new.
    ///
    /// Unioning into an **empty** relation is a bulk copy: the columns,
    /// cached hashes, and probe table are cloned wholesale instead of
    /// probing tuple by tuple. Snapshot adoption and recovery paths hit
    /// this case with millions of rows.
    pub fn union_in_place(&mut self, other: &Relation) -> usize {
        assert_eq!(
            other.arity, self.arity,
            "union arity {} does not match relation arity {}",
            other.arity, self.arity
        );
        if self.is_empty() && !other.is_empty() {
            self.cols = other.cols.clone();
            self.hashes = other.hashes.clone();
            self.table = other.table.clone();
            if self.stats.is_some() {
                self.stats = Some(Box::new(match &other.stats {
                    Some(s) => (**s).clone(),
                    None => other.rebuild_stats(),
                }));
            }
            return other.len();
        }
        let mut added = 0;
        let mut scratch: Vec<Value> = Vec::with_capacity(self.arity);
        for idx in 0..other.len() {
            scratch.clear();
            scratch.extend(other.cols.iter().map(|c| c[idx]));
            if self.insert_hashed(&scratch, other.hashes[idx]) {
                added += 1;
            }
        }
        added
    }

    /// Builds a relation from an iterator of tuples.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Collects the distinct values appearing anywhere in the relation.
    pub fn distinct_values(&self) -> Vec<Value> {
        let mut seen = crate::hasher::FxHashSet::default();
        let mut out = Vec::new();
        for col in self.cols.iter() {
            for &v in col {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Renders the relation as `{(a, b), (c, d)}` (insertion order).
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayRelation<'a> {
        DisplayRelation { relation: self, interner }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation").field("arity", &self.arity).field("len", &self.len()).finish()
    }
}

impl PartialEq for Relation {
    /// Set equality (order-insensitive).
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && (0..self.len()).all(|idx| other.contains_row_of(self, idx))
    }
}

impl Eq for Relation {}

impl<'a> IntoIterator for &'a Relation {
    type Item = Row<'a>;
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A borrowed view of one dense row: `row[c]` reads column `c` without
/// materializing a tuple. `Copy`, so closures pass it by value.
#[derive(Clone, Copy)]
pub struct Row<'a> {
    rel: &'a Relation,
    idx: usize,
}

impl<'a> Row<'a> {
    /// The row's arity (the relation's).
    #[inline]
    pub fn arity(&self) -> usize {
        self.rel.arity
    }

    /// The dense position of this row in its relation.
    #[inline]
    pub fn dense_index(&self) -> usize {
        self.idx
    }

    /// The row's values, left to right. Takes `self` by value (`Row` is
    /// `Copy`), so the iterator borrows the relation, not the row binding.
    #[inline]
    pub fn values(self) -> RowValues<'a> {
        RowValues { rel: self.rel, idx: self.idx, col: 0 }
    }

    /// Materializes the row as an owned [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        Tuple::from(self.to_vec())
    }

    /// The row's values as an owned vector.
    pub fn to_vec(&self) -> Vec<Value> {
        self.values().collect()
    }

    /// Projects the listed columns into an owned [`Tuple`].
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple::from(columns.iter().map(|&c| self[c]).collect::<Vec<Value>>())
    }

    /// Projects the listed columns into `out` (cleared first) — the
    /// allocation-free twin of [`Row::project`].
    pub fn project_into(&self, columns: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(columns.iter().map(|&c| self[c]));
    }

    /// Renders the row as `(a, b)` using `interner` for symbols.
    pub fn display(&self, interner: &'a Interner) -> crate::tuple::DisplayValues<'a> {
        crate::tuple::DisplayValues::new(self.to_vec(), interner)
    }
}

impl<'a> IntoIterator for Row<'a> {
    type Item = Value;
    type IntoIter = RowValues<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.values()
    }
}

/// Iterator over one row's values, left to right ([`Row::values`]).
#[derive(Clone)]
pub struct RowValues<'a> {
    rel: &'a Relation,
    idx: usize,
    col: usize,
}

impl Iterator for RowValues<'_> {
    type Item = Value;

    #[inline]
    fn next(&mut self) -> Option<Value> {
        let v = self.rel.cols.get(self.col)?[self.idx];
        self.col += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.rel.arity - self.col;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowValues<'_> {}

impl std::ops::Index<usize> for Row<'_> {
    type Output = Value;

    #[inline]
    fn index(&self, c: usize) -> &Value {
        &self.rel.cols[c][self.idx]
    }
}

impl fmt::Debug for Row<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values()).finish()
    }
}

impl PartialEq for Row<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.arity() == other.arity() && self.values().eq(other.values())
    }
}

impl Eq for Row<'_> {}

impl PartialEq<Tuple> for Row<'_> {
    fn eq(&self, other: &Tuple) -> bool {
        self.arity() == other.arity() && self.values().eq(other.values().iter().copied())
    }
}

impl PartialEq<Row<'_>> for Tuple {
    fn eq(&self, other: &Row<'_>) -> bool {
        other == self
    }
}

/// Iterator over a relation's rows ([`Relation::iter`] /
/// [`Relation::since`]), yielding [`Row`] views in insertion order.
#[derive(Clone)]
pub struct Rows<'a> {
    rel: &'a Relation,
    next: usize,
    end: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = Row<'a>;

    #[inline]
    fn next(&mut self) -> Option<Row<'a>> {
        if self.next >= self.end {
            return None;
        }
        let row = Row { rel: self.rel, idx: self.next };
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl<'a> DoubleEndedIterator for Rows<'a> {
    fn next_back(&mut self) -> Option<Row<'a>> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        Some(Row { rel: self.rel, idx: self.end })
    }
}

/// Display adapter for [`Relation`].
pub struct DisplayRelation<'a> {
    relation: &'a Relation,
    interner: &'a Interner,
}

impl fmt::Display for DisplayRelation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.relation.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.display(self.interner))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t2(1, 2)));
        assert!(!r.insert(t2(1, 2)));
        assert!(r.insert(t2(2, 1)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t2(1, 2)));
        assert!(!r.contains(&t2(9, 9)));
    }

    #[test]
    fn insertion_order_is_stable() {
        let mut r = Relation::new(2);
        let tuples: Vec<Tuple> = (0..100).map(|i| t2(i, i + 1)).collect();
        for t in &tuples {
            r.insert(t.clone());
        }
        let collected: Vec<Tuple> = r.iter().map(|row| row.to_tuple()).collect();
        assert_eq!(collected, tuples);
    }

    #[test]
    fn columns_are_contiguous_and_ordered() {
        let mut r = Relation::new(2);
        for i in 0..10 {
            r.insert(t2(i, i + 100));
        }
        let left: Vec<u32> = r.column(0).iter().map(|v| v.as_sym().unwrap().0).collect();
        let right: Vec<u32> = r.column(1).iter().map(|v| v.as_sym().unwrap().0).collect();
        assert_eq!(left, (0..10).collect::<Vec<u32>>());
        assert_eq!(right, (100..110).collect::<Vec<u32>>());
        assert_eq!(r.row(3)[1], Value::sym(Sym(103)));
    }

    #[test]
    fn growth_preserves_contents() {
        let mut r = Relation::new(2);
        for i in 0..10_000 {
            r.insert(t2(i, i * 7));
        }
        assert_eq!(r.len(), 10_000);
        for i in 0..10_000 {
            assert!(r.contains(&t2(i, i * 7)), "missing tuple {i}");
        }
        assert!(!r.contains(&t2(10_000, 70_000)));
    }

    #[test]
    fn delta_slices() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 1));
        r.insert(t2(2, 2));
        let mark = r.len();
        r.insert(t2(2, 2)); // duplicate, no growth
        r.insert(t2(3, 3));
        let delta: Vec<Tuple> = r.since(mark).map(|row| row.to_tuple()).collect();
        assert_eq!(delta, vec![t2(3, 3)]);
        assert_eq!(r.since(r.len()).len(), 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "stale delta frontier"))]
    fn stale_frontier_is_caught_in_debug() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 1));
        // A frontier past the end: in debug builds this asserts (the only
        // way to get here is holding a position across a compaction); in
        // release builds it saturates to empty.
        assert_eq!(r.since(99).len(), 0);
    }

    #[test]
    fn compaction_bumps_the_epoch() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 1));
        r.insert(t2(2, 2));
        assert_eq!(r.compaction_epoch(), 0);
        r.remove(&t2(9, 9)); // ineffective: no shift, no bump
        assert_eq!(r.compaction_epoch(), 0);
        r.remove(&t2(1, 1));
        assert_eq!(r.compaction_epoch(), 1);
        // Clones and slices carry their own epoch lineage.
        assert_eq!(r.slice_range(0..1).compaction_epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from([Value::sym(Sym(1))]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = Relation::new(2);
        a.insert(t2(1, 2));
        a.insert(t2(3, 4));
        let mut b = Relation::new(2);
        b.insert(t2(3, 4));
        b.insert(t2(1, 2));
        assert_eq!(a, b);
        b.insert(t2(5, 6));
        assert_ne!(a, b);
    }

    #[test]
    fn union_in_place_counts_new() {
        let mut a = Relation::new(2);
        a.insert(t2(1, 2));
        let mut b = Relation::new(2);
        b.insert(t2(1, 2));
        b.insert(t2(3, 4));
        assert_eq!(a.union_in_place(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn union_into_empty_takes_the_bulk_path_with_parity() {
        let mut src = Relation::new(2);
        for i in 0..500 {
            src.insert(t2(i % 37, i));
        }
        // Bulk: empty destination adopts storage wholesale.
        let mut bulk = Relation::new(2);
        assert_eq!(bulk.union_in_place(&src), 500);
        // Probe-by-probe twin: pre-populate one row so the fast path is
        // skipped, then remove it again.
        let mut slow = Relation::new(2);
        slow.insert(t2(9999, 9999));
        slow.union_in_place(&src);
        slow.remove(&t2(9999, 9999));
        assert_eq!(bulk, slow);
        // The bulk copy's probe table works: membership and further
        // inserts behave identically.
        assert!(bulk.contains(&t2(3, 40)));
        assert!(!bulk.insert(t2(3, 40)));
        assert!(bulk.insert(t2(1000, 1000)));
        // A stats-maintaining destination gets exact stats from the bulk
        // path too.
        let mut with_stats = Relation::with_stats(2);
        with_stats.union_in_place(&src);
        assert_eq!(*with_stats.stats().unwrap(), src.rebuild_stats());
    }

    #[test]
    fn from_columns_adopts_clean_input_and_dedups_hostile_input() {
        let col0: Vec<Value> = (0..100).map(|i| Value::sym(Sym(i % 7))).collect();
        let col1: Vec<Value> = (0..100).map(|i| Value::sym(Sym(i))).collect();
        let (rel, dropped) = Relation::from_columns(2, vec![col0, col1], 100, true);
        assert_eq!(dropped, 0);
        assert_eq!(rel.len(), 100);
        assert!(rel.contains(&t2(3, 3)));
        assert_eq!(*rel.stats().unwrap(), rel.rebuild_stats());

        // Hostile input with duplicate rows: first occurrence wins, the
        // probe table stays consistent.
        let col0 = vec![Value::sym(Sym(1)), Value::sym(Sym(2)), Value::sym(Sym(1))];
        let col1 = vec![Value::sym(Sym(5)), Value::sym(Sym(6)), Value::sym(Sym(5))];
        let (mut rel, dropped) = Relation::from_columns(2, vec![col0, col1], 3, false);
        assert_eq!(dropped, 1);
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&t2(1, 5)));
        assert!(rel.contains(&t2(2, 6)));
        assert!(!rel.insert(t2(1, 5)));
        assert!(rel.stats().is_none());
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 2));
        r.insert(t2(2, 3));
        let vals = r.distinct_values();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn remove_preserves_order_and_membership() {
        let mut r = Relation::new(2);
        for i in 0..100 {
            r.insert(t2(i, i));
        }
        assert!(r.remove(&t2(50, 50)));
        assert!(!r.remove(&t2(50, 50))); // already gone
        assert!(!r.remove(&t2(999, 999)));
        assert_eq!(r.len(), 99);
        assert!(!r.contains(&t2(50, 50)));
        let order: Vec<u32> = r.iter().map(|t| t[0].as_sym().unwrap().0).collect();
        let expected: Vec<u32> = (0..100).filter(|&i| i != 50).collect();
        assert_eq!(order, expected);
        // Reinsertion lands at the end, as for any new tuple.
        assert!(r.insert(t2(50, 50)));
        assert_eq!(r.iter().next_back().unwrap().to_tuple(), t2(50, 50));
    }

    #[test]
    fn remove_batch_ignores_absent_and_duplicate_entries() {
        let mut r = Relation::new(2);
        for i in 0..10 {
            r.insert(t2(i, i + 1));
        }
        let doomed = vec![t2(1, 2), t2(1, 2), t2(42, 43), t2(7, 8)];
        assert_eq!(r.remove_batch(&doomed), 2);
        assert_eq!(r.len(), 8);
        assert!(!r.contains(&t2(1, 2)));
        assert!(!r.contains(&t2(7, 8)));
        assert!(r.contains(&t2(0, 1)));
        // The table still probes correctly after the rebuild.
        for i in [0u32, 2, 3, 4, 5, 6, 8, 9] {
            assert!(r.contains(&t2(i, i + 1)), "missing {i}");
        }
    }

    #[test]
    fn remove_everything_leaves_a_usable_relation() {
        let mut r = Relation::new(2);
        let all: Vec<Tuple> = (0..1000).map(|i| t2(i, i * 3)).collect();
        for t in &all {
            r.insert(t.clone());
        }
        assert_eq!(r.remove_batch(&all), 1000);
        assert!(r.is_empty());
        assert!(r.insert(t2(1, 3)));
        assert!(r.contains(&t2(1, 3)));
    }

    #[test]
    fn stats_track_inserts_and_removals_exactly() {
        let mut r = Relation::with_stats(2);
        assert_eq!(r.stats().unwrap().rows(), 0);
        for i in 0..20 {
            r.insert(t2(i % 4, i));
        }
        r.insert(t2(0, 0)); // duplicate: must not be double-counted
        let s = r.stats().unwrap();
        assert_eq!(s.rows(), 20);
        assert_eq!(s.distinct(0), 4);
        assert_eq!(s.distinct(1), 20);

        let doomed: Vec<Tuple> = (0..20).filter(|i| i % 4 == 0).map(|i| t2(0, i)).collect();
        assert_eq!(r.remove_batch(&doomed), 5);
        let s = r.stats().unwrap();
        assert_eq!(s.rows(), 15);
        assert_eq!(s.distinct(0), 3); // column value 0 is gone entirely
        assert_eq!(s.distinct(1), 15);
        // After heavy mutation the maintained stats still equal a rebuild.
        assert_eq!(*s, r.rebuild_stats());
        // Plain relations don't pay for stats.
        assert!(Relation::new(2).stats().is_none());
        assert!(Relation::new(2).slice_range(0..0).stats().is_none());
        // A slice of a stats-maintaining relation gets exact rebuilt stats
        // covering its own rows (the shard path slices stats-less deltas,
        // so it never pays for this).
        let slice = r.slice_range(0..3);
        let expected = slice.rebuild_stats();
        assert_eq!(*slice.stats().unwrap(), expected);
        assert_eq!(slice.stats().unwrap().rows(), 3);
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(r.insert(Tuple::unit()));
        assert!(!r.insert(Tuple::unit()));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().arity(), 0);
        let (bulk, dropped) = Relation::from_columns(0, vec![], 1, false);
        assert_eq!(bulk.len(), 1);
        assert_eq!(dropped, 0);
        assert_eq!(bulk, r);
    }
}
