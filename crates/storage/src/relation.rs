//! Deduplicating, insertion-ordered relations.
//!
//! [`Relation`] is the workhorse of every evaluator in this workspace. It
//! stores tuples densely in insertion order (so semi-naive deltas are just
//! index ranges) and deduplicates through a private open-addressing table of
//! indexes into the dense vector. Fixpoint evaluation only ever adds;
//! removal exists solely for live EDB retraction ([`Relation::remove_batch`])
//! and compacts the dense storage, so it must never run mid-fixpoint where
//! a delta is an index range into the old layout.

use std::fmt;

use sepra_ast::Interner;

use crate::hasher::hash_word_iter;
use crate::relstats::RelStats;
use crate::tuple::Tuple;
use crate::value::Value;

const EMPTY: u32 = u32::MAX;
/// Grow when the table is 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// A set of same-arity tuples with O(1) membership and stable insertion
/// order.
///
/// ```
/// use sepra_ast::Sym;
/// use sepra_storage::{Relation, Tuple, Value};
///
/// let mut rel = Relation::new(2);
/// let t = Tuple::from([Value::sym(Sym(1)), Value::sym(Sym(2))]);
/// assert!(rel.insert(t.clone()));  // new
/// assert!(!rel.insert(t.clone())); // duplicate
/// assert!(rel.contains(&t));
/// assert_eq!(rel.len(), 1);
/// ```
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    /// Cached tuple hashes, parallel to `tuples`, so growing the table and
    /// probing long collision chains never re-hash a stored tuple.
    hashes: Vec<u64>,
    /// Open-addressing table of indexes into `tuples`; length is a power of
    /// two, `EMPTY` marks free slots.
    table: Vec<u32>,
    /// Maintained cardinality/distinct-count statistics, enabled only for
    /// EDB relations (see [`Relation::with_stats`]). Working relations of
    /// fixpoint loops leave this `None`: they churn millions of tuples and
    /// the planner never consults them.
    stats: Option<Box<RelStats>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
            hashes: Vec::new(),
            table: vec![EMPTY; 8],
            stats: None,
        }
    }

    /// Creates an empty relation that maintains [`RelStats`] across every
    /// insert and removal. [`Database`](crate::Database) creates all of its
    /// relations this way, so EDB statistics are always fresh.
    pub fn with_stats(arity: usize) -> Self {
        let mut r = Relation::new(arity);
        r.stats = Some(Box::new(RelStats::new(arity)));
        r
    }

    /// Creates an empty relation sized for roughly `capacity` tuples.
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        let slots = (capacity * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        Relation {
            arity,
            tuples: Vec::with_capacity(capacity),
            hashes: Vec::with_capacity(capacity),
            table: vec![EMPTY; slots],
            stats: None,
        }
    }

    /// The maintained statistics, if this relation was created with
    /// [`Relation::with_stats`].
    pub fn stats(&self) -> Option<&RelStats> {
        self.stats.as_deref()
    }

    /// The arity every tuple must have.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    fn hash_tuple(t: &Tuple) -> u64 {
        // Values are transparent u64 words; hash them in place.
        hash_word_iter(t.arity(), t.values().iter().map(|v| v.raw()))
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.arity(),
            self.arity
        );
        if self.tuples.len() + 1 > self.table.len() * LOAD_NUM / LOAD_DEN {
            self.grow();
        }
        let hash = Self::hash_tuple(&tuple);
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => {
                    let idx = u32::try_from(self.tuples.len()).expect("relation overflow");
                    self.table[slot] = idx;
                    if let Some(stats) = &mut self.stats {
                        stats.on_insert(&tuple);
                    }
                    self.tuples.push(tuple);
                    self.hashes.push(hash);
                    return true;
                }
                idx if self.hashes[idx as usize] == hash && self.tuples[idx as usize] == tuple => {
                    return false
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Builds a new relation from a contiguous range of this relation's
    /// tuples, in order.
    ///
    /// Because ranges of a deduplicated relation are themselves
    /// duplicate-free, the copy reuses the cached hashes and rebuilds the
    /// table by pure slot insertion — no tuple is re-hashed or compared.
    /// Parallel evaluators use this to cut a delta into worker shards.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice_range(&self, range: std::ops::Range<usize>) -> Relation {
        let tuples: Vec<Tuple> = self.tuples[range.clone()].to_vec();
        let hashes: Vec<u64> = self.hashes[range].to_vec();
        let slots = (tuples.len() * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        let mut table = vec![EMPTY; slots];
        let mask = slots - 1;
        for (i, &hash) in hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = u32::try_from(i).expect("relation overflow");
        }
        Relation { arity: self.arity, tuples, hashes, table, stats: None }
    }

    /// Whether `tuple` is present.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.find(tuple).is_some()
    }

    /// Removes one tuple, returning `true` if it was present.
    ///
    /// Remaining tuples keep their relative insertion order. Removal
    /// compacts the dense storage and rebuilds the probe table, so batch
    /// retraction should go through [`Relation::remove_batch`], which pays
    /// the rebuild once.
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.remove_batch(std::slice::from_ref(tuple)) == 1
    }

    /// Removes every listed tuple (duplicates and absent tuples are
    /// ignored), returning how many were actually removed. Remaining
    /// tuples keep their relative insertion order; the probe table is
    /// rebuilt once.
    pub fn remove_batch(&mut self, tuples: &[Tuple]) -> usize {
        let mut doomed = crate::hasher::FxHashSet::default();
        for t in tuples {
            if let Some(idx) = self.find(t) {
                doomed.insert(idx);
            }
        }
        if doomed.is_empty() {
            return 0;
        }
        if let Some(stats) = &mut self.stats {
            for &idx in &doomed {
                stats.on_remove(&self.tuples[idx]);
            }
        }
        let mut write = 0;
        for read in 0..self.tuples.len() {
            if doomed.contains(&read) {
                continue;
            }
            if write != read {
                self.tuples.swap(write, read);
                self.hashes.swap(write, read);
            }
            write += 1;
        }
        self.tuples.truncate(write);
        self.hashes.truncate(write);
        let slots = (write * LOAD_DEN / LOAD_NUM + 1).next_power_of_two().max(8);
        self.table = vec![EMPTY; slots];
        let mask = slots - 1;
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = u32::try_from(i).expect("relation overflow");
        }
        doomed.len()
    }

    /// The dense index of `tuple`, if present.
    fn find(&self, tuple: &Tuple) -> Option<usize> {
        if tuple.arity() != self.arity {
            return None;
        }
        let hash = Self::hash_tuple(tuple);
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                idx if self.hashes[idx as usize] == hash && &self.tuples[idx as usize] == tuple => {
                    return Some(idx as usize)
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let new_len = (self.table.len() * 2).max(8);
        let mut table = vec![EMPTY; new_len];
        let mask = new_len - 1;
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            table[slot] = u32::try_from(i).expect("relation overflow");
        }
        self.table = table;
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples inserted at or after position `from` — a semi-naive delta
    /// slice.
    pub fn since(&self, from: usize) -> &[Tuple] {
        &self.tuples[from.min(self.tuples.len())..]
    }

    /// All tuples as a slice (insertion order).
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple at dense position `idx`.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx)
    }

    /// Inserts every tuple of `other` (arity must match), returning how many
    /// were new.
    pub fn union_in_place(&mut self, other: &Relation) -> usize {
        let mut added = 0;
        for t in other.iter() {
            if self.insert(t.clone()) {
                added += 1;
            }
        }
        added
    }

    /// Builds a relation from an iterator of tuples.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Collects the distinct values appearing anywhere in the relation.
    pub fn distinct_values(&self) -> Vec<Value> {
        let mut seen = crate::hasher::FxHashSet::default();
        let mut out = Vec::new();
        for t in self.iter() {
            for &v in t.values() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Renders the relation as `{(a, b), (c, d)}` (insertion order).
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayRelation<'a> {
        DisplayRelation { relation: self, interner }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.tuples.len())
            .finish()
    }
}

impl PartialEq for Relation {
    /// Set equality (order-insensitive).
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|t| other.contains(t))
    }
}

impl Eq for Relation {}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Display adapter for [`Relation`].
pub struct DisplayRelation<'a> {
    relation: &'a Relation,
    interner: &'a Interner,
}

impl fmt::Display for DisplayRelation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.relation.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.display(self.interner))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t2(1, 2)));
        assert!(!r.insert(t2(1, 2)));
        assert!(r.insert(t2(2, 1)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t2(1, 2)));
        assert!(!r.contains(&t2(9, 9)));
    }

    #[test]
    fn insertion_order_is_stable() {
        let mut r = Relation::new(2);
        let tuples: Vec<Tuple> = (0..100).map(|i| t2(i, i + 1)).collect();
        for t in &tuples {
            r.insert(t.clone());
        }
        let collected: Vec<Tuple> = r.iter().cloned().collect();
        assert_eq!(collected, tuples);
    }

    #[test]
    fn growth_preserves_contents() {
        let mut r = Relation::new(2);
        for i in 0..10_000 {
            r.insert(t2(i, i * 7));
        }
        assert_eq!(r.len(), 10_000);
        for i in 0..10_000 {
            assert!(r.contains(&t2(i, i * 7)), "missing tuple {i}");
        }
        assert!(!r.contains(&t2(10_000, 70_000)));
    }

    #[test]
    fn delta_slices() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 1));
        r.insert(t2(2, 2));
        let mark = r.len();
        r.insert(t2(2, 2)); // duplicate, no growth
        r.insert(t2(3, 3));
        assert_eq!(r.since(mark), &[t2(3, 3)]);
        assert_eq!(r.since(99).len(), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from([Value::sym(Sym(1))]));
    }

    #[test]
    fn set_equality_ignores_order() {
        let mut a = Relation::new(2);
        a.insert(t2(1, 2));
        a.insert(t2(3, 4));
        let mut b = Relation::new(2);
        b.insert(t2(3, 4));
        b.insert(t2(1, 2));
        assert_eq!(a, b);
        b.insert(t2(5, 6));
        assert_ne!(a, b);
    }

    #[test]
    fn union_in_place_counts_new() {
        let mut a = Relation::new(2);
        a.insert(t2(1, 2));
        let mut b = Relation::new(2);
        b.insert(t2(1, 2));
        b.insert(t2(3, 4));
        assert_eq!(a.union_in_place(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(2);
        r.insert(t2(1, 2));
        r.insert(t2(2, 3));
        let vals = r.distinct_values();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn remove_preserves_order_and_membership() {
        let mut r = Relation::new(2);
        for i in 0..100 {
            r.insert(t2(i, i));
        }
        assert!(r.remove(&t2(50, 50)));
        assert!(!r.remove(&t2(50, 50))); // already gone
        assert!(!r.remove(&t2(999, 999)));
        assert_eq!(r.len(), 99);
        assert!(!r.contains(&t2(50, 50)));
        let order: Vec<u32> = r.iter().map(|t| t[0].as_sym().unwrap().0).collect();
        let expected: Vec<u32> = (0..100).filter(|&i| i != 50).collect();
        assert_eq!(order, expected);
        // Reinsertion lands at the end, as for any new tuple.
        assert!(r.insert(t2(50, 50)));
        assert_eq!(r.iter().last().unwrap(), &t2(50, 50));
    }

    #[test]
    fn remove_batch_ignores_absent_and_duplicate_entries() {
        let mut r = Relation::new(2);
        for i in 0..10 {
            r.insert(t2(i, i + 1));
        }
        let doomed = vec![t2(1, 2), t2(1, 2), t2(42, 43), t2(7, 8)];
        assert_eq!(r.remove_batch(&doomed), 2);
        assert_eq!(r.len(), 8);
        assert!(!r.contains(&t2(1, 2)));
        assert!(!r.contains(&t2(7, 8)));
        assert!(r.contains(&t2(0, 1)));
        // The table still probes correctly after the rebuild.
        for i in [0u32, 2, 3, 4, 5, 6, 8, 9] {
            assert!(r.contains(&t2(i, i + 1)), "missing {i}");
        }
    }

    #[test]
    fn remove_everything_leaves_a_usable_relation() {
        let mut r = Relation::new(2);
        let all: Vec<Tuple> = (0..1000).map(|i| t2(i, i * 3)).collect();
        for t in &all {
            r.insert(t.clone());
        }
        assert_eq!(r.remove_batch(&all), 1000);
        assert!(r.is_empty());
        assert!(r.insert(t2(1, 3)));
        assert!(r.contains(&t2(1, 3)));
    }

    #[test]
    fn stats_track_inserts_and_removals_exactly() {
        let mut r = Relation::with_stats(2);
        assert_eq!(r.stats().unwrap().rows(), 0);
        for i in 0..20 {
            r.insert(t2(i % 4, i));
        }
        r.insert(t2(0, 0)); // duplicate: must not be double-counted
        let s = r.stats().unwrap();
        assert_eq!(s.rows(), 20);
        assert_eq!(s.distinct(0), 4);
        assert_eq!(s.distinct(1), 20);

        let doomed: Vec<Tuple> = (0..20).filter(|i| i % 4 == 0).map(|i| t2(0, i)).collect();
        assert_eq!(r.remove_batch(&doomed), 5);
        let s = r.stats().unwrap();
        assert_eq!(s.rows(), 15);
        assert_eq!(s.distinct(0), 3); // column value 0 is gone entirely
        assert_eq!(s.distinct(1), 15);
        // After heavy mutation the maintained stats still equal a rebuild.
        assert_eq!(*s, crate::relstats::RelStats::from_tuples(2, r.iter()));
        // Plain relations don't pay for stats.
        assert!(Relation::new(2).stats().is_none());
        assert!(r.slice_range(0..3).stats().is_none());
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(r.insert(Tuple::unit()));
        assert!(!r.insert(Tuple::unit()));
        assert_eq!(r.len(), 1);
    }
}
