//! Incrementally maintained per-relation statistics.
//!
//! [`RelStats`] tracks, for one relation, the row count and the number of
//! distinct values in every column — the two quantities the cost-based
//! join planner (`sepra-eval`'s `planner` module) needs to estimate how
//! many rows a scan produces once some of its columns are bound
//! (`rows / Π distinct(bound column)`, the classic uniform-selectivity
//! model). The counts are maintained on the relation's own mutation paths
//! at O(1) per tuple, so planning never scans the data; they are *derived*
//! state and are never persisted — recovery rebuilds them by replaying
//! inserts (see `crates/server/src/durability.rs`).

use crate::hasher::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;

/// Value-frequency histogram for one column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColStats {
    /// How many stored tuples carry each value in this column. A value is
    /// dropped when its count returns to zero, so `counts.len()` is the
    /// exact distinct count.
    counts: FxHashMap<Value, u32>,
}

impl ColStats {
    /// Exact number of distinct values currently stored in this column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// How many stored tuples carry `v` in this column.
    pub fn frequency(&self, v: Value) -> usize {
        self.counts.get(&v).copied().unwrap_or(0) as usize
    }

    fn on_insert(&mut self, v: Value) {
        *self.counts.entry(v).or_insert(0) += 1;
    }

    fn on_remove(&mut self, v: Value) {
        if let Some(c) = self.counts.get_mut(&v) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.counts.remove(&v);
            }
        }
    }
}

/// Cardinality and per-column distinct counts for one relation, updated
/// incrementally as tuples are inserted and removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelStats {
    rows: usize,
    cols: Vec<ColStats>,
}

impl RelStats {
    /// Empty statistics for a relation of the given arity.
    pub fn new(arity: usize) -> Self {
        RelStats { rows: 0, cols: vec![ColStats::default(); arity] }
    }

    /// Builds statistics from scratch by counting `tuples`. The tuples must
    /// be duplicate-free (a relation's dense storage is).
    pub fn from_tuples<'a>(arity: usize, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut s = RelStats::new(arity);
        for t in tuples {
            s.on_insert(t);
        }
        s
    }

    /// Current row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Exact distinct count of column `col` (0 when out of range).
    pub fn distinct(&self, col: usize) -> usize {
        self.cols.get(col).map_or(0, ColStats::distinct)
    }

    /// Per-column statistics.
    pub fn columns(&self) -> &[ColStats] {
        &self.cols
    }

    /// Records a newly inserted tuple (the caller has already deduplicated).
    pub fn on_insert(&mut self, tuple: &Tuple) {
        debug_assert_eq!(tuple.arity(), self.cols.len());
        self.rows += 1;
        for (col, &v) in self.cols.iter_mut().zip(tuple.values()) {
            col.on_insert(v);
        }
    }

    /// Records the removal of a previously stored tuple.
    pub fn on_remove(&mut self, tuple: &Tuple) {
        debug_assert_eq!(tuple.arity(), self.cols.len());
        self.rows = self.rows.saturating_sub(1);
        for (col, &v) in self.cols.iter_mut().zip(tuple.values()) {
            col.on_remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b))])
    }

    #[test]
    fn insert_and_remove_keep_exact_counts() {
        let mut s = RelStats::new(2);
        s.on_insert(&t2(1, 10));
        s.on_insert(&t2(2, 10));
        s.on_insert(&t2(3, 11));
        assert_eq!(s.rows(), 3);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns()[1].frequency(Value::sym(Sym(10))), 2);

        s.on_remove(&t2(2, 10));
        assert_eq!(s.rows(), 2);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.distinct(1), 2); // 10 still present via (1, 10)
        s.on_remove(&t2(1, 10));
        assert_eq!(s.distinct(1), 1); // 10 gone
    }

    #[test]
    fn from_tuples_matches_incremental_maintenance() {
        let tuples: Vec<Tuple> = (0..50).map(|i| t2(i % 7, i)).collect();
        let mut incremental = RelStats::new(2);
        for t in &tuples {
            incremental.on_insert(t);
        }
        let rebuilt = RelStats::from_tuples(2, &tuples);
        assert_eq!(incremental, rebuilt);
        assert_eq!(rebuilt.rows(), 50);
        assert_eq!(rebuilt.distinct(0), 7);
        assert_eq!(rebuilt.distinct(1), 50);
    }

    #[test]
    fn out_of_range_column_is_zero() {
        let s = RelStats::new(1);
        assert_eq!(s.distinct(5), 0);
    }
}
