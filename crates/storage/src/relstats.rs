//! Incrementally maintained per-relation statistics.
//!
//! [`RelStats`] tracks, for one relation, the row count and the number of
//! distinct values in every column — the two quantities the cost-based
//! join planner (`sepra-eval`'s `planner` module) needs to estimate how
//! many rows a scan produces once some of its columns are bound
//! (`rows / Π distinct(bound column)`, the classic uniform-selectivity
//! model). The counts are maintained on the relation's own mutation paths
//! at O(1) per tuple, so planning never scans the data; they are *derived*
//! state and are never persisted — recovery rebuilds them by replaying
//! inserts (see `crates/server/src/durability.rs`).

use crate::hasher::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;

/// Value-frequency histogram for one column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColStats {
    /// How many stored tuples carry each value in this column. A value is
    /// dropped when its count returns to zero, so `counts.len()` is the
    /// exact distinct count.
    counts: FxHashMap<Value, u32>,
}

impl ColStats {
    /// Exact number of distinct values currently stored in this column.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// How many stored tuples carry `v` in this column.
    pub fn frequency(&self, v: Value) -> usize {
        self.counts.get(&v).copied().unwrap_or(0) as usize
    }

    fn on_insert(&mut self, v: Value) {
        *self.counts.entry(v).or_insert(0) += 1;
    }

    fn on_remove(&mut self, v: Value) {
        if let Some(c) = self.counts.get_mut(&v) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.counts.remove(&v);
            }
        }
    }
}

/// Cardinality and per-column distinct counts for one relation, updated
/// incrementally as tuples are inserted and removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelStats {
    rows: usize,
    cols: Vec<ColStats>,
}

impl RelStats {
    /// Empty statistics for a relation of the given arity.
    pub fn new(arity: usize) -> Self {
        RelStats { rows: 0, cols: vec![ColStats::default(); arity] }
    }

    /// Builds statistics from scratch by counting `tuples`. The tuples must
    /// be duplicate-free (a relation's dense storage is).
    pub fn from_tuples<'a>(arity: usize, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        RelStats::from_rows(arity, tuples.into_iter().map(|t| t.values().iter().copied()))
    }

    /// Builds statistics from scratch from row value sequences — the
    /// columnar twin of [`RelStats::from_tuples`], fed straight from a
    /// relation's `Row` views without materializing tuples. Rows must be
    /// duplicate-free.
    pub fn from_rows(
        arity: usize,
        rows: impl IntoIterator<Item = impl IntoIterator<Item = Value>>,
    ) -> Self {
        let mut s = RelStats::new(arity);
        for row in rows {
            s.on_insert(row);
        }
        s
    }

    /// Current row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Exact distinct count of column `col` (0 when out of range).
    pub fn distinct(&self, col: usize) -> usize {
        self.cols.get(col).map_or(0, ColStats::distinct)
    }

    /// Per-column statistics.
    pub fn columns(&self) -> &[ColStats] {
        &self.cols
    }

    /// Records a newly inserted row (the caller has already deduplicated).
    /// Takes the row's values left to right — pass
    /// `tuple.values().iter().copied()` for an owned tuple or a `Row`'s
    /// value iterator for stored rows.
    pub fn on_insert(&mut self, values: impl IntoIterator<Item = Value>) {
        self.rows += 1;
        let mut values = values.into_iter();
        for col in self.cols.iter_mut() {
            col.on_insert(values.next().expect("row arity below stats arity"));
        }
        debug_assert!(values.next().is_none(), "row arity above stats arity");
    }

    /// Records the removal of a previously stored row (values left to
    /// right, as for [`RelStats::on_insert`]).
    pub fn on_remove(&mut self, values: impl IntoIterator<Item = Value>) {
        self.rows = self.rows.saturating_sub(1);
        let mut values = values.into_iter();
        for col in self.cols.iter_mut() {
            col.on_remove(values.next().expect("row arity below stats arity"));
        }
        debug_assert!(values.next().is_none(), "row arity above stats arity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;

    fn t2(a: u32, b: u32) -> Tuple {
        Tuple::from([Value::sym(Sym(a)), Value::sym(Sym(b))])
    }

    fn vals(t: &Tuple) -> impl Iterator<Item = Value> + '_ {
        t.values().iter().copied()
    }

    #[test]
    fn insert_and_remove_keep_exact_counts() {
        let mut s = RelStats::new(2);
        s.on_insert(vals(&t2(1, 10)));
        s.on_insert(vals(&t2(2, 10)));
        s.on_insert(vals(&t2(3, 11)));
        assert_eq!(s.rows(), 3);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 2);
        assert_eq!(s.columns()[1].frequency(Value::sym(Sym(10))), 2);

        s.on_remove(vals(&t2(2, 10)));
        assert_eq!(s.rows(), 2);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.distinct(1), 2); // 10 still present via (1, 10)
        s.on_remove(vals(&t2(1, 10)));
        assert_eq!(s.distinct(1), 1); // 10 gone
    }

    #[test]
    fn from_tuples_matches_incremental_maintenance() {
        let tuples: Vec<Tuple> = (0..50).map(|i| t2(i % 7, i)).collect();
        let mut incremental = RelStats::new(2);
        for t in &tuples {
            incremental.on_insert(vals(t));
        }
        let rebuilt = RelStats::from_tuples(2, &tuples);
        assert_eq!(incremental, rebuilt);
        assert_eq!(rebuilt.rows(), 50);
        assert_eq!(rebuilt.distinct(0), 7);
        assert_eq!(rebuilt.distinct(1), 50);
    }

    #[test]
    fn out_of_range_column_is_zero() {
        let s = RelStats::new(1);
        assert_eq!(s.distinct(5), 0);
    }
}
