//! Storage engine for the separable-recursion engine.
//!
//! This crate is the in-memory relational substrate on which every
//! evaluation algorithm in the workspace runs:
//!
//! * [`value`] — the compact [`Value`] word (interned symbol or 63-bit
//!   integer);
//! * [`mod tuple`](mod@crate::tuple) — fixed-arity tuples of values;
//! * [`hasher`] — a fast Fx-style hasher for integer-heavy keys;
//! * [`relation`] — [`Relation`], an insertion-ordered deduplicating tuple
//!   set with columnar (struct-of-arrays) dense storage behind an
//!   open-addressing probe table, read through borrowed [`Row`] views,
//!   with the delta slices needed by semi-naive evaluation;
//! * [`index`] — hash indexes on column subsets, built and extended lazily;
//! * [`database`] — the extensional database: named relations plus the
//!   shared symbol interner;
//! * [`relstats`] — per-relation cardinality and distinct-count statistics,
//!   maintained incrementally on the mutation paths, consumed by the
//!   cost-based join planner in `sepra-eval`;
//! * [`stats`] — the cost metric the paper uses to compare algorithms
//!   (sizes of the relations each algorithm constructs).

pub mod database;
pub mod hasher;
pub mod index;
pub mod relation;
pub mod relstats;
pub mod stats;
pub mod tuple;
pub mod value;

pub use database::{Database, EdbDelta};
pub use hasher::{FxBuildHasher, FxHashMap, FxHashSet};
pub use index::Index;
pub use relation::{Relation, Row, RowValues, Rows};
pub use relstats::{ColStats, RelStats};
pub use stats::EvalStats;
pub use tuple::Tuple;
pub use value::Value;
