//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! Tuple hashing is the hot path of every join and dedup in this engine, and
//! the standard library's SipHash is unnecessarily slow for short integer
//! keys. This is the Fx multiply-xor hash used by rustc (reimplemented here
//! rather than pulling in `rustc-hash`, which is not on the workspace's
//! approved dependency list). HashDoS resistance is irrelevant: all hashed
//! data is interned handles and tuple words produced by the engine itself.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a slice of `u64` words directly (used by the open-addressing
/// table in [`crate::relation`]).
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    hash_word_iter(words.len(), words.iter().copied())
}

/// Hashes `len` words streamed from an iterator, so callers whose words
/// live behind a projection (tuple values, column subsets) need no
/// intermediate buffer. `len` must equal the number of items yielded.
#[inline]
pub fn hash_word_iter(len: usize, words: impl Iterator<Item = u64>) -> u64 {
    let mut h = FxHasher::default();
    // Seed with the length so all-zero inputs of different arities differ
    // (an unseeded Fx state maps any run of zero words to zero).
    h.add_to_hash(len as u64 ^ SEED);
    for w in words {
        h.add_to_hash(w);
    }
    // Finalize: Fx's raw state is weak in its low bits for short inputs;
    // one xor-shift-multiply scramble spreads entropy before masking.
    let x = h.finish();
    let x = (x ^ (x >> 32)).wrapping_mul(0xd6e8_feb8_6659_fd93);
    x ^ (x >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_words(&[1, 2, 3]), hash_words(&[1, 2, 3]));
        assert_ne!(hash_words(&[1, 2, 3]), hash_words(&[3, 2, 1]));
        assert_ne!(hash_words(&[0]), hash_words(&[0, 0]));
    }

    #[test]
    fn iter_path_matches_slice_path() {
        let words = [7u64, 0, u64::MAX, 42];
        assert_eq!(hash_words(&words), hash_word_iter(4, words.iter().copied()));
        assert_eq!(hash_words(&[]), hash_word_iter(0, std::iter::empty()));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(7, 42);
        assert_eq!(m.get(&7), Some(&42));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn low_bits_are_spread() {
        // Sequential keys must not collide in their low bits (they are used
        // as table masks). Check a crude distribution property.
        let mut buckets = [0u32; 16];
        for i in 0..1024u64 {
            buckets[(hash_words(&[i]) & 15) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 16, "bucket badly underfull: {buckets:?}");
        }
    }

    #[test]
    fn write_bytes_path_matches_chunking() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(h1.finish(), h2.finish());
    }
}
