//! The runtime value word.
//!
//! A [`Value`] packs either an interned symbol or a signed integer into one
//! `u64`. The tag lives in the top bit:
//!
//! * `0` — a symbol: the low 32 bits are the [`Sym`] index;
//! * `1` — an integer: the low 63 bits are a sign-extended two's-complement
//!   integer in `[-2^62, 2^62)`.
//!
//! The integer space exists for the Counting baseline, whose `(I, J, K)`
//! bookkeeping columns hold path codes that grow like `(p+1)^depth` — far
//! too many distinct values to intern. Codes that leave the representable
//! range are reported as [`ValueError::IntOutOfRange`], which the Counting
//! evaluator surfaces as the paper's exponential blowup rather than silently
//! wrapping.

use std::fmt;

use sepra_ast::{Const, Interner, Sym};

const TAG_INT: u64 = 1 << 63;
/// Largest magnitude storable: integers live in `[-2^62, 2^62)`.
pub const INT_MIN: i64 = -(1 << 62);
/// Exclusive upper bound of the integer space.
pub const INT_MAX_EXCLUSIVE: i64 = 1 << 62;

/// Errors converting to/from [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueError {
    /// An integer outside `[-2^62, 2^62)`.
    IntOutOfRange(i64),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::IntOutOfRange(n) => {
                write!(f, "integer {n} is outside the representable range [-2^62, 2^62)")
            }
        }
    }
}

impl std::error::Error for ValueError {}

/// A single column value: an interned symbol or a small integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(u64);

impl Value {
    /// Wraps an interned symbol.
    #[inline]
    pub fn sym(s: Sym) -> Self {
        Value(u64::from(s.0))
    }

    /// Wraps an integer, failing outside the 63-bit range.
    #[inline]
    pub fn int(n: i64) -> Result<Self, ValueError> {
        if !(INT_MIN..INT_MAX_EXCLUSIVE).contains(&n) {
            return Err(ValueError::IntOutOfRange(n));
        }
        Ok(Value(TAG_INT | (n as u64 & !TAG_INT)))
    }

    /// Converts an AST constant.
    #[inline]
    pub fn from_const(c: Const) -> Result<Self, ValueError> {
        match c {
            Const::Sym(s) => Ok(Value::sym(s)),
            Const::Int(n) => Value::int(n),
        }
    }

    /// The symbol, if this value is one.
    #[inline]
    pub fn as_sym(self) -> Option<Sym> {
        (self.0 & TAG_INT == 0).then_some(Sym(self.0 as u32))
    }

    /// The integer, if this value is one.
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        if self.0 & TAG_INT == 0 {
            return None;
        }
        // Sign-extend the low 63 bits.
        Some(((self.0 << 1) as i64) >> 1)
    }

    /// The raw word (used for hashing).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Renders this value using `interner` for symbols.
    pub fn display<'a>(self, interner: &'a Interner) -> DisplayValue<'a> {
        DisplayValue { value: self, interner }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = self.as_int() {
            write!(f, "Int({n})")
        } else {
            write!(f, "Sym({})", self.0)
        }
    }
}

/// Display adapter for [`Value`].
pub struct DisplayValue<'a> {
    value: Value,
    interner: &'a Interner,
}

impl fmt::Display for DisplayValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = self.value.as_int() {
            write!(f, "{n}")
        } else {
            let sym = self.value.as_sym().expect("value is sym or int");
            write!(f, "{}", self.interner.resolve(sym))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_roundtrip() {
        let s = Sym(12345);
        let v = Value::sym(s);
        assert_eq!(v.as_sym(), Some(s));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn int_roundtrip_including_negatives() {
        for n in [0i64, 1, -1, 42, -42, INT_MIN, INT_MAX_EXCLUSIVE - 1] {
            let v = Value::int(n).unwrap();
            assert_eq!(v.as_int(), Some(n), "roundtrip of {n}");
            assert_eq!(v.as_sym(), None);
        }
    }

    #[test]
    fn out_of_range_ints_are_rejected() {
        assert!(Value::int(INT_MAX_EXCLUSIVE).is_err());
        assert!(Value::int(i64::MAX).is_err());
        assert!(Value::int(INT_MIN - 1).is_err());
        assert!(Value::int(i64::MIN).is_err());
    }

    #[test]
    fn ints_and_syms_never_collide() {
        // Integer 5 and symbol #5 are different values.
        let i5 = Value::int(5).unwrap();
        let s5 = Value::sym(Sym(5));
        assert_ne!(i5, s5);
    }

    #[test]
    fn display_uses_interner() {
        let mut i = Interner::new();
        let tom = i.intern("tom");
        assert_eq!(Value::sym(tom).display(&i).to_string(), "tom");
        assert_eq!(Value::int(-7).unwrap().display(&i).to_string(), "-7");
    }

    #[test]
    fn from_const_converts_both_kinds() {
        let mut i = Interner::new();
        let tom = i.intern("tom");
        assert_eq!(Value::from_const(Const::Sym(tom)).unwrap(), Value::sym(tom));
        assert_eq!(Value::from_const(Const::Int(9)).unwrap(), Value::int(9).unwrap());
    }
}
