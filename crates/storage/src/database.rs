//! The extensional database.
//!
//! A [`Database`] owns the symbol [`Interner`] shared by programs, queries,
//! and data, plus one [`Relation`] per extensional predicate. Convenience
//! constructors accept facts as strings, AST facts, or raw tuples, so tests,
//! examples, and generators can all build databases tersely.

use std::sync::Arc;

use sepra_ast::{Atom, Interner, Program, Sym, Term};

use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::relstats::RelStats;
use crate::tuple::Tuple;
use crate::value::{Value, ValueError};

/// Errors loading facts into a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// A fact contained a variable.
    NonGroundFact(String),
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// Previously seen arity.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A value was unrepresentable.
    Value(ValueError),
}

impl std::fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatabaseError::NonGroundFact(s) => write!(f, "fact is not ground: {s}"),
            DatabaseError::ArityMismatch { pred, expected, found } => {
                write!(f, "predicate `{pred}` loaded with arity {found}, previously {expected}")
            }
            DatabaseError::Value(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

impl From<ValueError> for DatabaseError {
    fn from(e: ValueError) -> Self {
        DatabaseError::Value(e)
    }
}

/// An extensional database: named relations over a shared interner.
///
/// Relations are stored behind [`Arc`], so [`Database::clone`] is a cheap
/// read-mostly snapshot: clones share tuple storage until one of them
/// mutates a relation, at which point [`Arc::make_mut`] copies just that
/// relation. This is what lets a query server hand every worker thread its
/// own `Database` without duplicating the EDB.
///
/// Every effective mutation (an insert that added a tuple, a retract that
/// removed one) bumps a **generation counter**. A clone freezes the
/// counter at the snapshot's value, so two databases with equal
/// generations that descend from the same lineage hold the same facts —
/// this is what lets caches and prepared state be validated against a
/// snapshot instead of diffing relations.
#[derive(Debug, Default, Clone)]
pub struct Database {
    interner: Interner,
    relations: FxHashMap<Sym, Arc<Relation>>,
    generation: u64,
}

/// A batch of EDB changes: tuples to remove and tuples to add, per
/// predicate. [`Database::apply_delta`] applies one and reports the
/// *effective* delta (only tuples genuinely removed/added), which is what
/// incremental view maintenance propagates.
#[derive(Debug, Default, Clone)]
pub struct EdbDelta {
    /// Tuples to retract, per predicate. Applied before `insert`.
    pub remove: FxHashMap<Sym, Vec<Tuple>>,
    /// Tuples to insert, per predicate.
    pub insert: FxHashMap<Sym, Vec<Tuple>>,
}

impl EdbDelta {
    /// Whether the delta contains no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.remove.values().all(Vec::is_empty) && self.insert.values().all(Vec::is_empty)
    }

    /// Total tuples across both halves.
    pub fn len(&self) -> usize {
        self.remove.values().map(Vec::len).sum::<usize>()
            + self.insert.values().map(Vec::len).sum::<usize>()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interner (shared symbol space).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner, for parsing programs and queries in
    /// this database's symbol space.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns a name.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.interner.intern(name)
    }

    /// The relation for `pred`, if any facts were loaded.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred).map(|r| &**r)
    }

    /// The relation for `pred`, creating an empty one of `arity` if absent.
    ///
    /// If the relation is shared with a snapshot clone, this copies it
    /// first (copy-on-write), so mutation never disturbs other clones.
    ///
    /// Relations created here maintain [`RelStats`] (this is the only way a
    /// relation enters a database), so every EDB mutation path — direct
    /// inserts, retracts, [`Database::apply_delta`], fact loading, and WAL
    /// replay, which all funnel through these — keeps the planner's
    /// statistics exact without ever scanning the data.
    pub fn relation_mut(&mut self, pred: Sym, arity: usize) -> &mut Relation {
        Arc::make_mut(
            self.relations.entry(pred).or_insert_with(|| Arc::new(Relation::with_stats(arity))),
        )
    }

    /// The maintained statistics for `pred`'s relation, if present.
    pub fn rel_stats(&self, pred: Sym) -> Option<&RelStats> {
        self.relations.get(&pred).and_then(|r| r.stats())
    }

    /// Installs a fully built relation for `pred` — the bulk-load path for
    /// columnar checkpoints, which decode whole relations without going
    /// through per-tuple [`Database::insert`]. If `pred` already has a
    /// relation, the rows are unioned in (matching per-tuple insert
    /// semantics for duplicate predicate sections); otherwise the relation
    /// is adopted wholesale, with statistics rebuilt if it carries none.
    /// Returns how many tuples were new.
    pub fn install_relation(
        &mut self,
        pred: Sym,
        relation: Relation,
    ) -> Result<usize, DatabaseError> {
        self.check_arity(pred, relation.arity())?;
        let added = match self.relations.entry(pred) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                Arc::make_mut(e.get_mut()).union_in_place(&relation)
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut relation = relation;
                relation.ensure_stats();
                let n = relation.len();
                e.insert(Arc::new(relation));
                n
            }
        };
        self.generation += added as u64;
        Ok(added)
    }

    /// Iterates over `(predicate, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, &**r))
    }

    /// Total number of stored tuples.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// The number of distinct constants appearing in all relations — the
    /// paper's `n` in its `O(f(n))` statements.
    pub fn distinct_constant_count(&self) -> usize {
        let mut seen = crate::hasher::FxHashSet::default();
        for r in self.relations.values() {
            for c in 0..r.arity() {
                for &v in r.column(c) {
                    seen.insert(v);
                }
            }
        }
        seen.len()
    }

    /// The EDB generation: bumped once per effective mutation (an insert
    /// that added a tuple, a retract that removed one). Clones freeze the
    /// counter at the snapshot's value.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Overwrites the generation counter. Crash recovery uses this to
    /// resume the counter lineage a checkpoint or WAL record was stamped
    /// with, so post-recovery commits continue the on-disk numbering
    /// instead of restarting from the replayed mutation count.
    pub fn force_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Drops every relation (the interner and generation are kept). Used
    /// when a checkpoint snapshot is authoritative for the whole EDB:
    /// facts loaded from a program file must not resurrect tuples the
    /// snapshot says were retracted.
    pub fn clear_relations(&mut self) {
        self.relations.clear();
    }

    fn check_arity(&self, pred: Sym, arity: usize) -> Result<(), DatabaseError> {
        if let Some(existing) = self.relations.get(&pred) {
            if existing.arity() != arity {
                return Err(DatabaseError::ArityMismatch {
                    pred: self.interner.resolve(pred).to_string(),
                    expected: existing.arity(),
                    found: arity,
                });
            }
        }
        Ok(())
    }

    /// Inserts one tuple for `pred`.
    pub fn insert(&mut self, pred: Sym, tuple: Tuple) -> Result<bool, DatabaseError> {
        self.check_arity(pred, tuple.arity())?;
        let arity = tuple.arity();
        let added = self.relation_mut(pred, arity).insert(tuple);
        if added {
            self.generation += 1;
        }
        Ok(added)
    }

    /// Removes one tuple from `pred`. Returns `Ok(false)` when the
    /// predicate or tuple is absent; an arity mismatch against an existing
    /// relation is still an error (the caller confused two predicates).
    pub fn retract(&mut self, pred: Sym, tuple: &Tuple) -> Result<bool, DatabaseError> {
        self.check_arity(pred, tuple.arity())?;
        let Some(rel) = self.relations.get_mut(&pred) else {
            return Ok(false);
        };
        if !rel.contains(tuple) {
            return Ok(false);
        }
        let removed = Arc::make_mut(rel).remove(tuple);
        if removed {
            self.generation += 1;
        }
        Ok(removed)
    }

    /// Removes a ground AST atom.
    pub fn retract_atom(&mut self, atom: &Atom) -> Result<bool, DatabaseError> {
        let tuple = self.ground_tuple(atom)?;
        self.retract(atom.pred, &tuple)
    }

    /// Converts a ground AST atom into the tuple it denotes (without
    /// touching any relation). Errors on variables or unrepresentable
    /// values — the checks [`Database::insert_atom`] and
    /// [`Database::retract_atom`] share.
    pub fn ground_tuple(&self, atom: &Atom) -> Result<Tuple, DatabaseError> {
        let mut values = Vec::with_capacity(atom.arity());
        for term in &atom.terms {
            match term {
                Term::Const(c) => values.push(Value::from_const(*c)?),
                Term::Var(v) => {
                    return Err(DatabaseError::NonGroundFact(self.interner.resolve(*v).to_string()))
                }
            }
        }
        Ok(Tuple::from(values))
    }

    /// Applies a batch of changes — retractions first, then insertions —
    /// and returns the **effective** delta: only tuples that were actually
    /// removed (present before) or added (absent before). Arity checks run
    /// up front, so on error the database is untouched.
    pub fn apply_delta(&mut self, delta: &EdbDelta) -> Result<EdbDelta, DatabaseError> {
        let mut arities: FxHashMap<Sym, usize> = FxHashMap::default();
        for (&pred, tuples) in delta.remove.iter().chain(delta.insert.iter()) {
            for t in tuples {
                self.check_arity(pred, t.arity())?;
                let seen = *arities.entry(pred).or_insert_with(|| t.arity());
                if seen != t.arity() {
                    return Err(DatabaseError::ArityMismatch {
                        pred: self.interner.resolve(pred).to_string(),
                        expected: seen,
                        found: t.arity(),
                    });
                }
            }
        }
        let mut effective = EdbDelta::default();
        for (&pred, tuples) in &delta.remove {
            let Some(rel) = self.relations.get_mut(&pred) else { continue };
            let present: Vec<Tuple> = tuples.iter().filter(|t| rel.contains(t)).cloned().collect();
            if present.is_empty() {
                continue;
            }
            let removed = Arc::make_mut(rel).remove_batch(&present);
            self.generation += removed as u64;
            effective.remove.insert(pred, present);
        }
        for (&pred, tuples) in &delta.insert {
            let mut added = Vec::new();
            for t in tuples {
                let arity = t.arity();
                if self.relation_mut(pred, arity).insert(t.clone()) {
                    self.generation += 1;
                    added.push(t.clone());
                }
            }
            if !added.is_empty() {
                effective.insert.insert(pred, added);
            }
        }
        Ok(effective)
    }

    /// Inserts a fact given as symbolic constant names, interning them,
    /// e.g. `db.insert_named("friend", &["tom", "sue"])`.
    pub fn insert_named(&mut self, pred: &str, args: &[&str]) -> Result<bool, DatabaseError> {
        let p = self.intern(pred);
        let values: Vec<Value> = args.iter().map(|a| Value::sym(self.interner.intern(a))).collect();
        self.insert(p, Tuple::from(values))
    }

    /// Loads a ground AST atom as a fact.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, DatabaseError> {
        let tuple = self.ground_tuple(atom)?;
        self.insert(atom.pred, tuple)
    }

    /// Loads every fact of a parsed program (rules with empty bodies).
    pub fn load_facts(&mut self, program: &Program) -> Result<usize, DatabaseError> {
        let mut added = 0;
        for fact in program.facts() {
            if self.insert_atom(&fact.head)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Parses fact text (e.g. `"friend(tom, sue). friend(sue, joe)."`) and
    /// loads every fact.
    pub fn load_fact_text(&mut self, text: &str) -> Result<usize, Box<dyn std::error::Error>> {
        let program = sepra_ast::parse::parse_program(text, &mut self.interner)?;
        Ok(self.load_facts(&program)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_named_and_lookup() {
        let mut db = Database::new();
        db.insert_named("friend", &["tom", "sue"]).unwrap();
        db.insert_named("friend", &["sue", "joe"]).unwrap();
        db.insert_named("friend", &["tom", "sue"]).unwrap(); // dup
        let friend = db.intern("friend");
        assert_eq!(db.relation(friend).unwrap().len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.distinct_constant_count(), 3);
    }

    #[test]
    fn load_fact_text() {
        let mut db = Database::new();
        let n = db.load_fact_text("friend(tom, sue). age(tom, 42). friend(sue, joe).").unwrap();
        assert_eq!(n, 3);
        let age = db.intern("age");
        let rel = db.relation(age).unwrap();
        let t = rel.iter().next().unwrap();
        assert_eq!(t[1].as_int(), Some(42));
    }

    #[test]
    fn rejects_non_ground_fact() {
        let mut db = Database::new();
        let p = db.intern("p");
        let x = db.interner_mut().intern("X");
        let atom = Atom::new(p, vec![Term::Var(x)]);
        assert!(matches!(db.insert_atom(&atom), Err(DatabaseError::NonGroundFact(_))));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut db = Database::new();
        db.insert_named("p", &["a", "b"]).unwrap();
        let err = db.insert_named("p", &["a"]).unwrap_err();
        assert!(matches!(err, DatabaseError::ArityMismatch { .. }));
    }

    #[test]
    fn clone_is_a_shared_snapshot_until_mutation() {
        let mut db = Database::new();
        db.insert_named("e", &["a", "b"]).unwrap();
        let e = db.intern("e");
        let snapshot = db.clone();
        // The clone shares the relation storage with the original.
        assert!(std::ptr::eq(db.relation(e).unwrap(), snapshot.relation(e).unwrap()));
        // Mutating the original copies its relation; the snapshot is
        // unaffected and keeps the old storage.
        db.insert_named("e", &["b", "c"]).unwrap();
        assert_eq!(db.relation(e).unwrap().len(), 2);
        assert_eq!(snapshot.relation(e).unwrap().len(), 1);
    }

    #[test]
    fn retract_removes_and_reports_membership() {
        let mut db = Database::new();
        db.insert_named("e", &["a", "b"]).unwrap();
        db.insert_named("e", &["b", "c"]).unwrap();
        let e = db.intern("e");
        let ab = db.relation(e).unwrap().iter().next().unwrap().to_tuple();
        assert!(db.retract(e, &ab).unwrap());
        assert!(!db.retract(e, &ab).unwrap()); // already gone
        assert_eq!(db.relation(e).unwrap().len(), 1);
        // Absent predicate: not an error, just "nothing removed".
        let q = db.intern("q");
        assert!(!db.retract(q, &ab).unwrap());
    }

    #[test]
    fn retract_checks_arity() {
        let mut db = Database::new();
        db.insert_named("p", &["a", "b"]).unwrap();
        let p = db.intern("p");
        let sym = Value::sym(db.intern("a"));
        let narrow = Tuple::from(vec![sym]);
        assert!(matches!(db.retract(p, &narrow), Err(DatabaseError::ArityMismatch { .. })));
    }

    #[test]
    fn generation_counts_effective_mutations_only() {
        let mut db = Database::new();
        assert_eq!(db.generation(), 0);
        db.insert_named("e", &["a", "b"]).unwrap();
        assert_eq!(db.generation(), 1);
        db.insert_named("e", &["a", "b"]).unwrap(); // dup: no change
        assert_eq!(db.generation(), 1);
        let e = db.intern("e");
        let ab = db.relation(e).unwrap().iter().next().unwrap().to_tuple();
        db.retract(e, &ab).unwrap();
        assert_eq!(db.generation(), 2);
        db.retract(e, &ab).unwrap(); // absent: no change
        assert_eq!(db.generation(), 2);
        // Clones freeze the counter.
        let snapshot = db.clone();
        db.insert_named("e", &["x", "y"]).unwrap();
        assert_eq!(snapshot.generation(), 2);
        assert_eq!(db.generation(), 3);
    }

    #[test]
    fn apply_delta_returns_effective_changes() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c).").unwrap();
        let e = db.intern("e");
        let tuples: Vec<Tuple> = db.relation(e).unwrap().iter().map(|t| t.to_tuple()).collect();
        let fresh = Tuple::from(vec![Value::sym(db.intern("x")), Value::sym(db.intern("y"))]);
        let mut delta = EdbDelta::default();
        // Remove one present tuple and one absent tuple; insert one new
        // tuple, one duplicate of the new tuple, and one existing tuple.
        delta.remove.insert(e, vec![tuples[0].clone(), fresh.clone()]);
        delta.insert.insert(e, vec![fresh.clone(), fresh.clone(), tuples[1].clone()]);
        let gen_before = db.generation();
        let effective = db.apply_delta(&delta).unwrap();
        assert_eq!(effective.remove[&e], vec![tuples[0].clone()]);
        assert_eq!(effective.insert[&e], vec![fresh.clone()]);
        assert_eq!(effective.len(), 2);
        assert_eq!(db.generation(), gen_before + 2);
        let rel = db.relation(e).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(!rel.contains(&tuples[0]));
        assert!(rel.contains(&tuples[1]));
        assert!(rel.contains(&fresh));
    }

    #[test]
    fn rel_stats_follow_every_mutation_path() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(a, c). e(b, c).").unwrap();
        let e = db.intern("e");
        let s = db.rel_stats(e).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.distinct(0), 2);
        assert_eq!(s.distinct(1), 2);

        // Retraction through apply_delta keeps the counts exact.
        let ab = db.relation(e).unwrap().iter().next().unwrap().to_tuple();
        let mut delta = EdbDelta::default();
        delta.remove.insert(e, vec![ab]);
        let fresh = Tuple::from(vec![Value::sym(db.intern("x")), Value::sym(db.intern("c"))]);
        delta.insert.insert(e, vec![fresh]);
        db.apply_delta(&delta).unwrap();
        let s = db.rel_stats(e).unwrap();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.distinct(0), 3); // {(a,c),(b,c),(x,c)}: a, b, x
        assert_eq!(s.distinct(1), 1); // only c remains in column 1
                                      // The maintained stats always equal a from-scratch rebuild.
        let rebuilt = RelStats::from_rows(2, db.relation(e).unwrap().iter());
        assert_eq!(*s, rebuilt);
        // Unknown predicates have no stats.
        let ghost = db.intern("ghost");
        assert!(db.rel_stats(ghost).is_none());
    }

    #[test]
    fn apply_delta_rejects_arity_mismatch_without_mutating() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b).").unwrap();
        let e = db.intern("e");
        let good: Vec<Tuple> = db.relation(e).unwrap().iter().map(|t| t.to_tuple()).collect();
        let bad = Tuple::from(vec![Value::sym(db.intern("z"))]);
        let mut delta = EdbDelta::default();
        delta.remove.insert(e, good.clone());
        delta.insert.insert(e, vec![bad]);
        let gen_before = db.generation();
        assert!(matches!(db.apply_delta(&delta), Err(DatabaseError::ArityMismatch { .. })));
        // Up-front validation means nothing was applied.
        assert_eq!(db.generation(), gen_before);
        assert!(db.relation(e).unwrap().contains(&good[0]));
    }

    #[test]
    fn load_facts_skips_rules() {
        let mut db = Database::new();
        let text = "t(X, Y) :- e(X, Y).\ne(a, b).\n";
        let program = sepra_ast::parse::parse_program(text, db.interner_mut()).unwrap();
        let n = db.load_facts(&program).unwrap();
        assert_eq!(n, 1);
        let t = db.intern("t");
        assert!(db.relation(t).is_none());
    }
}
