//! The extensional database.
//!
//! A [`Database`] owns the symbol [`Interner`] shared by programs, queries,
//! and data, plus one [`Relation`] per extensional predicate. Convenience
//! constructors accept facts as strings, AST facts, or raw tuples, so tests,
//! examples, and generators can all build databases tersely.

use std::sync::Arc;

use sepra_ast::{Atom, Interner, Program, Sym, Term};

use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::{Value, ValueError};

/// Errors loading facts into a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// A fact contained a variable.
    NonGroundFact(String),
    /// A predicate was used with two different arities.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// Previously seen arity.
        expected: usize,
        /// Conflicting arity.
        found: usize,
    },
    /// A value was unrepresentable.
    Value(ValueError),
}

impl std::fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatabaseError::NonGroundFact(s) => write!(f, "fact is not ground: {s}"),
            DatabaseError::ArityMismatch { pred, expected, found } => {
                write!(f, "predicate `{pred}` loaded with arity {found}, previously {expected}")
            }
            DatabaseError::Value(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DatabaseError {}

impl From<ValueError> for DatabaseError {
    fn from(e: ValueError) -> Self {
        DatabaseError::Value(e)
    }
}

/// An extensional database: named relations over a shared interner.
///
/// Relations are stored behind [`Arc`], so [`Database::clone`] is a cheap
/// read-mostly snapshot: clones share tuple storage until one of them
/// mutates a relation, at which point [`Arc::make_mut`] copies just that
/// relation. This is what lets a query server hand every worker thread its
/// own `Database` without duplicating the EDB.
#[derive(Debug, Default, Clone)]
pub struct Database {
    interner: Interner,
    relations: FxHashMap<Sym, Arc<Relation>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The interner (shared symbol space).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner, for parsing programs and queries in
    /// this database's symbol space.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Interns a name.
    pub fn intern(&mut self, name: &str) -> Sym {
        self.interner.intern(name)
    }

    /// The relation for `pred`, if any facts were loaded.
    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.relations.get(&pred).map(|r| &**r)
    }

    /// The relation for `pred`, creating an empty one of `arity` if absent.
    ///
    /// If the relation is shared with a snapshot clone, this copies it
    /// first (copy-on-write), so mutation never disturbs other clones.
    pub fn relation_mut(&mut self, pred: Sym, arity: usize) -> &mut Relation {
        Arc::make_mut(self.relations.entry(pred).or_insert_with(|| Arc::new(Relation::new(arity))))
    }

    /// Iterates over `(predicate, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (Sym, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, &**r))
    }

    /// Total number of stored tuples.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// The number of distinct constants appearing in all relations — the
    /// paper's `n` in its `O(f(n))` statements.
    pub fn distinct_constant_count(&self) -> usize {
        let mut seen = crate::hasher::FxHashSet::default();
        for r in self.relations.values() {
            for t in r.iter() {
                for &v in t.values() {
                    seen.insert(v);
                }
            }
        }
        seen.len()
    }

    /// Inserts one tuple for `pred`.
    pub fn insert(&mut self, pred: Sym, tuple: Tuple) -> Result<bool, DatabaseError> {
        if let Some(existing) = self.relations.get(&pred) {
            if existing.arity() != tuple.arity() {
                return Err(DatabaseError::ArityMismatch {
                    pred: self.interner.resolve(pred).to_string(),
                    expected: existing.arity(),
                    found: tuple.arity(),
                });
            }
        }
        let arity = tuple.arity();
        Ok(self.relation_mut(pred, arity).insert(tuple))
    }

    /// Inserts a fact given as symbolic constant names, interning them,
    /// e.g. `db.insert_named("friend", &["tom", "sue"])`.
    pub fn insert_named(&mut self, pred: &str, args: &[&str]) -> Result<bool, DatabaseError> {
        let p = self.intern(pred);
        let values: Vec<Value> = args.iter().map(|a| Value::sym(self.interner.intern(a))).collect();
        self.insert(p, Tuple::from(values))
    }

    /// Loads a ground AST atom as a fact.
    pub fn insert_atom(&mut self, atom: &Atom) -> Result<bool, DatabaseError> {
        let mut values = Vec::with_capacity(atom.arity());
        for term in &atom.terms {
            match term {
                Term::Const(c) => values.push(Value::from_const(*c)?),
                Term::Var(v) => {
                    return Err(DatabaseError::NonGroundFact(self.interner.resolve(*v).to_string()))
                }
            }
        }
        self.insert(atom.pred, Tuple::from(values))
    }

    /// Loads every fact of a parsed program (rules with empty bodies).
    pub fn load_facts(&mut self, program: &Program) -> Result<usize, DatabaseError> {
        let mut added = 0;
        for fact in program.facts() {
            if self.insert_atom(&fact.head)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Parses fact text (e.g. `"friend(tom, sue). friend(sue, joe)."`) and
    /// loads every fact.
    pub fn load_fact_text(&mut self, text: &str) -> Result<usize, Box<dyn std::error::Error>> {
        let program = sepra_ast::parse::parse_program(text, &mut self.interner)?;
        Ok(self.load_facts(&program)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_named_and_lookup() {
        let mut db = Database::new();
        db.insert_named("friend", &["tom", "sue"]).unwrap();
        db.insert_named("friend", &["sue", "joe"]).unwrap();
        db.insert_named("friend", &["tom", "sue"]).unwrap(); // dup
        let friend = db.intern("friend");
        assert_eq!(db.relation(friend).unwrap().len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert_eq!(db.distinct_constant_count(), 3);
    }

    #[test]
    fn load_fact_text() {
        let mut db = Database::new();
        let n = db.load_fact_text("friend(tom, sue). age(tom, 42). friend(sue, joe).").unwrap();
        assert_eq!(n, 3);
        let age = db.intern("age");
        let rel = db.relation(age).unwrap();
        let t = rel.iter().next().unwrap();
        assert_eq!(t[1].as_int(), Some(42));
    }

    #[test]
    fn rejects_non_ground_fact() {
        let mut db = Database::new();
        let p = db.intern("p");
        let x = db.interner_mut().intern("X");
        let atom = Atom::new(p, vec![Term::Var(x)]);
        assert!(matches!(db.insert_atom(&atom), Err(DatabaseError::NonGroundFact(_))));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut db = Database::new();
        db.insert_named("p", &["a", "b"]).unwrap();
        let err = db.insert_named("p", &["a"]).unwrap_err();
        assert!(matches!(err, DatabaseError::ArityMismatch { .. }));
    }

    #[test]
    fn clone_is_a_shared_snapshot_until_mutation() {
        let mut db = Database::new();
        db.insert_named("e", &["a", "b"]).unwrap();
        let e = db.intern("e");
        let snapshot = db.clone();
        // The clone shares the relation storage with the original.
        assert!(std::ptr::eq(db.relation(e).unwrap(), snapshot.relation(e).unwrap()));
        // Mutating the original copies its relation; the snapshot is
        // unaffected and keeps the old storage.
        db.insert_named("e", &["b", "c"]).unwrap();
        assert_eq!(db.relation(e).unwrap().len(), 2);
        assert_eq!(snapshot.relation(e).unwrap().len(), 1);
    }

    #[test]
    fn load_facts_skips_rules() {
        let mut db = Database::new();
        let text = "t(X, Y) :- e(X, Y).\ne(a, b).\n";
        let program = sepra_ast::parse::parse_program(text, db.interner_mut()).unwrap();
        let n = db.load_facts(&program).unwrap();
        assert_eq!(n, 1);
        let t = db.intern("t");
        assert!(db.relation(t).is_none());
    }
}
