//! Answer justifications — the paper's `J(a)` strings.
//!
//! The proof of Lemma 3.1 associates with every answer `a` a
//! *justification*: the sequence of rule applications through which `a`
//! entered the `ans` relation — first the `e_1` rules that extended
//! `carry_1` from the selection constants, then the exit rule whose join
//! seeded `carry_2`, then the remaining-class rules that extended
//! `carry_2`. The justification is precisely a derivation `D(s)` of an
//! expansion string that produces `a`, which is what makes the algorithm
//! sound.
//!
//! [`JustificationTracker`] materializes these strings during execution
//! (using the plans' tracked variants, whose output rows carry the parent
//! tuple), turning the proof construction into a *why-provenance* feature:
//! `sepra`'s `:why` command prints, for any answer, one derivation that
//! produces it, and the test suite replays justifications step by step to
//! validate them — a constructive check of Lemma 3.1.

use sepra_ast::Interner;
use sepra_storage::{FxHashMap, Tuple};

use crate::detect::SeparableRecursion;

/// How a tuple entered a carry/seen relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// A phase-1 root: the selection constants (or a decomposition seed).
    Root,
    /// Produced in phase 1 by applying `rule` to `parent`.
    Phase1 {
        /// The parent `carry_1` tuple.
        parent: Tuple,
        /// Index into [`SeparableRecursion::recursive_rules`].
        rule: usize,
    },
    /// Seeded into `carry_2` by exit rule `exit_rule`, joined with the
    /// given `seen_1` tuple (absent for persistent selections).
    Seed {
        /// The contributing `seen_1` tuple, if phase 1 ran.
        seen1: Option<Tuple>,
        /// Index into [`SeparableRecursion::exit_rules`].
        exit_rule: usize,
    },
    /// Produced in phase 2 by applying `rule` to `parent`.
    Phase2 {
        /// The parent `carry_2` tuple.
        parent: Tuple,
        /// Index into [`SeparableRecursion::recursive_rules`].
        rule: usize,
    },
}

/// One answer's justification: a derivation `D(s)` (Definition 2.5) split
/// into the three stages of the algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Justification {
    /// Rules of the selected class applied downward from the selection
    /// constants, in application order (`D_1(s)`).
    pub phase1_rules: Vec<usize>,
    /// The `seen_1` tuple that met the exit rule (absent for persistent
    /// selections).
    pub seen1_tuple: Option<Tuple>,
    /// The exit rule used.
    pub exit_rule: usize,
    /// Remaining-class rules applied upward, in application order
    /// (`D(s) - D_1(s)`, reversed to expansion order by the caller if
    /// needed).
    pub phase2_rules: Vec<usize>,
}

impl Justification {
    /// Renders the justification as the paper would write the derivation,
    /// e.g. `r_1 r_1 r_2 · exit_0 · r_3`.
    pub fn render(&self, sep: &SeparableRecursion, interner: &Interner) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for &r in &self.phase1_rules {
            let _ = write!(out, "{} ", rule_label(sep, interner, r));
        }
        let _ = write!(out, "[exit {}]", self.exit_rule);
        for &r in &self.phase2_rules {
            let _ = write!(out, " {}", rule_label(sep, interner, r));
        }
        out
    }
}

fn rule_label(sep: &SeparableRecursion, interner: &Interner, rule: usize) -> String {
    // Label by the first nonrecursive predicate of the rule, the most
    // recognizable handle for a human.
    let r = &sep.recursive_rules[rule];
    let name = r
        .nonrecursive_atoms(sep.pred)
        .first()
        .map(|a| interner.resolve(a.pred).to_string())
        .unwrap_or_else(|| format!("r{rule}"));
    format!("r{rule}({name})")
}

/// Records one origin per tuple per phase (first derivation wins, as in
/// the paper's justification definition — any one derivation suffices).
#[derive(Debug, Default)]
pub struct JustificationTracker {
    /// Origins of `seen_1` tuples.
    pub phase1: FxHashMap<Tuple, Origin>,
    /// Origins of `seen_2` tuples.
    pub phase2: FxHashMap<Tuple, Origin>,
}

impl JustificationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an origin if the tuple has none yet.
    pub fn record_phase1(&mut self, tuple: Tuple, origin: Origin) {
        self.phase1.entry(tuple).or_insert(origin);
    }

    /// Records an origin if the tuple has none yet.
    pub fn record_phase2(&mut self, tuple: Tuple, origin: Origin) {
        self.phase2.entry(tuple).or_insert(origin);
    }

    /// Reconstructs the justification of a `seen_2` tuple by walking parent
    /// chains back to the roots.
    pub fn justify(&self, seen2_tuple: &Tuple) -> Option<Justification> {
        let mut phase2_rules = Vec::new();
        let mut current = seen2_tuple.clone();
        let (seen1_tuple, exit_rule) = loop {
            match self.phase2.get(&current)? {
                Origin::Phase2 { parent, rule } => {
                    phase2_rules.push(*rule);
                    current = parent.clone();
                }
                Origin::Seed { seen1, exit_rule } => break (seen1.clone(), *exit_rule),
                Origin::Root | Origin::Phase1 { .. } => return None,
            }
        };
        phase2_rules.reverse();
        let mut phase1_rules = Vec::new();
        if let Some(seen1) = &seen1_tuple {
            let mut current = seen1.clone();
            loop {
                match self.phase1.get(&current)? {
                    Origin::Phase1 { parent, rule } => {
                        phase1_rules.push(*rule);
                        current = parent.clone();
                    }
                    Origin::Root => break,
                    Origin::Seed { .. } | Origin::Phase2 { .. } => return None,
                }
            }
            phase1_rules.reverse();
        }
        Some(Justification { phase1_rules, seen1_tuple, exit_rule, phase2_rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::Sym;
    use sepra_storage::Value;

    fn t1(v: u32) -> Tuple {
        Tuple::from([Value::sym(Sym(v))])
    }

    #[test]
    fn justify_walks_both_chains() {
        let mut tracker = JustificationTracker::new();
        // phase1: 0 -(r0)-> 1 -(r1)-> 2
        tracker.record_phase1(t1(0), Origin::Root);
        tracker.record_phase1(t1(1), Origin::Phase1 { parent: t1(0), rule: 0 });
        tracker.record_phase1(t1(2), Origin::Phase1 { parent: t1(1), rule: 1 });
        // seed from seen1 tuple 2 via exit 0: carry2 tuple 10.
        tracker.record_phase2(t1(10), Origin::Seed { seen1: Some(t1(2)), exit_rule: 0 });
        // phase2: 10 -(r2)-> 11.
        tracker.record_phase2(t1(11), Origin::Phase2 { parent: t1(10), rule: 2 });

        let j = tracker.justify(&t1(11)).expect("justified");
        assert_eq!(j.phase1_rules, vec![0, 1]);
        assert_eq!(j.exit_rule, 0);
        assert_eq!(j.phase2_rules, vec![2]);
        assert_eq!(j.seen1_tuple, Some(t1(2)));
    }

    #[test]
    fn first_origin_wins() {
        let mut tracker = JustificationTracker::new();
        tracker.record_phase1(t1(1), Origin::Root);
        tracker.record_phase1(t1(1), Origin::Phase1 { parent: t1(0), rule: 5 });
        assert_eq!(tracker.phase1[&t1(1)], Origin::Root);
    }

    #[test]
    fn unknown_tuple_is_none() {
        let tracker = JustificationTracker::new();
        assert!(tracker.justify(&t1(9)).is_none());
    }
}
