//! Selection classification (Definition 2.7) and instantiation of the
//! evaluation schema of Figure 2 into an executable [`SeparablePlan`].
//!
//! A plan has three parts, mirroring the paper's schema:
//!
//! 1. **Phase 1** (lines 1–7): a closure over `carry_1`/`seen_1`, whose
//!    columns are `t|e_1` — the columns of the equivalence class the
//!    selection binds. Each rule `r_1j` of `e_1` compiles to one member of
//!    the union in the carry-extension operator `f_1`: a join of the carry
//!    with the rule's nonrecursive conjunction `a_1j`, projecting the
//!    *body*-side class variables (the "downward" direction, from the
//!    selection constants toward the exit relation).
//! 2. **Seed** (line 8): `carry_2 := t_0 & seen_1` — each exit rule body is
//!    joined against `seen_1` and projected onto the remaining columns.
//!    When the selection constants lie in `t|pers` there is no phase 1; the
//!    constants are instead baked into the seed plans (the paper's "dummy
//!    equivalence class" construction).
//! 3. **Phase 2** (lines 10–14): a closure over `carry_2`/`seen_2` whose
//!    columns are the concatenation of the remaining classes' columns and
//!    the persistent columns. Each rule of the remaining classes compiles
//!    to one member of `f_2`, this time projecting the *head*-side
//!    variables (the "upward" direction, from the exit relation toward
//!    answers).

use sepra_ast::{Literal, Query, Sym, Term};
use sepra_eval::{ConjPlan, EvalError, PlanAtom, PlanLiteral, Planner, RelKey};
use sepra_storage::Value;

use crate::detect::SeparableRecursion;

/// Auxiliary relation id for `carry_1` in compiled plans.
pub const AUX_CARRY1: u32 = 0;
/// Auxiliary relation id for `seen_1` in compiled plans.
pub const AUX_SEEN1: u32 = 1;
/// Auxiliary relation id for `carry_2` in compiled plans.
pub const AUX_CARRY2: u32 = 2;

/// How a query's selection constants relate to the recursion's classes
/// (Definition 2.7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionKind {
    /// At least one constant lies in a persistent column — a full
    /// selection via the paper's dummy-class construction.
    Persistent {
        /// The bound persistent positions (ascending).
        bound: Vec<usize>,
    },
    /// Some equivalence class has *all* of its columns bound — a full
    /// selection on that class.
    FullClass {
        /// Index of the (first) fully bound class.
        class: usize,
    },
    /// Some class is only partially bound and nothing else qualifies —
    /// requires the Lemma 2.1 decomposition.
    Partial {
        /// Index of the (first) partially bound class.
        class: usize,
    },
    /// The query has no selection constants at all; the specialized
    /// algorithm does not apply (Section 2 considers queries with at least
    /// one constant).
    NoSelection,
}

/// Classifies `query` against a detected separable recursion.
pub fn classify_selection(sep: &SeparableRecursion, query: &Query) -> SelectionKind {
    let bound = query.bound_positions();
    if bound.is_empty() {
        return SelectionKind::NoSelection;
    }
    let bound_pers: Vec<usize> =
        bound.iter().copied().filter(|p| sep.persistent.contains(p)).collect();
    if !bound_pers.is_empty() {
        return SelectionKind::Persistent { bound: bound_pers };
    }
    for (ci, class) in sep.classes.iter().enumerate() {
        if !class.columns.is_empty() && class.columns.iter().all(|c| bound.contains(c)) {
            return SelectionKind::FullClass { class: ci };
        }
    }
    for (ci, class) in sep.classes.iter().enumerate() {
        if class.columns.iter().any(|c| bound.contains(c)) {
            return SelectionKind::Partial { class: ci };
        }
    }
    // All bound positions fall in empty-column classes — impossible, since
    // empty classes own no columns; treat as no usable selection.
    SelectionKind::NoSelection
}

/// The compiled phase-1 closure.
#[derive(Debug, Clone)]
pub struct Phase1Plan {
    /// The selected class index.
    pub class: usize,
    /// The carry/seen columns `t|e_1` (ascending positions of `t`).
    pub columns: Vec<usize>,
    /// One carry-extension plan per rule of the class, tagged with the rule
    /// index. Each plan's first atom scans [`AUX_CARRY1`].
    pub steps: Vec<(usize, ConjPlan)>,
    /// Tracked variants of `steps` whose output rows are the *parent*
    /// carry tuple followed by the produced tuple — used to record
    /// justifications (the paper's `J(a)` strings from the proof of
    /// Lemma 3.1).
    pub tracked_steps: Vec<(usize, ConjPlan)>,
}

/// The compiled phase-2 closure.
#[derive(Debug, Clone)]
pub struct Phase2Plan {
    /// The carry/seen columns (remaining class columns plus persistent
    /// columns, ascending positions of `t`).
    pub columns: Vec<usize>,
    /// One carry-extension plan per participating rule, tagged with the
    /// rule index. Each plan's first atom scans [`AUX_CARRY2`].
    pub steps: Vec<(usize, ConjPlan)>,
    /// Tracked variants (parent tuple ++ produced tuple), as in
    /// [`Phase1Plan::tracked_steps`].
    pub tracked_steps: Vec<(usize, ConjPlan)>,
}

/// A fully instantiated Figure 2 schema.
#[derive(Debug, Clone)]
pub struct SeparablePlan {
    /// The recursive predicate.
    pub pred: Sym,
    /// Its arity.
    pub arity: usize,
    /// Phase 1, absent when the selection is on persistent columns.
    pub phase1: Option<Phase1Plan>,
    /// Seed plans (`carry_2 := t_0 & seen_1`), one per exit rule. When
    /// `phase1` is `None`, the persistent selection constants are baked in
    /// as equality steps instead of the `seen_1` join.
    pub seed: Vec<ConjPlan>,
    /// Tracked seed variants whose output rows are the contributing
    /// `seen_1` tuple (when phase 1 exists) followed by the produced
    /// `carry_2` tuple.
    pub tracked_seed: Vec<ConjPlan>,
    /// Phase 2.
    pub phase2: Phase2Plan,
    /// Columns whose values are fixed by the selection (phase-1 class
    /// columns, or the bound persistent columns), ascending. Together with
    /// `phase2.columns` these cover all `arity` positions.
    pub fixed_cols: Vec<usize>,
}

/// What kind of plan to build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanSelection {
    /// Full selection on a class: phase 1 runs over that class; the
    /// caller supplies the initial `carry_1` contents at execution time.
    Class(usize),
    /// Selection constants on persistent columns: `(position, value)`
    /// pairs are baked into the seed plans.
    Persistent(Vec<(usize, Value)>),
}

/// Instantiates the Figure 2 schema for a separable recursion and a full
/// selection, compiling every conjunction exactly as written (the paper's
/// presentation). Equivalent to [`build_plan_with`] with a source-order
/// planner.
pub fn build_plan(
    sep: &SeparableRecursion,
    selection: &PlanSelection,
) -> Result<SeparablePlan, EvalError> {
    build_plan_with(sep, selection, &Planner::source_order())
}

/// Instantiates the Figure 2 schema, letting `planner` order each
/// nonrecursive conjunction before compilation. The carry/seen scan of
/// every step stays pinned first — phase execution shards over it — and
/// the tracked variants (used only for justification recording) always
/// keep source order, since their cost is dominated by tracking anyway.
pub fn build_plan_with(
    sep: &SeparableRecursion,
    selection: &PlanSelection,
    planner: &Planner<'_>,
) -> Result<SeparablePlan, EvalError> {
    match selection {
        PlanSelection::Class(class_idx) => build_class_plan(sep, *class_idx, planner),
        PlanSelection::Persistent(bound) => build_persistent_plan(sep, bound, planner),
    }
}

fn head_terms_at(sep: &SeparableRecursion, rule: &sepra_ast::Rule, cols: &[usize]) -> Vec<Term> {
    debug_assert_eq!(rule.head.arity(), sep.arity);
    cols.iter().map(|&c| rule.head.terms[c]).collect()
}

fn body_terms_at(
    sep: &SeparableRecursion,
    rule: &sepra_ast::Rule,
    cols: &[usize],
) -> Result<Vec<Term>, EvalError> {
    let rec = crate::detect::recursive_atom(rule, sep.pred);
    let terms: Vec<Term> = cols.iter().map(|&c| rec.terms[c]).collect();
    if terms.iter().any(|t| !t.is_var()) {
        return Err(EvalError::Unsupported(
            "constant in the recursive body atom of a separable rule".into(),
        ));
    }
    Ok(terms)
}

fn nonrecursive_literals(sep: &SeparableRecursion, rule: &sepra_ast::Rule) -> Vec<PlanLiteral> {
    rule.body
        .iter()
        .filter_map(|lit| match lit {
            Literal::Atom(a) if a.pred == sep.pred => None,
            Literal::Atom(a) => Some(PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Pred(a.pred),
                terms: a.terms.clone(),
            })),
            Literal::Eq(l, r) => Some(PlanLiteral::Eq(*l, *r)),
            // Unreachable in practice: `RecursiveDef::extract` rejects
            // negation/aggregation before separability detection runs, and
            // sums keep their plan-level meaning if they ever pass through.
            Literal::Neg(a) => Some(PlanLiteral::Neg(PlanAtom {
                rel: RelKey::Pred(a.pred),
                terms: a.terms.clone(),
            })),
            Literal::Sum(d, x, y) => Some(PlanLiteral::Sum(*d, *x, *y)),
        })
        .collect()
}

/// Compiles the carry-extension plan for one phase-1 rule: scan `carry_1`
/// bound to the head-side class variables, join the nonrecursive
/// conjunction, project the body-side class variables.
fn phase1_step(
    sep: &SeparableRecursion,
    rule_idx: usize,
    cols: &[usize],
    planner: &Planner<'_>,
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.recursive_rules[rule_idx];
    let mut body = vec![PlanLiteral::Atom(PlanAtom {
        rel: RelKey::Aux(AUX_CARRY1),
        terms: head_terms_at(sep, rule, cols),
    })];
    body.extend(nonrecursive_literals(sep, rule));
    let output = body_terms_at(sep, rule, cols)?;
    ConjPlan::compile(&[], &planner.order(&[], &body, 1), &output)
}

/// Compiles the carry-extension plan for one phase-2 rule: scan `carry_2`
/// bound to the body-side variables at the phase-2 columns, join the
/// nonrecursive conjunction, project the head-side variables.
fn phase2_step(
    sep: &SeparableRecursion,
    rule_idx: usize,
    cols: &[usize],
    planner: &Planner<'_>,
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.recursive_rules[rule_idx];
    let carry_terms = body_terms_at(sep, rule, cols)?;
    let mut body =
        vec![PlanLiteral::Atom(PlanAtom { rel: RelKey::Aux(AUX_CARRY2), terms: carry_terms })];
    body.extend(nonrecursive_literals(sep, rule));
    let output = head_terms_at(sep, rule, cols);
    ConjPlan::compile(&[], &planner.order(&[], &body, 1), &output)
}

/// Compiles one seed plan (one exit rule): `seen_1` join (or baked-in
/// persistent constants), then the exit body, projecting the phase-2
/// columns.
fn seed_step(
    sep: &SeparableRecursion,
    exit_idx: usize,
    fixed_cols: &[usize],
    rest_cols: &[usize],
    persistent_consts: Option<&[(usize, Value)]>,
    planner: &Planner<'_>,
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.exit_rules[exit_idx];
    let mut body: Vec<PlanLiteral> = Vec::new();
    match persistent_consts {
        None => {
            body.push(PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(AUX_SEEN1),
                terms: head_terms_at(sep, rule, fixed_cols),
            }));
        }
        Some(consts) => {
            for &(pos, value) in consts {
                let var = rule.head.terms[pos];
                let const_term = value_to_term(value);
                body.push(PlanLiteral::Eq(var, const_term));
            }
        }
    }
    // Pin the prefix: the seed join is sharded over `seen_1`, and the
    // selection equalities of a persistent plan bind before anything else.
    let pinned = body.len();
    body.extend(rule.body.iter().map(exit_literal));
    let output = head_terms_at(sep, rule, rest_cols);
    ConjPlan::compile(&[], &planner.order(&[], &body, pinned), &output)
}

/// Tracked variant of [`phase1_step`]: output = parent carry tuple ++
/// produced tuple.
fn phase1_step_tracked(
    sep: &SeparableRecursion,
    rule_idx: usize,
    cols: &[usize],
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.recursive_rules[rule_idx];
    let carry_terms = head_terms_at(sep, rule, cols);
    let mut body = vec![PlanLiteral::Atom(PlanAtom {
        rel: RelKey::Aux(AUX_CARRY1),
        terms: carry_terms.clone(),
    })];
    body.extend(nonrecursive_literals(sep, rule));
    let mut output = carry_terms;
    output.extend(body_terms_at(sep, rule, cols)?);
    ConjPlan::compile(&[], &body, &output)
}

/// Tracked variant of [`phase2_step`].
fn phase2_step_tracked(
    sep: &SeparableRecursion,
    rule_idx: usize,
    cols: &[usize],
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.recursive_rules[rule_idx];
    let carry_terms = body_terms_at(sep, rule, cols)?;
    let mut body = vec![PlanLiteral::Atom(PlanAtom {
        rel: RelKey::Aux(AUX_CARRY2),
        terms: carry_terms.clone(),
    })];
    body.extend(nonrecursive_literals(sep, rule));
    let mut output = carry_terms;
    output.extend(head_terms_at(sep, rule, cols));
    ConjPlan::compile(&[], &body, &output)
}

/// Tracked variant of [`seed_step`]: output = seen_1 tuple (class-selection
/// plans only) ++ produced carry_2 tuple.
fn seed_step_tracked(
    sep: &SeparableRecursion,
    exit_idx: usize,
    fixed_cols: &[usize],
    rest_cols: &[usize],
    persistent_consts: Option<&[(usize, Value)]>,
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.exit_rules[exit_idx];
    let mut body: Vec<PlanLiteral> = Vec::new();
    let mut output: Vec<Term> = Vec::new();
    match persistent_consts {
        None => {
            let seen_terms = head_terms_at(sep, rule, fixed_cols);
            body.push(PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Aux(AUX_SEEN1),
                terms: seen_terms.clone(),
            }));
            output.extend(seen_terms);
        }
        Some(consts) => {
            for &(pos, value) in consts {
                body.push(PlanLiteral::Eq(rule.head.terms[pos], value_to_term(value)));
            }
        }
    }
    body.extend(rule.body.iter().map(exit_literal));
    output.extend(head_terms_at(sep, rule, rest_cols));
    ConjPlan::compile(&[], &body, &output)
}

/// Maps one exit-rule body literal to its plan form. Exit rules of a
/// separable recursion are pure positive conjunctions (guaranteed by
/// `RecursiveDef::extract`); the negation/sum arms only preserve meaning
/// for completeness.
fn exit_literal(lit: &Literal) -> PlanLiteral {
    match lit {
        Literal::Atom(a) => {
            PlanLiteral::Atom(PlanAtom { rel: RelKey::Pred(a.pred), terms: a.terms.clone() })
        }
        Literal::Eq(l, r) => PlanLiteral::Eq(*l, *r),
        Literal::Neg(a) => {
            PlanLiteral::Neg(PlanAtom { rel: RelKey::Pred(a.pred), terms: a.terms.clone() })
        }
        Literal::Sum(d, x, y) => PlanLiteral::Sum(*d, *x, *y),
    }
}

fn value_to_term(value: Value) -> Term {
    if let Some(n) = value.as_int() {
        Term::int(n)
    } else {
        Term::sym(value.as_sym().expect("value is sym or int"))
    }
}

fn build_class_plan(
    sep: &SeparableRecursion,
    class_idx: usize,
    planner: &Planner<'_>,
) -> Result<SeparablePlan, EvalError> {
    let class = sep
        .classes
        .get(class_idx)
        .ok_or_else(|| EvalError::Planning(format!("no equivalence class {class_idx}")))?;
    if class.columns.is_empty() {
        return Err(EvalError::Planning(
            "cannot select on an equivalence class with no columns".into(),
        ));
    }
    let fixed_cols = class.columns.clone();
    let rest_cols: Vec<usize> = (0..sep.arity).filter(|c| !fixed_cols.contains(c)).collect();

    let mut p1_steps = Vec::new();
    let mut p1_tracked = Vec::new();
    for &ri in &class.rules {
        p1_steps.push((ri, phase1_step(sep, ri, &fixed_cols, planner)?));
        p1_tracked.push((ri, phase1_step_tracked(sep, ri, &fixed_cols)?));
    }
    let mut seed = Vec::new();
    let mut tracked_seed = Vec::new();
    for ei in 0..sep.exit_rules.len() {
        seed.push(seed_step(sep, ei, &fixed_cols, &rest_cols, None, planner)?);
        tracked_seed.push(seed_step_tracked(sep, ei, &fixed_cols, &rest_cols, None)?);
    }
    let mut p2_steps = Vec::new();
    let mut p2_tracked = Vec::new();
    for (ci, other) in sep.classes.iter().enumerate() {
        if ci == class_idx {
            continue;
        }
        for &ri in &other.rules {
            p2_steps.push((ri, phase2_step(sep, ri, &rest_cols, planner)?));
            p2_tracked.push((ri, phase2_step_tracked(sep, ri, &rest_cols)?));
        }
    }
    p2_steps.sort_by_key(|(ri, _)| *ri);
    p2_tracked.sort_by_key(|(ri, _)| *ri);
    Ok(SeparablePlan {
        pred: sep.pred,
        arity: sep.arity,
        phase1: Some(Phase1Plan {
            class: class_idx,
            columns: fixed_cols.clone(),
            steps: p1_steps,
            tracked_steps: p1_tracked,
        }),
        seed,
        tracked_seed,
        phase2: Phase2Plan { columns: rest_cols, steps: p2_steps, tracked_steps: p2_tracked },
        fixed_cols,
    })
}

fn build_persistent_plan(
    sep: &SeparableRecursion,
    bound: &[(usize, Value)],
    planner: &Planner<'_>,
) -> Result<SeparablePlan, EvalError> {
    if bound.is_empty() {
        return Err(EvalError::Planning("persistent selection with no constants".into()));
    }
    for &(pos, _) in bound {
        if !sep.persistent.contains(&pos) {
            return Err(EvalError::Planning(format!("column {pos} is not persistent")));
        }
    }
    let fixed_cols: Vec<usize> = bound.iter().map(|&(p, _)| p).collect();
    let rest_cols: Vec<usize> = (0..sep.arity).filter(|c| !fixed_cols.contains(c)).collect();
    let mut seed = Vec::new();
    let mut tracked_seed = Vec::new();
    for ei in 0..sep.exit_rules.len() {
        seed.push(seed_step(sep, ei, &fixed_cols, &rest_cols, Some(bound), planner)?);
        tracked_seed.push(seed_step_tracked(sep, ei, &fixed_cols, &rest_cols, Some(bound))?);
    }
    let mut p2_steps = Vec::new();
    let mut p2_tracked = Vec::new();
    for class in &sep.classes {
        for &ri in &class.rules {
            p2_steps.push((ri, phase2_step(sep, ri, &rest_cols, planner)?));
            p2_tracked.push((ri, phase2_step_tracked(sep, ri, &rest_cols)?));
        }
    }
    p2_steps.sort_by_key(|(ri, _)| *ri);
    p2_tracked.sort_by_key(|(ri, _)| *ri);
    Ok(SeparablePlan {
        pred: sep.pred,
        arity: sep.arity,
        phase1: None,
        seed,
        tracked_seed,
        phase2: Phase2Plan { columns: rest_cols, steps: p2_steps, tracked_steps: p2_tracked },
        fixed_cols,
    })
}

impl SeparablePlan {
    /// Renders the instantiated algorithm in the paper's pseudocode style
    /// (compare Figures 3 and 4).
    pub fn render(&self, sep: &SeparableRecursion, interner: &sepra_ast::Interner) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let col_list = |cols: &[usize]| -> String {
            cols.iter()
                .map(|&c| interner.resolve(sep.canon_vars[c]).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        if let Some(p1) = &self.phase1 {
            let _ = writeln!(out, "carry_1({});", col_list(&p1.columns));
            let _ = writeln!(out, "seen_1 := carry_1;");
            let _ = writeln!(out, "while carry_1 not empty do");
            let terms: Vec<String> = p1
                .steps
                .iter()
                .map(|(ri, _)| {
                    let rule = &sep.recursive_rules[*ri];
                    let units: Vec<String> = rule
                        .body
                        .iter()
                        .filter(|l| !matches!(l, Literal::Atom(a) if a.pred == sep.pred))
                        .map(|l| sepra_ast::pretty::literal_to_string(l, interner))
                        .collect();
                    format!("carry_1 & {}", units.join(" & "))
                })
                .collect();
            let _ = writeln!(out, "  carry_1 := {};", terms.join(" u "));
            let _ = writeln!(out, "  carry_1 := carry_1 - seen_1;");
            let _ = writeln!(out, "  seen_1 := seen_1 u carry_1;");
            let _ = writeln!(out, "endwhile;");
        } else {
            let _ = writeln!(out, "seen_1({});", col_list(&self.fixed_cols));
        }
        let exit_bodies: Vec<String> = sep
            .exit_rules
            .iter()
            .map(|rule| {
                rule.body
                    .iter()
                    .map(|l| sepra_ast::pretty::literal_to_string(l, interner))
                    .collect::<Vec<_>>()
                    .join(" & ")
            })
            .collect();
        let _ = writeln!(
            out,
            "carry_2({}) := seen_1 & {};",
            col_list(&self.phase2.columns),
            exit_bodies.join(" u seen_1 & ")
        );
        let _ = writeln!(out, "seen_2 := carry_2;");
        if !self.phase2.steps.is_empty() {
            let _ = writeln!(out, "while carry_2 not empty do");
            let terms: Vec<String> = self
                .phase2
                .steps
                .iter()
                .map(|(ri, _)| {
                    let rule = &sep.recursive_rules[*ri];
                    let units: Vec<String> = rule
                        .body
                        .iter()
                        .filter(|l| !matches!(l, Literal::Atom(a) if a.pred == sep.pred))
                        .map(|l| sepra_ast::pretty::literal_to_string(l, interner))
                        .collect();
                    format!("carry_2 & {}", units.join(" & "))
                })
                .collect();
            let _ = writeln!(out, "  carry_2 := {};", terms.join(" u "));
            let _ = writeln!(out, "  carry_2 := carry_2 - seen_2;");
            let _ = writeln!(out, "  seen_2 := seen_2 u carry_2;");
            let _ = writeln!(out, "endwhile;");
        }
        let _ = writeln!(out, "ans := seen_2;");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use sepra_ast::{parse_program, parse_query, Interner};

    fn setup(src: &str, pred: &str) -> (SeparableRecursion, Interner) {
        let mut i = Interner::new();
        let program = parse_program(src, &mut i).unwrap();
        let p = i.intern(pred);
        let sep = detect_in_program(&program, p, &mut i).unwrap();
        (sep, i)
    }

    const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    const EX_1_2: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    #[test]
    fn classify_example_1_1() {
        let (sep, mut i) = setup(EX_1_1, "buys");
        let q1 = parse_query("buys(tom, Y)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q1), SelectionKind::FullClass { class: 0 });
        // Column 1 is persistent in Example 1.1.
        let q2 = parse_query("buys(X, widget)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q2), SelectionKind::Persistent { bound: vec![1] });
        let q3 = parse_query("buys(X, Y)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q3), SelectionKind::NoSelection);
    }

    #[test]
    fn classify_example_1_2_both_columns_are_class_selections() {
        let (sep, mut i) = setup(EX_1_2, "buys");
        let q1 = parse_query("buys(tom, Y)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q1), SelectionKind::FullClass { class: 0 });
        let q2 = parse_query("buys(X, widget)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q2), SelectionKind::FullClass { class: 1 });
    }

    #[test]
    fn classify_partial_selection_example_2_4() {
        let (sep, mut i) = setup(
            "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
             t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
             t(X, Y, Z) :- t0(X, Y, Z).\n",
            "t",
        );
        // t(c, Y, Z)? binds only one of class 0's two columns.
        let q = parse_query("t(c, Y, Z)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q), SelectionKind::Partial { class: 0 });
        // t(c, d, Z)? fully binds class 0.
        let q2 = parse_query("t(c, d, Z)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q2), SelectionKind::FullClass { class: 0 });
        // t(X, Y, w)? fully binds class 1.
        let q3 = parse_query("t(X, Y, w)?", &mut i).unwrap();
        assert_eq!(classify_selection(&sep, &q3), SelectionKind::FullClass { class: 1 });
    }

    #[test]
    fn class_plan_shapes_match_figure_3() {
        let (sep, i) = setup(EX_1_1, "buys");
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        let p1 = plan.phase1.as_ref().unwrap();
        assert_eq!(p1.columns, vec![0]);
        assert_eq!(p1.steps.len(), 2); // friend and idol members of f_1
        assert_eq!(plan.seed.len(), 1);
        assert!(plan.phase2.steps.is_empty()); // no other classes
        assert_eq!(plan.phase2.columns, vec![1]);
        let rendered = plan.render(&sep, &i);
        assert!(rendered.contains("while carry_1 not empty do"), "{rendered}");
        assert!(rendered.contains("friend"), "{rendered}");
        assert!(rendered.contains("idol"), "{rendered}");
        assert!(rendered.contains("ans := seen_2;"), "{rendered}");
        // Figure 3 has no second while loop.
        assert!(!rendered.contains("while carry_2"), "{rendered}");
    }

    #[test]
    fn class_plan_shapes_match_figure_4() {
        let (sep, i) = setup(EX_1_2, "buys");
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        assert_eq!(plan.phase1.as_ref().unwrap().steps.len(), 1);
        assert_eq!(plan.phase2.steps.len(), 1); // cheaper rule
        let rendered = plan.render(&sep, &i);
        assert!(rendered.contains("while carry_1 not empty do"), "{rendered}");
        assert!(rendered.contains("while carry_2 not empty do"), "{rendered}");
        assert!(rendered.contains("cheaper"), "{rendered}");
    }

    #[test]
    fn persistent_plan_has_no_phase1() {
        let (sep, mut i) = setup(EX_1_1, "buys");
        let widget = i.intern("widget");
        let plan =
            build_plan(&sep, &PlanSelection::Persistent(vec![(1, Value::sym(widget))])).unwrap();
        assert!(plan.phase1.is_none());
        assert_eq!(plan.fixed_cols, vec![1]);
        assert_eq!(plan.phase2.columns, vec![0]);
        // All recursive rules participate upward.
        assert_eq!(plan.phase2.steps.len(), 2);
        let rendered = plan.render(&sep, &i);
        assert!(rendered.starts_with("seen_1("), "{rendered}");
    }

    #[test]
    fn empty_class_cannot_be_selected() {
        let (sep, _) = setup(
            "t(X, Y) :- flag(Z), t(X, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        );
        assert!(build_plan(&sep, &PlanSelection::Class(0)).is_err());
    }

    #[test]
    fn cost_based_plans_pin_the_carry_and_reorder_the_rest() {
        use sepra_eval::{PlanMode, PlannerStats, Step};
        use sepra_storage::Database;
        // Adversarial source order: the unselective `big` scan is written
        // before the `link` probe that the carry can key.
        let mut db = Database::new();
        for i in 0..200 {
            db.insert_named("big", &[&format!("z{i}"), &format!("w{i}")]).unwrap();
        }
        db.load_fact_text("link(a, z5). t0(w5, ans).").unwrap();
        let (sep, _) = {
            // Share the database's interner so stats symbols line up.
            let mut i = db.interner().clone();
            let program = parse_program(
                "t(X, Y) :- big(Z, W), link(X, Z), t(W, Y).\nt(X, Y) :- t0(X, Y).\n",
                &mut i,
            )
            .unwrap();
            let p = i.intern("t");
            (detect_in_program(&program, p, &mut i).unwrap(), i)
        };
        let scan_order = |plan: &SeparablePlan| -> Vec<RelKey> {
            plan.phase1.as_ref().unwrap().steps[0]
                .1
                .steps
                .iter()
                .filter_map(|s| match s {
                    Step::Scan { rel, .. } => Some(*rel),
                    _ => None,
                })
                .collect()
        };
        let big = db.intern("big");
        let link = db.intern("link");

        let source = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        assert_eq!(
            scan_order(&source),
            vec![RelKey::Aux(AUX_CARRY1), RelKey::Pred(big), RelKey::Pred(link)]
        );

        let stats = PlannerStats::from_database(&db);
        let planner = sepra_eval::Planner::new(PlanMode::CostBased, Some(&stats));
        let costed = build_plan_with(&sep, &PlanSelection::Class(0), &planner).unwrap();
        assert_eq!(
            scan_order(&costed),
            vec![RelKey::Aux(AUX_CARRY1), RelKey::Pred(link), RelKey::Pred(big)],
            "carry stays pinned first; the selective probe moves ahead of the big scan"
        );
        assert!(planner.counters().0 >= 1);
    }

    #[test]
    fn persistent_plan_validates_positions() {
        let (sep, mut i) = setup(EX_1_2, "buys");
        let c = i.intern("c");
        // Example 1.2 has no persistent columns.
        assert!(build_plan(&sep, &PlanSelection::Persistent(vec![(0, Value::sym(c))])).is_err());
    }
}
