//! Compiling separable recursions.
//!
//! This crate implements the contribution of Jeffrey F. Naughton,
//! *Compiling Separable Recursions* (Princeton CS-TR-140-88 / SIGMOD 1988):
//!
//! * [`mod detect`](mod@crate::detect) — deciding whether a linear recursive definition is a
//!   *separable recursion* (Definition 2.4): no shifting variables, matching
//!   head/body column sets, equal-or-disjoint equivalence classes, and
//!   connected nonrecursive rule bodies. Detection is polynomial in the size
//!   of the *rules* (Section 3.1), never the database.
//! * [`plan`] — classification of selections (full vs. partial,
//!   Definition 2.7) and instantiation of the evaluation schema of Figure 2
//!   into an executable [`SeparablePlan`]: a downward carry/seen closure
//!   over the selected equivalence class, a seed join with the exit rules,
//!   and an upward closure over the remaining classes.
//! * [`exec`] — the carry/seen loop executor, with the deduplication
//!   (`carry := carry - seen`) that Lemma 3.4 relies on for termination,
//!   plus an ablation switch that disables it.
//! * [`evaluate`] — the end-to-end evaluator, including the Lemma 2.1
//!   rewrite that decomposes a *partial* selection into a union of full
//!   selections over the derived `t_part` / `t_full` recursions.
//!
//! On the paper's example queries this algorithm materializes only
//! relations of size `O(n)`, where Generalized Magic Sets is `Ω(n²)` and
//! Generalized Counting `Ω(2ⁿ)` (Section 4) — see the `sepra-bench` crate
//! for the reproduction of those comparisons.

pub mod bounded;
pub mod cache;
pub mod detect;
pub mod evaluate;
pub mod exec;
pub mod justify;
pub mod plan;

pub use bounded::{analyze, analyze_with_options, BoundedOptions, BoundedRecursion, RuleStatus};
pub use cache::PlanCache;
pub use detect::{
    detect, detect_with_options, DetectOptions, EquivClass, NotSeparable, SeparableRecursion,
    Violation,
};
pub use evaluate::{SeparableEvaluator, SeparableOutcome};
pub use exec::ExecOptions;
pub use justify::{Justification, JustificationTracker};
pub use plan::{classify_selection, SelectionKind, SeparablePlan};
