//! Caching of compiled Figure 2 plans across queries.
//!
//! Building a [`SeparablePlan`] recompiles every recursive rule's join
//! plans; for a fixed program the result depends only on the recursion and
//! the selected class, so a query server answering many selections on the
//! same predicate can reuse one compiled plan. [`PlanCache`] keys class
//! plans by `(predicate, class index)` — the bound-column signature, since
//! a class determines its column set. Persistent-selection plans embed the
//! query's constants and are never cached.
//!
//! The cache is safe to share across threads (interior mutability behind a
//! mutex), but only for plans whose symbols were interned before the
//! sharing began: the Lemma 2.1 decomposition derives sub-recursions that
//! reuse the predicate symbol with a different class structure, so
//! decomposed branches must bypass the cache (see
//! [`evaluate`](crate::evaluate)).
//!
//! # Generation invalidation
//!
//! A compiled plan is valid for the database *generation* it was built
//! against: a plan embeds nothing from the EDB, but the detection results
//! and materialized support relations it is resolved alongside do, so the
//! engine treats "program or EDB changed" as one event. The rule is:
//! every consumer calls [`PlanCache::validate_generation`] with its current
//! generation before serving cached plans; when the generation differs from
//! the one the cache last saw, all entries are dropped and the new
//! generation is recorded. A post-mutation query therefore can never be
//! answered by a pre-mutation plan — the first lookup after a mutation is
//! forced to miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sepra_ast::Sym;
use sepra_eval::EvalError;
use sepra_storage::FxHashMap;

use crate::detect::SeparableRecursion;
use crate::plan::{build_plan, PlanSelection, SeparablePlan};

/// A thread-safe cache of compiled class-selection plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<FxHashMap<(Sym, usize), Arc<SeparablePlan>>>,
    /// The database/program generation the cached plans were built against
    /// (see the module docs on generation invalidation).
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled plan for selecting `class` of `sep`, building and
    /// memoizing it on first use.
    pub fn class_plan(
        &self,
        sep: &SeparableRecursion,
        class: usize,
    ) -> Result<Arc<SeparablePlan>, EvalError> {
        let key = (sep.pred, class);
        if let Some(plan) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock; racing builders produce identical plans
        // and the first insert wins.
        let plan = Arc::new(build_plan(sep, &PlanSelection::Class(class))?);
        let mut plans = self.plans.lock().expect("plan cache lock");
        Ok(Arc::clone(plans.entry(key).or_insert(plan)))
    }

    /// Ensures the cache only serves plans built for `generation`:
    /// if it differs from the generation the cache last validated against,
    /// every entry is dropped (and the new generation recorded) so the next
    /// lookup recompiles. Returns `true` when entries were invalidated.
    ///
    /// Consumers must call this *before* [`PlanCache::class_plan`] whenever
    /// their program or EDB generation may have moved — see the module docs.
    pub fn validate_generation(&self, generation: u64) -> bool {
        // Hold the plans lock across the generation swap so a concurrent
        // `class_plan` cannot insert a stale plan after the clear.
        let mut plans = self.plans.lock().expect("plan cache lock");
        if self.generation.swap(generation, Ordering::Relaxed) == generation {
            return false;
        }
        let stale = !plans.is_empty();
        plans.clear();
        stale
    }

    /// The generation the cache last validated against.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn entries(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile a plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use sepra_ast::parse_program;
    use sepra_storage::Database;

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let mut db = Database::new();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();

        let cache = PlanCache::new();
        let a = cache.class_plan(&sep, 0).unwrap();
        let b = cache.class_plan(&sep, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn generation_change_drops_cached_plans() {
        let mut db = Database::new();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();

        let cache = PlanCache::new();
        assert!(!cache.validate_generation(7)); // empty: nothing to drop
        assert_eq!(cache.generation(), 7);
        let a = cache.class_plan(&sep, 0).unwrap();
        assert!(!cache.validate_generation(7)); // same generation: keep
        assert_eq!(cache.entries(), 1);
        assert!(cache.validate_generation(8)); // moved: clear
        assert_eq!(cache.entries(), 0);
        let b = cache.class_plan(&sep, 0).unwrap();
        assert!(!Arc::ptr_eq(&a, &b)); // rebuilt, not served stale
        assert_eq!(cache.misses(), 2);
    }
}
