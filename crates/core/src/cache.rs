//! Caching of compiled Figure 2 plans across queries.
//!
//! Building a [`SeparablePlan`] recompiles every recursive rule's join
//! plans; for a fixed program the result depends only on the recursion and
//! the selected class, so a query server answering many selections on the
//! same predicate can reuse one compiled plan. [`PlanCache`] keys class
//! plans by `(predicate, class index)` — the bound-column signature, since
//! a class determines its column set. Persistent-selection plans embed the
//! query's constants and are never cached.
//!
//! The cache is safe to share across threads (interior mutability behind a
//! mutex), but only for plans whose symbols were interned before the
//! sharing began: the Lemma 2.1 decomposition derives sub-recursions that
//! reuse the predicate symbol with a different class structure, so
//! decomposed branches must bypass the cache (see
//! [`evaluate`](crate::evaluate)).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sepra_ast::Sym;
use sepra_eval::EvalError;
use sepra_storage::FxHashMap;

use crate::detect::SeparableRecursion;
use crate::plan::{build_plan, PlanSelection, SeparablePlan};

/// A thread-safe cache of compiled class-selection plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<FxHashMap<(Sym, usize), Arc<SeparablePlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled plan for selecting `class` of `sep`, building and
    /// memoizing it on first use.
    pub fn class_plan(
        &self,
        sep: &SeparableRecursion,
        class: usize,
    ) -> Result<Arc<SeparablePlan>, EvalError> {
        let key = (sep.pred, class);
        if let Some(plan) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock; racing builders produce identical plans
        // and the first insert wins.
        let plan = Arc::new(build_plan(sep, &PlanSelection::Class(class))?);
        let mut plans = self.plans.lock().expect("plan cache lock");
        Ok(Arc::clone(plans.entry(key).or_insert(plan)))
    }

    /// Number of cached plans.
    pub fn entries(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile a plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use sepra_ast::parse_program;
    use sepra_storage::Database;

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let mut db = Database::new();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();

        let cache = PlanCache::new();
        let a = cache.class_plan(&sep, 0).unwrap();
        let b = cache.class_plan(&sep, 0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
