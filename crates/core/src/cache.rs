//! Caching of compiled Figure 2 plans across queries.
//!
//! Building a [`SeparablePlan`] recompiles every recursive rule's join
//! plans; for a fixed program the result depends only on the recursion,
//! the selected class, and the relation statistics the planner ordered its
//! conjunctions against, so a query server answering many selections on
//! the same predicate can reuse one compiled plan. [`PlanCache`] keys
//! class plans by `(predicate, class index)` — the bound-column signature,
//! since a class determines its column set. Persistent-selection plans
//! embed the query's constants and are never cached.
//!
//! The cache is safe to share across threads (interior mutability behind a
//! mutex), but only for plans whose symbols were interned before the
//! sharing began: the Lemma 2.1 decomposition derives sub-recursions that
//! reuse the predicate symbol with a different class structure, so
//! decomposed branches must bypass the cache (see
//! [`evaluate`](crate::evaluate)).
//!
//! # Generation invalidation and statistics drift
//!
//! A compiled plan embeds no EDB *contents*, but its join orders were
//! chosen from the EDB's *statistics*, so a plan is only as good as the
//! cardinalities it was planned against. Every cache entry therefore
//! records a snapshot of the row counts of the EDB predicates its plans
//! scan, taken at build time. Consumers call
//! [`PlanCache::validate_generation`] with their current generation before
//! serving cached plans:
//!
//! * generation unchanged — the EDB is bit-identical (the engine bumps the
//!   generation on every effective mutation), every entry is kept;
//! * generation moved, EDB handle supplied — entries whose observed row
//!   counts stayed within [`DRIFT_FACTOR`] of their snapshot are kept
//!   (the plan is still well-ordered; recompiling would yield the same
//!   joins), drifted entries are dropped and counted as
//!   [`drift invalidations`](PlanCache::drift_invalidations);
//! * generation moved, no EDB handle — the *program* may have changed, so
//!   the structural assumptions behind every entry are suspect: all
//!   entries are dropped, as in the pre-statistics design.
//!
//! A retained entry keeps its original snapshot, so many small mutations
//! accumulate: once the cardinalities have doubled (or halved) relative to
//! plan time, the next validation forces a replan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sepra_ast::Sym;
use sepra_eval::{EvalError, Planner, RelKey, Step};
use sepra_storage::{Database, FxHashMap};

use crate::detect::SeparableRecursion;
use crate::plan::{build_plan_with, PlanSelection, SeparablePlan};

/// A cached plan is dropped once any relation it scans has grown or shrunk
/// by more than this factor relative to the row count it was planned
/// against (smoothed by +1 so empty relations do not divide by zero).
pub const DRIFT_FACTOR: f64 = 2.0;

#[derive(Debug)]
struct CacheEntry {
    plan: Arc<SeparablePlan>,
    /// `(predicate, rows at build time)` for every EDB predicate the
    /// plan's conjunctions scan.
    snapshot: Vec<(Sym, u64)>,
}

/// A thread-safe cache of compiled class-selection plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<FxHashMap<(Sym, usize), CacheEntry>>,
    /// The database/program generation the cached plans were built against
    /// (see the module docs on generation invalidation).
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    drift_invalidations: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The compiled plan for selecting `class` of `sep`, building and
    /// memoizing it on first use. `planner` orders the conjunctions of a
    /// freshly built plan; `db` supplies the row-count snapshot recorded
    /// for drift validation.
    pub fn class_plan(
        &self,
        sep: &SeparableRecursion,
        class: usize,
        planner: &Planner<'_>,
        db: &Database,
    ) -> Result<Arc<SeparablePlan>, EvalError> {
        let key = (sep.pred, class);
        if let Some(entry) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&entry.plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock; racing builders produce identical plans
        // and the first insert wins.
        let plan = Arc::new(build_plan_with(sep, &PlanSelection::Class(class), planner)?);
        let snapshot = snapshot_for(&plan, db);
        let mut plans = self.plans.lock().expect("plan cache lock");
        let entry = plans.entry(key).or_insert(CacheEntry { plan, snapshot });
        Ok(Arc::clone(&entry.plan))
    }

    /// Ensures the cache only serves plans that are still valid at
    /// `generation` (see the module docs): when the generation moved,
    /// entries are either re-checked against the statistics of `db`
    /// (drifted ones dropped) or — with no database handle, meaning the
    /// program may have changed — all dropped. Returns `true` when any
    /// entry was invalidated.
    ///
    /// Consumers must call this *before* [`PlanCache::class_plan`] whenever
    /// their program or EDB generation may have moved.
    pub fn validate_generation(&self, generation: u64, db: Option<&Database>) -> bool {
        // Hold the plans lock across the generation swap so a concurrent
        // `class_plan` cannot insert a stale plan after the clear.
        let mut plans = self.plans.lock().expect("plan cache lock");
        if self.generation.swap(generation, Ordering::Relaxed) == generation {
            return false;
        }
        let before = plans.len();
        match db {
            None => plans.clear(),
            Some(db) => plans.retain(|_, entry| {
                entry.snapshot.iter().all(|&(pred, then)| {
                    let now = db.relation(pred).map_or(0, |r| r.len() as u64);
                    within_drift(then, now)
                })
            }),
        }
        let dropped = before - plans.len();
        if db.is_some() {
            self.drift_invalidations.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped > 0
    }

    /// The generation the cache last validated against.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn entries(&self) -> usize {
        self.plans.lock().expect("plan cache lock").len()
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile a plan.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached plans dropped because a scanned relation's row
    /// count drifted past [`DRIFT_FACTOR`] since the plan was built.
    pub fn drift_invalidations(&self) -> u64 {
        self.drift_invalidations.load(Ordering::Relaxed)
    }
}

fn within_drift(then: u64, now: u64) -> bool {
    let a = (then + 1) as f64;
    let b = (now + 1) as f64;
    let ratio = if a > b { a / b } else { b / a };
    ratio <= DRIFT_FACTOR
}

/// Row counts of every EDB predicate scanned by any conjunction of `plan`
/// (the tracked variants scan the same predicates).
fn snapshot_for(plan: &SeparablePlan, db: &Database) -> Vec<(Sym, u64)> {
    let mut preds: Vec<Sym> = Vec::new();
    let conjs = plan
        .phase1
        .iter()
        .flat_map(|p1| p1.steps.iter().map(|(_, c)| c))
        .chain(plan.seed.iter())
        .chain(plan.phase2.steps.iter().map(|(_, c)| c));
    for conj in conjs {
        for step in &conj.steps {
            if let Step::Scan { rel: RelKey::Pred(p), .. } = step {
                if !preds.contains(p) {
                    preds.push(*p);
                }
            }
        }
    }
    preds.into_iter().map(|p| (p, db.relation(p).map_or(0, |r| r.len() as u64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use sepra_ast::parse_program;
    use sepra_eval::{PlanMode, PlannerStats};

    fn setup(db: &mut Database) -> SeparableRecursion {
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        detect_in_program(&program, t, db.interner_mut()).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let mut db = Database::new();
        let sep = setup(&mut db);

        let cache = PlanCache::new();
        let planner = Planner::source_order();
        let a = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        let b = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn generation_change_without_database_drops_cached_plans() {
        let mut db = Database::new();
        let sep = setup(&mut db);

        let cache = PlanCache::new();
        let planner = Planner::source_order();
        assert!(!cache.validate_generation(7, None)); // empty: nothing to drop
        assert_eq!(cache.generation(), 7);
        let a = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        assert!(!cache.validate_generation(7, None)); // same generation: keep
        assert_eq!(cache.entries(), 1);
        assert!(cache.validate_generation(8, None)); // moved: clear
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.drift_invalidations(), 0); // program path, not drift
        let b = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        assert!(!Arc::ptr_eq(&a, &b)); // rebuilt, not served stale
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn small_mutations_keep_plans_but_drift_replans() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c). e(c, d). e(d, e). e(e, f). e(f, g).").unwrap();
        let sep = setup(&mut db);
        let pstats = PlannerStats::from_database(&db);
        let planner = Planner::new(PlanMode::CostBased, Some(&pstats));

        let cache = PlanCache::new();
        cache.validate_generation(1, Some(&db));
        let a = cache.class_plan(&sep, 0, &planner, &db).unwrap();

        // One more edge: 7 rows vs 6 planned — within the drift factor.
        db.load_fact_text("e(g, h).").unwrap();
        assert!(!cache.validate_generation(2, Some(&db)));
        assert_eq!(cache.entries(), 1);
        let b = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "small mutation must not force a replan");

        // Bulk load far past the factor-2 threshold: the entry is dropped.
        for i in 0..40 {
            db.load_fact_text(&format!("e(x{i}, y{i}).")).unwrap();
        }
        assert!(cache.validate_generation(3, Some(&db)));
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.drift_invalidations(), 1);
        let c = cache.class_plan(&sep, 0, &planner, &db).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "drifted plan must be rebuilt");
    }
}
