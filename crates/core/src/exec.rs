//! The carry/seen loop executor for compiled separable plans.
//!
//! Executes the schema of Figure 2 directly over storage relations:
//!
//! ```text
//! 1) init carry_1;                     (caller-provided seeds)
//! 2) seen_1 := carry_1;
//! 3) while carry_1 not empty do
//! 4)   carry_1 := f_1(carry_1);        (union of per-rule join plans)
//! 5)   carry_1 := carry_1 - seen_1;    (the dedup Lemma 3.4 needs)
//! 6)   seen_1 := seen_1 u carry_1;
//! 7) endwhile;
//! 8) carry_2 := g_2(seen_1);           (seed plans over the exit rules)
//! ...                                  (the same loop for carry_2/seen_2)
//! 15) ans := seen_2;
//! ```
//!
//! [`ExecOptions::dedup`] can disable line 5 for the termination ablation
//! (E8b in EXPERIMENTS.md): without the difference, cyclic data keeps the
//! carry nonempty forever and the executor reports divergence at
//! `max_iterations` instead of looping — demonstrating that the `seen`
//! difference is exactly what Lemma 3.4's termination proof uses.

use sepra_ast::Sym;
use sepra_eval::{
    sharded_delta_round, Budget, ConjPlan, EvalError, IndexCache, PlanMode, RelKey, RelStore,
    MIN_SHARD_TUPLES,
};
use sepra_storage::{Database, EvalStats, FxHashMap, Relation, Tuple};

use crate::justify::{JustificationTracker, Origin};
use crate::plan::{SeparablePlan, AUX_CARRY1, AUX_CARRY2, AUX_SEEN1};

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Apply `carry := carry - seen` each iteration (line 5 / line 12 of
    /// Figure 2). Disabling this is unsound on cyclic data — kept only for
    /// the ablation benchmark.
    pub dedup: bool,
    /// Abort with [`EvalError::Diverged`] after this many loop iterations.
    pub max_iterations: usize,
    /// Build and probe hash indexes for keyed scans. Disabling falls back
    /// to filtered full scans — the index ablation (E8c), isolating how
    /// much of the algorithm's speed comes from the storage layer rather
    /// than from the compilation itself.
    pub use_indexes: bool,
    /// Number of worker threads used to expand each iteration's carry (and
    /// the seed join over `seen_1`). `1` (the default) runs the exact
    /// serial Figure 2 loop; higher values shard the carry across that
    /// many workers at each iteration barrier, which preserves the answer
    /// set because one iteration's expansions are independent. The index
    /// ablation (`use_indexes: false`) always runs serially, since
    /// workers index their shards and that would confound the ablation.
    pub threads: usize,
    /// Resource budget (deadline, tuple/iteration caps, cancellation)
    /// checked at every closure-iteration barrier. Unlimited by default.
    pub budget: Budget,
    /// How the nonrecursive conjunctions of compiled plans are ordered
    /// (see [`sepra_eval::planner`]): cost-based from relation statistics
    /// by default, or exactly as written for the E13 baseline. The carry /
    /// seen scan that sharding relies on stays pinned first either way.
    pub plan_mode: PlanMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            dedup: true,
            max_iterations: 1_000_000,
            use_indexes: true,
            threads: 1,
            budget: Budget::default(),
            plan_mode: PlanMode::default(),
        }
    }
}

/// The raw result of running a plan: the two `seen` relations.
#[derive(Debug)]
pub struct RawOutcome {
    /// `seen_1` (over the phase-1 class columns); `None` for persistent
    /// selections.
    pub seen1: Option<Relation>,
    /// `seen_2` (over the phase-2 columns) — the answers before
    /// re-attaching the fixed columns.
    pub seen2: Relation,
}

/// Extra relations visible to plan execution in addition to the EDB —
/// used by the engine to supply materialized non-recursive IDB predicates.
pub type ExtraRelations = FxHashMap<Sym, Relation>;

/// Executes a compiled plan.
///
/// `init1` supplies the initial `carry_1` contents (the selection-constant
/// vector, or a seed set from the Lemma 2.1 decomposition) and must be
/// `Some` exactly when the plan has a phase 1.
pub fn execute_plan(
    plan: &SeparablePlan,
    db: &Database,
    extra: &ExtraRelations,
    init1: Option<Relation>,
    opts: &ExecOptions,
    stats: &mut EvalStats,
) -> Result<RawOutcome, EvalError> {
    let mut indexes = IndexCache::new();

    // Phase 1: downward closure over the selected class.
    let seen1 = match (&plan.phase1, init1) {
        (Some(p1), Some(init)) => {
            if init.arity() != p1.columns.len() {
                return Err(EvalError::Planning(format!(
                    "carry_1 seed arity {} does not match class width {}",
                    init.arity(),
                    p1.columns.len()
                )));
            }
            let plans: Vec<&ConjPlan> = p1.steps.iter().map(|(_, p)| p).collect();
            let seen = run_closure(
                &plans,
                AUX_CARRY1,
                init,
                db,
                extra,
                &mut indexes,
                opts,
                ("carry_1", "seen_1"),
                stats,
            )?;
            Some(seen)
        }
        (None, None) => None,
        (Some(_), None) => {
            return Err(EvalError::Planning("phase 1 requires initial carry_1 contents".into()))
        }
        (None, Some(_)) => {
            return Err(EvalError::Planning(
                "persistent-selection plan takes no carry_1 seeds".into(),
            ))
        }
    };

    let seen2 = run_seed_and_phase2(plan, db, extra, seen1.as_ref(), &mut indexes, opts, stats)?;
    Ok(RawOutcome { seen1, seen2 })
}

/// Runs the seed join (line 8 of Figure 2) and the phase-2 closure of a
/// compiled plan, given an already-computed `seen_1` (or `None` for
/// persistent-selection plans whose constants are baked into the seeds).
///
/// Exposed separately so alternative descent strategies — notably the
/// Generalized Counting baseline, whose descent materializes the `count`
/// relation instead of `seen_1` — can share the exit-join and upward
/// closure.
pub fn run_seed_and_phase2(
    plan: &SeparablePlan,
    db: &Database,
    extra: &ExtraRelations,
    seen1: Option<&Relation>,
    indexes: &mut IndexCache,
    opts: &ExecOptions,
    stats: &mut EvalStats,
) -> Result<Relation, EvalError> {
    // Seed: carry_2 := g_2(seen_1) over the exit rules.
    let mut carry2_init = Relation::new(plan.phase2.columns.len());
    {
        let mut store = base_store(db, extra);
        if let Some(seen1) = seen1 {
            store.bind(RelKey::Aux(AUX_SEEN1), seen1);
        }
        let mut scanned = 0u64;
        if opts.threads > 1 && opts.use_indexes && seen1.is_some() {
            // Shard the seed join over seen_1, exactly as the closure
            // loops shard over the carry.
            let seen1_key = RelKey::Aux(AUX_SEEN1);
            for seed_plan in &plan.seed {
                indexes.prepare_where(seed_plan, &store, |k| k != seen1_key);
            }
            let seed_refs: Vec<&ConjPlan> = plan.seed.iter().collect();
            let merged = sharded_delta_round(
                &seed_refs,
                seen1_key,
                &store,
                indexes,
                opts.threads,
                MIN_SHARD_TUPLES,
                &[],
                &opts.budget,
                &mut scanned,
            );
            // Workers skip plans once the budget is exhausted; a truncated
            // seed must not be mistaken for the full exit-rule join.
            opts.budget.check("seed join", stats.iterations, stats.tuples_inserted)?;
            for worker_bufs in merged {
                for buf in worker_bufs {
                    for t in buf {
                        let was_new = carry2_init.insert(t);
                        stats.record_insert(was_new);
                    }
                }
            }
        } else {
            for seed_plan in &plan.seed {
                if opts.use_indexes {
                    indexes.prepare(seed_plan, &store);
                }
                seed_plan.execute_counted(
                    &store,
                    indexes,
                    &[],
                    &mut |row| {
                        let was_new = carry2_init.insert(Tuple::new(row.to_vec()));
                        stats.record_insert(was_new);
                    },
                    &mut scanned,
                );
            }
        }
        stats.record_scanned(scanned as usize);
    }
    indexes.invalidate(RelKey::Aux(AUX_SEEN1));

    // Phase 2: upward closure over the remaining classes.
    let plans: Vec<&ConjPlan> = plan.phase2.steps.iter().map(|(_, p)| p).collect();
    run_closure(
        &plans,
        AUX_CARRY2,
        carry2_init,
        db,
        extra,
        indexes,
        opts,
        ("carry_2", "seen_2"),
        stats,
    )
}

/// Executes a compiled plan while recording tuple origins, so answers can
/// be justified (the paper's `J(a)` construction from Lemma 3.1). Behaves
/// exactly like [`execute_plan`] otherwise.
pub fn execute_plan_tracked(
    plan: &SeparablePlan,
    db: &Database,
    extra: &ExtraRelations,
    init1: Option<Relation>,
    opts: &ExecOptions,
    stats: &mut EvalStats,
    tracker: &mut JustificationTracker,
) -> Result<RawOutcome, EvalError> {
    let mut indexes = IndexCache::new();

    let seen1 = match (&plan.phase1, init1) {
        (Some(p1), Some(init)) => {
            if init.arity() != p1.columns.len() {
                return Err(EvalError::Planning(format!(
                    "carry_1 seed arity {} does not match class width {}",
                    init.arity(),
                    p1.columns.len()
                )));
            }
            for t in init.iter() {
                tracker.record_phase1(t.to_tuple(), Origin::Root);
            }
            let seen = run_closure_tracked(
                &p1.tracked_steps,
                AUX_CARRY1,
                init,
                db,
                extra,
                &mut indexes,
                opts,
                ("carry_1", "seen_1"),
                stats,
                &mut |child, parent, rule, tr: &mut JustificationTracker| {
                    tr.record_phase1(child, Origin::Phase1 { parent, rule });
                },
                tracker,
            )?;
            Some(seen)
        }
        (None, None) => None,
        (Some(_), None) => {
            return Err(EvalError::Planning("phase 1 requires initial carry_1 contents".into()))
        }
        (None, Some(_)) => {
            return Err(EvalError::Planning(
                "persistent-selection plan takes no carry_1 seeds".into(),
            ))
        }
    };

    // Tracked seed: rows are (seen_1 tuple ++ carry_2 tuple), or just the
    // carry_2 tuple for persistent selections.
    let seen1_width = plan.phase1.as_ref().map_or(0, |p1| p1.columns.len());
    let mut carry2_init = Relation::new(plan.phase2.columns.len());
    {
        let mut store = base_store(db, extra);
        if let Some(seen1) = &seen1 {
            store.bind(RelKey::Aux(AUX_SEEN1), seen1);
        }
        for (exit_idx, seed_plan) in plan.tracked_seed.iter().enumerate() {
            if opts.use_indexes {
                indexes.prepare(seed_plan, &store);
            }
            seed_plan.execute(&store, &indexes, &[], &mut |row| {
                let seen1_tuple =
                    (seen1_width > 0).then(|| Tuple::new(row[..seen1_width].to_vec()));
                let child = Tuple::new(row[seen1_width..].to_vec());
                let was_new = carry2_init.insert(child.clone());
                stats.record_insert(was_new);
                tracker
                    .record_phase2(child, Origin::Seed { seen1: seen1_tuple, exit_rule: exit_idx });
            });
        }
    }
    indexes.invalidate(RelKey::Aux(AUX_SEEN1));

    let seen2 = run_closure_tracked(
        &plan.phase2.tracked_steps,
        AUX_CARRY2,
        carry2_init,
        db,
        extra,
        &mut indexes,
        opts,
        ("carry_2", "seen_2"),
        stats,
        &mut |child, parent, rule, tr: &mut JustificationTracker| {
            tr.record_phase2(child, Origin::Phase2 { parent, rule });
        },
        tracker,
    )?;

    Ok(RawOutcome { seen1, seen2 })
}

/// The tracked twin of [`run_closure`]: step plans emit
/// `(parent ++ child)` rows; `record` is invoked for every produced
/// child with its parent and the rule index.
#[allow(clippy::too_many_arguments)]
fn run_closure_tracked(
    tracked_steps: &[(usize, ConjPlan)],
    carry_key_id: u32,
    init: Relation,
    db: &Database,
    extra: &ExtraRelations,
    indexes: &mut IndexCache,
    opts: &ExecOptions,
    names: (&str, &str),
    stats: &mut EvalStats,
    record: &mut dyn FnMut(Tuple, Tuple, usize, &mut JustificationTracker),
    tracker: &mut JustificationTracker,
) -> Result<Relation, EvalError> {
    let arity = init.arity();
    let (carry_name, seen_name) = names;
    let mut seen = init.clone();
    let mut carry = init;
    stats.record_size(carry_name, carry.len());
    stats.record_size(seen_name, seen.len());

    let mut iterations = 0usize;
    while !carry.is_empty() {
        iterations += 1;
        stats.record_iteration();
        if iterations > opts.max_iterations {
            return Err(EvalError::Diverged {
                what: format!("{carry_name} loop"),
                bound: opts.max_iterations,
            });
        }
        opts.budget.check(
            &format!("{carry_name} loop"),
            stats.iterations,
            stats.tuples_inserted,
        )?;
        let mut produced = Relation::new(arity);
        {
            let mut store = base_store(db, extra);
            store.bind(RelKey::Aux(carry_key_id), &carry);
            for (rule, plan) in tracked_steps {
                if opts.use_indexes {
                    indexes.prepare(plan, &store);
                }
                plan.execute(&store, indexes, &[], &mut |row| {
                    let parent = Tuple::new(row[..arity].to_vec());
                    let child = Tuple::new(row[arity..].to_vec());
                    let was_new = produced.insert(child.clone());
                    stats.record_insert(was_new);
                    if !seen.contains(&child) {
                        record(child, parent, *rule, tracker);
                    }
                });
            }
        }
        indexes.invalidate(RelKey::Aux(carry_key_id));
        let mut next_carry = Relation::new(arity);
        for t in produced.iter() {
            let is_new = !seen.contains_row(t);
            if is_new {
                seen.insert_from(t);
            }
            if is_new || !opts.dedup {
                next_carry.insert_from(t);
            }
        }
        stats.record_size(carry_name, next_carry.len());
        stats.record_size(seen_name, seen.len());
        carry = next_carry;
    }
    Ok(seen)
}

fn base_store<'a>(db: &'a Database, extra: &'a ExtraRelations) -> RelStore<'a> {
    let mut store = RelStore::new();
    for (p, r) in db.relations() {
        store.bind(RelKey::Pred(p), r);
    }
    for (&p, r) in extra {
        store.bind(RelKey::Pred(p), r);
    }
    store
}

/// Runs one carry/seen closure (lines 1–7 or 10–14 of Figure 2) and returns
/// the final `seen` relation.
#[allow(clippy::too_many_arguments)]
pub fn run_closure(
    step_plans: &[&ConjPlan],
    carry_key_id: u32,
    init: Relation,
    db: &Database,
    extra: &ExtraRelations,
    indexes: &mut IndexCache,
    opts: &ExecOptions,
    names: (&str, &str),
    stats: &mut EvalStats,
) -> Result<Relation, EvalError> {
    let arity = init.arity();
    let (carry_name, seen_name) = names;
    let mut seen = init.clone();
    let mut carry = init;
    stats.record_size(carry_name, carry.len());
    stats.record_size(seen_name, seen.len());

    let mut iterations = 0usize;
    while !carry.is_empty() {
        iterations += 1;
        stats.record_iteration();
        if iterations > opts.max_iterations {
            return Err(EvalError::Diverged {
                what: format!("{carry_name} loop"),
                bound: opts.max_iterations,
            });
        }
        opts.budget.check(
            &format!("{carry_name} loop"),
            stats.iterations,
            stats.tuples_inserted,
        )?;
        // carry := f(carry) — the union of the per-rule join plans.
        let mut produced = Relation::new(arity);
        {
            let mut store = base_store(db, extra);
            let carry_key = RelKey::Aux(carry_key_id);
            store.bind(carry_key, &carry);
            let mut scanned = 0u64;
            if opts.threads > 1 && opts.use_indexes {
                // Shared cache: every keyed scan except the carry, which
                // each worker indexes over its own shard.
                for plan in step_plans {
                    indexes.prepare_where(plan, &store, |k| k != carry_key);
                }
                let merged = sharded_delta_round(
                    step_plans,
                    carry_key,
                    &store,
                    indexes,
                    opts.threads,
                    MIN_SHARD_TUPLES,
                    &[],
                    &opts.budget,
                    &mut scanned,
                );
                // Workers stop expanding once the budget is exhausted; a
                // truncated carry would otherwise masquerade as convergence,
                // so re-check before treating the round's output as f(carry).
                opts.budget.check(
                    &format!("{carry_name} loop"),
                    stats.iterations,
                    stats.tuples_inserted,
                )?;
                // Plan-major, worker-minor: a fixed interleaving of the
                // serial production order, deterministic per thread count.
                for worker_bufs in merged {
                    for buf in worker_bufs {
                        for t in buf {
                            let was_new = produced.insert(t);
                            stats.record_insert(was_new);
                        }
                    }
                }
            } else {
                for plan in step_plans {
                    if opts.use_indexes {
                        indexes.prepare(plan, &store);
                    }
                    plan.execute_counted(
                        &store,
                        indexes,
                        &[],
                        &mut |row| {
                            let was_new = produced.insert(Tuple::new(row.to_vec()));
                            stats.record_insert(was_new);
                        },
                        &mut scanned,
                    );
                }
            }
            stats.record_scanned(scanned as usize);
        }
        indexes.invalidate(RelKey::Aux(carry_key_id));
        // carry := carry - seen (line 5); seen := seen u carry (line 6).
        let mut next_carry = Relation::new(arity);
        for t in produced.iter() {
            let is_new = !seen.contains_row(t);
            if is_new {
                seen.insert_from(t);
            }
            if is_new || !opts.dedup {
                next_carry.insert_from(t);
            }
        }
        stats.record_size(carry_name, next_carry.len());
        stats.record_size(seen_name, seen.len());
        carry = next_carry;
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use crate::plan::{build_plan, PlanSelection};
    use sepra_ast::parse_program;
    use sepra_storage::Value;

    fn chain_db(n: u32) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert_named("e", &[&format!("n{i}"), &format!("n{}", i + 1)]).unwrap();
        }
        db
    }

    /// Transitive closure t(X, Y) with query t(n0, Y): phase 1 walks the
    /// chain, the seed joins e as exit, no phase 2.
    #[test]
    fn closure_walks_a_chain() {
        let mut db = chain_db(5);
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();

        let mut init = Relation::new(1);
        let n0 = db.intern("n0");
        init.insert(Tuple::from([Value::sym(n0)]));
        let mut stats = EvalStats::new();
        let out = execute_plan(
            &plan,
            &db,
            &ExtraRelations::default(),
            Some(init),
            &ExecOptions::default(),
            &mut stats,
        )
        .unwrap();
        // seen_1 = {n0..n5} reachable along e (n5 has no outgoing edge but
        // is reached as a body value... n5 enters carry_1 via e(n4, n5)).
        assert_eq!(out.seen1.as_ref().unwrap().len(), 6);
        // seen_2 = everything reachable from seen_1 in one e step: n1..n5.
        assert_eq!(out.seen2.len(), 5);
        assert!(stats.relation_sizes["seen_1"] == 6);
        assert!(stats.iterations > 0);
    }

    #[test]
    fn closure_terminates_on_cycles_with_dedup() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, c). e(c, a).").unwrap();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        let mut init = Relation::new(1);
        let a = db.intern("a");
        init.insert(Tuple::from([Value::sym(a)]));
        let mut stats = EvalStats::new();
        let out = execute_plan(
            &plan,
            &db,
            &ExtraRelations::default(),
            Some(init),
            &ExecOptions::default(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(out.seen1.as_ref().unwrap().len(), 3);
        assert_eq!(out.seen2.len(), 3);
    }

    #[test]
    fn disabling_dedup_diverges_on_cycles() {
        let mut db = Database::new();
        db.load_fact_text("e(a, b). e(b, a).").unwrap();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        let mut init = Relation::new(1);
        let a = db.intern("a");
        init.insert(Tuple::from([Value::sym(a)]));
        let opts = ExecOptions { dedup: false, max_iterations: 50, ..ExecOptions::default() };
        let mut stats = EvalStats::new();
        let err =
            execute_plan(&plan, &db, &ExtraRelations::default(), Some(init), &opts, &mut stats)
                .unwrap_err();
        assert!(matches!(err, EvalError::Diverged { .. }), "{err}");
    }

    #[test]
    fn parallel_closure_matches_serial() {
        let mut db = chain_db(64);
        // Add a back edge so phase 1 revisits seen classes.
        db.insert_named("e", &["n40", "n3"]).unwrap();
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        let n0 = db.intern("n0");
        let run = |threads: usize| {
            let mut init = Relation::new(1);
            init.insert(Tuple::from([Value::sym(n0)]));
            let opts = ExecOptions { threads, ..ExecOptions::default() };
            let mut stats = EvalStats::new();
            execute_plan(&plan, &db, &ExtraRelations::default(), Some(init), &opts, &mut stats)
                .unwrap()
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            let par = run(threads);
            assert_eq!(par.seen1, serial.seen1, "seen_1 diverged at {threads} threads");
            assert_eq!(par.seen2, serial.seen2, "seen_2 diverged at {threads} threads");
        }
        // Determinism: two runs at the same thread count produce the same
        // insertion order, not just the same set.
        let a = run(4);
        let b = run(4);
        assert!(a.seen2.iter().eq(b.seen2.iter()), "insertion order diverged");
    }

    #[test]
    fn missing_seeds_are_rejected() {
        let mut db = chain_db(2);
        let program =
            parse_program("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", db.interner_mut())
                .unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&program, t, db.interner_mut()).unwrap();
        let plan = build_plan(&sep, &PlanSelection::Class(0)).unwrap();
        let mut stats = EvalStats::new();
        let err = execute_plan(
            &plan,
            &db,
            &ExtraRelations::default(),
            None,
            &ExecOptions::default(),
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Planning(_)));
    }
}
