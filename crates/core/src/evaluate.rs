//! End-to-end evaluation of selections on separable recursions, including
//! the Lemma 2.1 decomposition of partial selections.
//!
//! * **Full selections** (Definition 2.7) run the compiled Figure 2 schema
//!   directly: selection constants seed `carry_1` (class selections) or are
//!   baked into the seed plans (persistent selections).
//! * **Partial selections** are decomposed per Lemma 2.1: the recursion is
//!   split into `t_part` (the recursion without the partially bound class
//!   `e_1`, whose columns thereby become persistent) and `t_full` (the whole
//!   recursion, reached through one up-front application of an `e_1` rule
//!   that binds all of `t|e_1` by sideways information passing). The
//!   answers are the union of the two branches — each of which is a *full*
//!   selection, evaluated with the specialized algorithm.

use std::sync::Arc;

use sepra_ast::{Query, Term};
use sepra_eval::{
    filter_by_query, ConjPlan, EvalError, IndexCache, PlanAtom, PlanLiteral, Planner, PlannerStats,
    RelKey,
};
use sepra_storage::{Database, EvalStats, FxHashMap, Relation, Tuple, Value};

use crate::cache::PlanCache;
use crate::detect::{EquivClass, SeparableRecursion};
use crate::exec::{execute_plan, execute_plan_tracked, ExecOptions, ExtraRelations};
use crate::justify::{Justification, JustificationTracker};
use crate::plan::{
    build_plan, build_plan_with, classify_selection, PlanSelection, SelectionKind, SeparablePlan,
};

/// How a query was evaluated (for `EXPLAIN`-style reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyNote {
    /// A single full-selection run on the given class.
    FullClass {
        /// The selected class.
        class: usize,
    },
    /// A single persistent-selection run.
    Persistent {
        /// The bound persistent columns.
        bound: Vec<usize>,
    },
    /// The Lemma 2.1 decomposition.
    Decomposed {
        /// The partially bound class that was split out.
        class: usize,
        /// Number of distinct `carry_1` seed vectors evaluated in the
        /// `t_full` branch.
        distinct_seeds: usize,
    },
}

/// The result of evaluating a selection with the Separable algorithm.
#[derive(Debug)]
pub struct SeparableOutcome {
    /// Answers as full tuples of the query predicate.
    pub answers: Relation,
    /// The paper's cost metric: peak sizes of every constructed relation.
    pub stats: EvalStats,
    /// How the query was evaluated.
    pub strategy: StrategyNote,
}

/// Evaluates selections on one detected separable recursion.
///
/// ```
/// use sepra_core::detect::detect_in_program;
/// use sepra_core::evaluate::SeparableEvaluator;
/// use sepra_storage::Database;
///
/// let mut db = Database::new();
/// db.load_fact_text("friend(tom, sue). perfectFor(sue, widget).").unwrap();
/// let program = sepra_ast::parse_program(
///     "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
///      buys(X, Y) :- perfectFor(X, Y).\n",
///     db.interner_mut(),
/// )
/// .unwrap();
/// let buys = db.intern("buys");
/// let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
/// let query = sepra_ast::parse_query("buys(tom, Y)?", db.interner_mut()).unwrap();
/// let outcome = SeparableEvaluator::new(sep)
///     .evaluate(&query, &db, &Default::default())
///     .unwrap();
/// assert_eq!(outcome.answers.len(), 1); // buys(tom, widget)
/// ```
#[derive(Debug, Clone)]
pub struct SeparableEvaluator {
    sep: SeparableRecursion,
    opts: ExecOptions,
    plan_cache: Option<Arc<PlanCache>>,
}

impl SeparableEvaluator {
    /// Creates an evaluator with default options.
    pub fn new(sep: SeparableRecursion) -> Self {
        SeparableEvaluator { sep, opts: ExecOptions::default(), plan_cache: None }
    }

    /// Creates an evaluator with explicit options.
    pub fn with_options(sep: SeparableRecursion, opts: ExecOptions) -> Self {
        SeparableEvaluator { sep, opts, plan_cache: None }
    }

    /// Attaches a shared [`PlanCache`], so repeated class selections reuse
    /// their compiled Figure 2 plans instead of rebuilding them.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// The detected recursion structure.
    pub fn recursion(&self) -> &SeparableRecursion {
        &self.sep
    }

    /// Evaluates `query` against `db` (plus any pre-materialized `extra`
    /// relations for non-recursive IDB base predicates).
    pub fn evaluate(
        &self,
        query: &Query,
        db: &Database,
        extra: &ExtraRelations,
    ) -> Result<SeparableOutcome, EvalError> {
        if query.atom.pred != self.sep.pred {
            return Err(EvalError::Planning("query predicate does not match recursion".into()));
        }
        if query.atom.arity() != self.sep.arity {
            return Err(EvalError::Planning("query arity does not match recursion".into()));
        }
        // One statistics snapshot per evaluation: the EDB plus the
        // materialized non-recursive IDB relations the engine supplies.
        let mut pstats = PlannerStats::from_database(db);
        for (&p, r) in extra {
            pstats.add_relation(p, r);
        }
        let planner = Planner::new(self.opts.plan_mode, Some(&pstats));
        let mut outcome = evaluate_inner(
            &self.sep,
            query,
            db,
            extra,
            &self.opts,
            self.plan_cache.as_deref(),
            &planner,
            0,
        )?;
        planner.record_into(&mut outcome.stats);
        Ok(outcome)
    }

    /// Evaluates a *full* selection and additionally returns, for every
    /// answer, one justification — the derivation `J(a)` from the proof of
    /// Lemma 3.1 (why-provenance). Partial selections are not supported
    /// (their answers mix derivations from the two Lemma 2.1 branches).
    pub fn evaluate_with_justifications(
        &self,
        query: &Query,
        db: &Database,
        extra: &ExtraRelations,
    ) -> Result<(SeparableOutcome, FxHashMap<Tuple, Justification>), EvalError> {
        if query.atom.pred != self.sep.pred || query.atom.arity() != self.sep.arity {
            return Err(EvalError::Planning("query does not match recursion".into()));
        }
        let sep = &self.sep;
        let (plan, fixed, strategy) = match classify_selection(sep, query) {
            SelectionKind::FullClass { class } => {
                let plan = build_plan(sep, &PlanSelection::Class(class))?;
                let fixed: Vec<(usize, Value)> = sep.classes[class]
                    .columns
                    .iter()
                    .map(|&c| Ok((c, query_value_at(query, c)?)))
                    .collect::<Result<_, EvalError>>()?;
                (plan, fixed, StrategyNote::FullClass { class })
            }
            SelectionKind::Persistent { bound } => {
                let fixed: Vec<(usize, Value)> = bound
                    .iter()
                    .map(|&c| Ok((c, query_value_at(query, c)?)))
                    .collect::<Result<_, EvalError>>()?;
                let plan = build_plan(sep, &PlanSelection::Persistent(fixed.clone()))?;
                (plan, fixed, StrategyNote::Persistent { bound })
            }
            SelectionKind::Partial { .. } => {
                return Err(EvalError::Unsupported(
                    "justifications are only tracked for full selections".into(),
                ))
            }
            SelectionKind::NoSelection => {
                return Err(EvalError::Unsupported(
                    "the Separable algorithm requires a selection".into(),
                ))
            }
        };
        let init1 = plan.phase1.as_ref().map(|_| {
            let mut init = Relation::new(fixed.len());
            init.insert(Tuple::from(fixed.iter().map(|&(_, v)| v).collect::<Vec<_>>()));
            init
        });
        let mut stats = EvalStats::new();
        let mut tracker = JustificationTracker::new();
        let raw =
            execute_plan_tracked(&plan, db, extra, init1, &self.opts, &mut stats, &mut tracker)?;
        let mut full = Relation::new(sep.arity);
        let mut justifications: FxHashMap<Tuple, Justification> = FxHashMap::default();
        for row in raw.seen2.iter() {
            let tuple = assemble(sep.arity, &fixed, &plan.phase2.columns, row);
            if let Some(j) = tracker.justify(&row.to_tuple()) {
                justifications.entry(tuple.clone()).or_insert(j);
            }
            full.insert(tuple);
        }
        let answers = filter_by_query(query, &full)?;
        justifications.retain(|t, _| answers.contains(t));
        stats.record_size("ans", answers.len());
        Ok((SeparableOutcome { answers, stats, strategy }, justifications))
    }
}

const MAX_DECOMPOSITION_DEPTH: usize = 8;

#[allow(clippy::too_many_arguments)]
fn evaluate_inner(
    sep: &SeparableRecursion,
    query: &Query,
    db: &Database,
    extra: &ExtraRelations,
    opts: &ExecOptions,
    cache: Option<&PlanCache>,
    planner: &Planner<'_>,
    depth: usize,
) -> Result<SeparableOutcome, EvalError> {
    if depth > MAX_DECOMPOSITION_DEPTH {
        return Err(EvalError::Unsupported(
            "selection decomposition exceeded the maximum depth".into(),
        ));
    }
    match classify_selection(sep, query) {
        SelectionKind::NoSelection => Err(EvalError::Unsupported(
            "the Separable algorithm requires at least one selection constant".into(),
        )),
        SelectionKind::FullClass { class } => {
            evaluate_full_class(sep, query, class, db, extra, opts, cache, planner)
        }
        SelectionKind::Persistent { bound } => {
            evaluate_persistent(sep, query, &bound, db, extra, opts, planner)
        }
        SelectionKind::Partial { class } => {
            evaluate_partial(sep, query, class, db, extra, opts, cache, planner, depth)
        }
    }
}

/// Builds (or fetches) the class-selection plan, consulting `cache` when
/// one is attached.
fn class_plan(
    sep: &SeparableRecursion,
    class: usize,
    cache: Option<&PlanCache>,
    planner: &Planner<'_>,
    db: &Database,
) -> Result<Arc<SeparablePlan>, EvalError> {
    match cache {
        Some(cache) => cache.class_plan(sep, class, planner, db),
        None => Ok(Arc::new(build_plan_with(sep, &PlanSelection::Class(class), planner)?)),
    }
}

fn query_value_at(query: &Query, pos: usize) -> Result<Value, EvalError> {
    match &query.atom.terms[pos] {
        Term::Const(c) => Ok(Value::from_const(*c)?),
        Term::Var(_) => {
            Err(EvalError::Planning(format!("query position {pos} expected to be a constant")))
        }
    }
}

/// Builds a full tuple from fixed `(position, value)` pairs plus the
/// phase-2 row at `rest_cols`.
fn assemble(
    arity: usize,
    fixed: &[(usize, Value)],
    rest_cols: &[usize],
    row: sepra_storage::Row<'_>,
) -> Tuple {
    debug_assert_eq!(fixed.len() + rest_cols.len(), arity);
    let placeholder = fixed
        .first()
        .map(|&(_, v)| v)
        .or_else(|| row.values().next())
        .unwrap_or_else(|| Value::sym(sepra_ast::Sym(0)));
    let mut values = vec![placeholder; arity];
    for &(pos, v) in fixed {
        values[pos] = v;
    }
    for (i, &pos) in rest_cols.iter().enumerate() {
        values[pos] = row[i];
    }
    Tuple::from(values)
}

#[allow(clippy::too_many_arguments)]
fn evaluate_full_class(
    sep: &SeparableRecursion,
    query: &Query,
    class: usize,
    db: &Database,
    extra: &ExtraRelations,
    opts: &ExecOptions,
    cache: Option<&PlanCache>,
    planner: &Planner<'_>,
) -> Result<SeparableOutcome, EvalError> {
    let plan = class_plan(sep, class, cache, planner, db)?;
    let cols = &sep.classes[class].columns;
    let fixed: Vec<(usize, Value)> = cols
        .iter()
        .map(|&c| Ok((c, query_value_at(query, c)?)))
        .collect::<Result<_, EvalError>>()?;
    let mut init = Relation::new(cols.len());
    init.insert(Tuple::from(fixed.iter().map(|&(_, v)| v).collect::<Vec<_>>()));
    let mut stats = EvalStats::new();
    let raw = execute_plan(&plan, db, extra, Some(init), opts, &mut stats)?;
    let mut full = Relation::new(sep.arity);
    for row in raw.seen2.iter() {
        full.insert(assemble(sep.arity, &fixed, &plan.phase2.columns, row));
    }
    let answers = filter_by_query(query, &full)?;
    stats.record_size("ans", answers.len());
    Ok(SeparableOutcome { answers, stats, strategy: StrategyNote::FullClass { class } })
}

fn evaluate_persistent(
    sep: &SeparableRecursion,
    query: &Query,
    bound: &[usize],
    db: &Database,
    extra: &ExtraRelations,
    opts: &ExecOptions,
    planner: &Planner<'_>,
) -> Result<SeparableOutcome, EvalError> {
    let fixed: Vec<(usize, Value)> = bound
        .iter()
        .map(|&c| Ok((c, query_value_at(query, c)?)))
        .collect::<Result<_, EvalError>>()?;
    let plan = build_plan_with(sep, &PlanSelection::Persistent(fixed.clone()), planner)?;
    let mut stats = EvalStats::new();
    stats.record_size("seen_1", 1); // the paper's `seen_1(x0)` fact
    let raw = execute_plan(&plan, db, extra, None, opts, &mut stats)?;
    let mut full = Relation::new(sep.arity);
    for row in raw.seen2.iter() {
        full.insert(assemble(sep.arity, &fixed, &plan.phase2.columns, row));
    }
    let answers = filter_by_query(query, &full)?;
    stats.record_size("ans", answers.len());
    Ok(SeparableOutcome {
        answers,
        stats,
        strategy: StrategyNote::Persistent { bound: bound.to_vec() },
    })
}

/// Removes class `class` from the recursion: its rules disappear and its
/// columns become persistent — the Lemma 2.1 `t_part` recursion.
fn remove_class(sep: &SeparableRecursion, class: usize) -> SeparableRecursion {
    let removed_rules: &[usize] = &sep.classes[class].rules;
    // Map old rule indices to new ones.
    let mut keep: Vec<usize> = Vec::new();
    for ri in 0..sep.recursive_rules.len() {
        if !removed_rules.contains(&ri) {
            keep.push(ri);
        }
    }
    let new_index = |old: usize| keep.iter().position(|&k| k == old).expect("kept rule");
    let recursive_rules: Vec<_> = keep.iter().map(|&ri| sep.recursive_rules[ri].clone()).collect();
    let classes: Vec<EquivClass> = sep
        .classes
        .iter()
        .enumerate()
        .filter(|&(ci, _)| ci != class)
        .map(|(_, c)| EquivClass {
            columns: c.columns.clone(),
            rules: c.rules.iter().map(|&ri| new_index(ri)).collect(),
        })
        .collect();
    let mut persistent = sep.persistent.clone();
    persistent.extend(sep.classes[class].columns.iter().copied());
    persistent.sort_unstable();
    SeparableRecursion {
        pred: sep.pred,
        arity: sep.arity,
        canon_vars: sep.canon_vars.clone(),
        recursive_rules,
        exit_rules: sep.exit_rules.clone(),
        classes,
        persistent,
    }
}

#[allow(clippy::too_many_arguments)]
fn evaluate_partial(
    sep: &SeparableRecursion,
    query: &Query,
    class: usize,
    db: &Database,
    extra: &ExtraRelations,
    opts: &ExecOptions,
    cache: Option<&PlanCache>,
    planner: &Planner<'_>,
    depth: usize,
) -> Result<SeparableOutcome, EvalError> {
    let mut stats = EvalStats::new();
    let mut answers = Relation::new(sep.arity);

    // Branch (a): t_part — the recursion without e_1; the partially bound
    // columns are persistent there, so the same query is a full selection.
    // The sub-recursion reuses the predicate symbol with a different class
    // structure, so it must not share the plan cache.
    let part = remove_class(sep, class);
    let part_outcome = evaluate_inner(&part, query, db, extra, opts, None, planner, depth + 1)?;
    stats.merge(&part_outcome.stats);
    answers.union_in_place(&part_outcome.answers);

    // Branch (b): one up-front application of each e_1 rule binds all of
    // t|e_1 by sideways information passing; each distinct binding vector is
    // a full selection on t_full (the original recursion).
    let cols = sep.classes[class].columns.clone();
    let bound_cols: Vec<usize> =
        cols.iter().copied().filter(|c| query.atom.terms[*c].is_const()).collect();
    let full_plan = class_plan(sep, class, cache, planner, db)?;
    let mut seed_cache: FxHashMap<Tuple, Relation> = FxHashMap::default();
    let mut distinct_seeds = 0usize;

    for &ri in &sep.classes[class].rules {
        let binding_plan = binding_plan(sep, ri, &cols, &bound_cols, query, planner)?;
        // Evaluate the binding plan once over the database.
        let mut pairs: Vec<(Tuple, Tuple)> = Vec::new();
        {
            let mut store = sepra_eval::RelStore::new();
            for (p, r) in db.relations() {
                store.bind(RelKey::Pred(p), r);
            }
            for (&p, r) in extra {
                store.bind(RelKey::Pred(p), r);
            }
            let mut indexes = IndexCache::new();
            indexes.prepare(&binding_plan, &store);
            binding_plan.execute(&store, &indexes, &[], &mut |row| {
                let head = Tuple::new(row[..cols.len()].to_vec());
                let body = Tuple::new(row[cols.len()..].to_vec());
                pairs.push((head, body));
            });
        }
        for (head_vals, body_vals) in pairs {
            if !seed_cache.contains_key(&body_vals) {
                distinct_seeds += 1;
                let mut init = Relation::new(cols.len());
                init.insert(body_vals.clone());
                let raw = execute_plan(&full_plan, db, extra, Some(init), opts, &mut stats)?;
                seed_cache.insert(body_vals.clone(), raw.seen2);
            }
            let seen2 = &seed_cache[&body_vals];
            let fixed: Vec<(usize, Value)> =
                cols.iter().zip(head_vals.values()).map(|(&c, &v)| (c, v)).collect();
            for row in seen2.iter() {
                answers.insert(assemble(sep.arity, &fixed, &full_plan.phase2.columns, row));
            }
        }
    }
    let answers = filter_by_query(query, &answers)?;
    stats.record_size("ans", answers.len());
    Ok(SeparableOutcome {
        answers,
        stats,
        strategy: StrategyNote::Decomposed { class, distinct_seeds },
    })
}

/// Compiles the sideways-information-passing plan for one `e_1` rule in the
/// Lemma 2.1 `t_full` branch: bind the query's constants on the head side,
/// evaluate the rule's nonrecursive conjunction, and emit
/// `(head class values, body class values)`.
fn binding_plan(
    sep: &SeparableRecursion,
    rule_idx: usize,
    cols: &[usize],
    bound_cols: &[usize],
    query: &Query,
    planner: &Planner<'_>,
) -> Result<ConjPlan, EvalError> {
    let rule = &sep.recursive_rules[rule_idx];
    let rec = crate::detect::recursive_atom(rule, sep.pred);
    let mut body: Vec<PlanLiteral> = Vec::new();
    for &c in bound_cols {
        let Term::Const(konst) = query.atom.terms[c] else {
            return Err(EvalError::Planning("bound column is not a constant".into()));
        };
        body.push(PlanLiteral::Eq(rule.head.terms[c], Term::Const(konst)));
    }
    for lit in &rule.body {
        match lit {
            sepra_ast::Literal::Atom(a) if a.pred == sep.pred => continue,
            sepra_ast::Literal::Atom(a) => body.push(PlanLiteral::Atom(PlanAtom {
                rel: RelKey::Pred(a.pred),
                terms: a.terms.clone(),
            })),
            sepra_ast::Literal::Eq(l, r) => body.push(PlanLiteral::Eq(*l, *r)),
            // Unreachable: separable recursions are pure positive
            // (`RecursiveDef::extract`); arms preserve meaning regardless.
            sepra_ast::Literal::Neg(a) => body.push(PlanLiteral::Neg(PlanAtom {
                rel: RelKey::Pred(a.pred),
                terms: a.terms.clone(),
            })),
            sepra_ast::Literal::Sum(d, x, y) => body.push(PlanLiteral::Sum(*d, *x, *y)),
        }
    }
    let mut output: Vec<Term> = cols.iter().map(|&c| rule.head.terms[c]).collect();
    output.extend(cols.iter().map(|&c| rec.terms[c]));
    ConjPlan::compile(&[], &planner.order(&[], &body, 0), &output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_in_program;
    use sepra_ast::{parse_program, parse_query};
    use sepra_eval::{query_answers, seminaive};

    fn check_against_seminaive(program_src: &str, facts: &str, pred: &str, query_src: &str) {
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let program = parse_program(program_src, db.interner_mut()).unwrap();
        let p = db.intern(pred);
        let sep = detect_in_program(&program, p, db.interner_mut()).unwrap();
        let query = parse_query(query_src, db.interner_mut()).unwrap();

        let evaluator = SeparableEvaluator::new(sep);
        let outcome = evaluator.evaluate(&query, &db, &ExtraRelations::default()).unwrap();

        let derived = seminaive(&program, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(
            outcome.answers,
            expected,
            "separable {} vs semi-naive {} for {query_src}",
            outcome.answers.len(),
            expected.len()
        );
    }

    const EX_1_1: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- idol(X, W), buys(W, Y).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    const EX_1_2: &str = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                          buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
                          buys(X, Y) :- perfectFor(X, Y).\n";

    const SOCIAL: &str = "friend(tom, sue). friend(sue, joe). friend(joe, ann).\n\
                          idol(tom, liz). idol(liz, joe).\n\
                          perfectFor(ann, widget). perfectFor(joe, gadget). perfectFor(liz, tonic).\n\
                          cheaper(bargain, widget). cheaper(steal, bargain).\n";

    #[test]
    fn example_1_1_bound_first_column() {
        check_against_seminaive(EX_1_1, SOCIAL, "buys", "buys(tom, Y)?");
    }

    #[test]
    fn example_1_1_bound_second_column_persistent() {
        check_against_seminaive(EX_1_1, SOCIAL, "buys", "buys(X, gadget)?");
    }

    #[test]
    fn example_1_2_bound_first_column() {
        check_against_seminaive(EX_1_2, SOCIAL, "buys", "buys(tom, Y)?");
    }

    #[test]
    fn example_1_2_bound_second_column() {
        check_against_seminaive(EX_1_2, SOCIAL, "buys", "buys(X, steal)?");
    }

    #[test]
    fn fully_bound_query() {
        check_against_seminaive(EX_1_2, SOCIAL, "buys", "buys(tom, bargain)?");
        check_against_seminaive(EX_1_1, SOCIAL, "buys", "buys(tom, nothing)?");
    }

    #[test]
    fn cyclic_data_terminates() {
        let cyclic = "friend(a, b). friend(b, c). friend(c, a).\n\
                      idol(b, a).\n\
                      perfectFor(c, thing). cheaper(cheapthing, thing).\n";
        check_against_seminaive(EX_1_1, cyclic, "buys", "buys(a, Y)?");
        check_against_seminaive(EX_1_2, cyclic, "buys", "buys(a, Y)?");
    }

    #[test]
    fn example_2_4_partial_selection_decomposes() {
        let program = "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
                       t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
                       t(X, Y, Z) :- t0(X, Y, Z).\n";
        let facts = "a(c, d, e, f). a(e, f, g, h). a(q, r, e, f).\n\
                     t0(g, h, w1). t0(e, f, w0). t0(c, d, w3).\n\
                     b(w1, w2). b(w2, w4). b(w3, w5).\n";
        // Partial: binds only column 0 of class {0, 1}.
        let mut db = Database::new();
        db.load_fact_text(facts).unwrap();
        let prog = parse_program(program, db.interner_mut()).unwrap();
        let t = db.intern("t");
        let sep = detect_in_program(&prog, t, db.interner_mut()).unwrap();
        let query = parse_query("t(c, Y, Z)?", db.interner_mut()).unwrap();
        let evaluator = SeparableEvaluator::new(sep);
        let outcome = evaluator.evaluate(&query, &db, &ExtraRelations::default()).unwrap();
        assert!(matches!(outcome.strategy, StrategyNote::Decomposed { .. }));

        let derived = seminaive(&prog, &db).unwrap();
        let expected = query_answers(&query, &db, Some(&derived)).unwrap();
        assert_eq!(outcome.answers, expected);
        assert!(!outcome.answers.is_empty());
    }

    #[test]
    fn transitive_closure_selection() {
        check_against_seminaive(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n",
            "e(a, b). e(b, c). e(c, d). e(b, e). e(z, a).",
            "t",
            "t(a, Y)?",
        );
    }

    #[test]
    fn reverse_selection_on_transitive_closure_is_persistent() {
        check_against_seminaive(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n",
            "e(a, b). e(b, c). e(c, d). e(b, e). e(z, a).",
            "t",
            "t(X, d)?",
        );
    }

    #[test]
    fn empty_database_gives_empty_answers() {
        let mut db = Database::new();
        db.load_fact_text("unrelated(a).").unwrap();
        let program = parse_program(EX_1_1, db.interner_mut()).unwrap();
        let buys = db.intern("buys");
        let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
        let query = parse_query("buys(tom, Y)?", db.interner_mut()).unwrap();
        let outcome =
            SeparableEvaluator::new(sep).evaluate(&query, &db, &ExtraRelations::default()).unwrap();
        assert!(outcome.answers.is_empty());
    }

    #[test]
    fn no_selection_is_rejected() {
        let mut db = Database::new();
        db.load_fact_text(SOCIAL).unwrap();
        let program = parse_program(EX_1_1, db.interner_mut()).unwrap();
        let buys = db.intern("buys");
        let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
        let query = parse_query("buys(X, Y)?", db.interner_mut()).unwrap();
        let err = SeparableEvaluator::new(sep)
            .evaluate(&query, &db, &ExtraRelations::default())
            .unwrap_err();
        assert!(matches!(err, EvalError::Unsupported(_)));
    }

    #[test]
    fn monadic_relations_stay_linear_on_chains() {
        // The headline O(n) claim: on Example 1.1 over a chain, every
        // relation the algorithm builds is monadic and at most n+1 tuples.
        let n = 50;
        let mut facts = String::new();
        for i in 0..n {
            facts.push_str(&format!("friend(p{i}, p{}). idol(p{i}, p{}). ", i + 1, i + 1));
        }
        facts.push_str(&format!("perfectFor(p{n}, widget)."));
        let mut db = Database::new();
        db.load_fact_text(&facts).unwrap();
        let program = parse_program(EX_1_1, db.interner_mut()).unwrap();
        let buys = db.intern("buys");
        let sep = detect_in_program(&program, buys, db.interner_mut()).unwrap();
        let query = parse_query("buys(p0, Y)?", db.interner_mut()).unwrap();
        let outcome =
            SeparableEvaluator::new(sep).evaluate(&query, &db, &ExtraRelations::default()).unwrap();
        assert_eq!(outcome.answers.len(), 1);
        assert!(
            outcome.stats.max_relation_size() <= n + 1,
            "expected O(n) relations, got {}",
            outcome.stats.max_relation_size()
        );
    }
}
