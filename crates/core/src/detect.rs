//! Detection of separable recursions (Definition 2.4) and normalization of
//! definitions into the form Section 3.3 assumes.
//!
//! A definition is first *normalized*: rules are rectified (heads with
//! distinct variables and no constants) and their heads standardized to one
//! canonical variable vector, so that `t|e_i` column talk is well defined
//! and, as Section 3.3 requires, "if `t_i^b = t_j^b`, the variables in
//! corresponding positions are identical" on the head side. Detection then
//! checks the four conditions of Definition 2.4 and reports every violation
//! it finds (not just the first), which makes the detector useful as an
//! explainer for why a program falls back to Magic Sets.

use std::collections::BTreeSet;

use sepra_ast::rectify::{rectify_rule, standardize_head};
use sepra_ast::{Atom, Interner, Literal, RecursiveDef, Rule, Sym};

/// One equivalence class of recursive rules (Condition 3 of Definition 2.4
/// partitions rules into classes with equal column sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivClass {
    /// The argument positions `t|e_i` of the recursive predicate bound to
    /// this class (ascending).
    pub columns: Vec<usize>,
    /// Indices into [`SeparableRecursion::recursive_rules`] of the member
    /// rules, in source order.
    pub rules: Vec<usize>,
}

/// A violation of one of Definition 2.4's conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Condition 1: a variable appears at different positions in the head
    /// and body instances of the recursive predicate.
    ShiftingVariable {
        /// Rule index (within the recursive rules).
        rule: usize,
        /// The shifting variable.
        var: Sym,
        /// Its position in the head instance.
        head_pos: usize,
        /// A differing position in the body instance.
        body_pos: usize,
    },
    /// Condition 2: `t_i^h != t_i^b` for some rule.
    HeadBodyMismatch {
        /// Rule index.
        rule: usize,
        /// Head-side bound positions `t_i^h`.
        head_cols: Vec<usize>,
        /// Body-side bound positions `t_i^b`.
        body_cols: Vec<usize>,
    },
    /// Condition 3: two rules' column sets overlap without being equal.
    OverlappingClasses {
        /// First rule index.
        rule_a: usize,
        /// Second rule index.
        rule_b: usize,
        /// `t_a^b`.
        cols_a: Vec<usize>,
        /// `t_b^b`.
        cols_b: Vec<usize>,
    },
    /// Condition 4: removing the recursive atom leaves more than one
    /// maximal connected set.
    DisconnectedBody {
        /// Rule index.
        rule: usize,
        /// Number of connected components found.
        components: usize,
    },
}

impl Violation {
    /// Which of Definition 2.4's conditions (1–4) this violation breaks.
    pub fn condition(&self) -> u8 {
        match self {
            Violation::ShiftingVariable { .. } => 1,
            Violation::HeadBodyMismatch { .. } => 2,
            Violation::OverlappingClasses { .. } => 3,
            Violation::DisconnectedBody { .. } => 4,
        }
    }

    /// The stable diagnostic code for this condition (`SEP001`…`SEP004`).
    pub fn code(&self) -> &'static str {
        match self.condition() {
            1 => "SEP001",
            2 => "SEP002",
            3 => "SEP003",
            _ => "SEP004",
        }
    }

    /// The (first) normalized recursive-rule index this violation cites.
    pub fn rule_index(&self) -> usize {
        match self {
            Violation::ShiftingVariable { rule, .. }
            | Violation::HeadBodyMismatch { rule, .. }
            | Violation::DisconnectedBody { rule, .. } => *rule,
            Violation::OverlappingClasses { rule_a, .. } => *rule_a,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ShiftingVariable { rule, head_pos, body_pos, .. } => write!(
                f,
                "[C1] rule {rule}: shifting variable (head position {head_pos}, body position {body_pos})"
            ),
            Violation::HeadBodyMismatch { rule, head_cols, body_cols } => write!(
                f,
                "[C2] rule {rule}: head columns {head_cols:?} differ from body columns {body_cols:?}"
            ),
            Violation::OverlappingClasses { rule_a, rule_b, cols_a, cols_b } => write!(
                f,
                "[C3] rules {rule_a} and {rule_b}: column sets {cols_a:?} and {cols_b:?} overlap without being equal"
            ),
            Violation::DisconnectedBody { rule, components } => write!(
                f,
                "[C4] rule {rule}: nonrecursive body splits into {components} connected components"
            ),
        }
    }
}

/// The reason a definition is not separable.
///
/// Besides the violations themselves this carries enough context to point
/// back into the source program: the normalized recursive rules the
/// violation indices refer to (with source spans preserved through
/// normalization) and, for each, the index of the rule it came from in
/// [`RecursiveDef::recursive_rules`] (normalization drops tautological
/// rules, so the two sequences can differ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotSeparable {
    /// Every violated condition.
    pub violations: Vec<Violation>,
    /// The normalized recursive rules the violations' `rule` indices cite.
    pub rules: Vec<Rule>,
    /// For each normalized rule, the index of its source rule within the
    /// definition's `recursive_rules`.
    pub source_indices: Vec<usize>,
}

impl NotSeparable {
    /// The normalized rule a violation's index refers to.
    pub fn rule(&self, index: usize) -> Option<&Rule> {
        self.rules.get(index)
    }

    /// Maps a normalized rule index back to the source rule index within
    /// the definition's `recursive_rules`.
    pub fn source_index(&self, index: usize) -> Option<usize> {
        self.source_indices.get(index).copied()
    }
}

impl std::fmt::Display for NotSeparable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "not a separable recursion:")?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for NotSeparable {}

/// A detected separable recursion, normalized and ready for compilation.
#[derive(Debug, Clone)]
pub struct SeparableRecursion {
    /// The recursive predicate `t`.
    pub pred: Sym,
    /// Arity of `t`.
    pub arity: usize,
    /// Canonical head variables: every rule head is
    /// `t(canon[0], ..., canon[k-1])` after normalization.
    pub canon_vars: Vec<Sym>,
    /// The normalized linear recursive rules.
    pub recursive_rules: Vec<Rule>,
    /// The normalized exit rules (bodies may be arbitrary conjunctions over
    /// base predicates).
    pub exit_rules: Vec<Rule>,
    /// The equivalence classes, in order of first rule occurrence.
    pub classes: Vec<EquivClass>,
    /// Persistent columns `t|pers`: positions bound to no class (ascending).
    pub persistent: Vec<usize>,
}

impl SeparableRecursion {
    /// The class index owning `column`, if any.
    pub fn class_of_column(&self, column: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.columns.contains(&column))
    }

    /// The width `w(e_i)` of a class (Definition 4.3).
    pub fn width(&self, class: usize) -> usize {
        self.classes[class].columns.len()
    }
}

/// Options for [`detect_with_options`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectOptions {
    /// Accept rules whose nonrecursive body splits into several maximal
    /// connected sets (Condition 4 of Definition 2.4 relaxed, as discussed
    /// in the paper's Section 5). The evaluation algorithm remains
    /// *correct* on such recursions but loses the focusing effect of the
    /// selection constant: disconnected subgoals are evaluated as cartesian
    /// products, so whole base relations are scanned regardless of the
    /// selection. The `e9` ablation quantifies this.
    pub allow_disconnected_bodies: bool,
}

/// Normalizes and detects: returns the separable structure of `def`, or the
/// list of violated conditions.
///
/// The input definition must already be in the paper's shape (linear
/// recursive rules plus exit rules — see
/// [`RecursiveDef::extract`](sepra_ast::analysis::RecursiveDef::extract)).
///
/// ```
/// use sepra_ast::{parse_program, Interner, RecursiveDef};
/// use sepra_core::detect::detect;
///
/// let mut interner = Interner::new();
/// let program = parse_program(
///     "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
///      buys(X, Y) :- idol(X, W), buys(W, Y).\n\
///      buys(X, Y) :- perfectFor(X, Y).\n",
///     &mut interner,
/// )
/// .unwrap();
/// let buys = interner.intern("buys");
/// let def = RecursiveDef::extract(&program, buys, &interner).unwrap();
/// let sep = detect(&def, &mut interner).unwrap();
/// // Example 2.3 of the paper: one class on column 0, column 1 persistent.
/// assert_eq!(sep.classes.len(), 1);
/// assert_eq!(sep.classes[0].columns, vec![0]);
/// assert_eq!(sep.persistent, vec![1]);
/// ```
pub fn detect(
    def: &RecursiveDef,
    interner: &mut Interner,
) -> Result<SeparableRecursion, NotSeparable> {
    detect_with_options(def, interner, DetectOptions::default())
}

/// [`detect`] with Section 5 relaxations.
pub fn detect_with_options(
    def: &RecursiveDef,
    interner: &mut Interner,
    options: DetectOptions,
) -> Result<SeparableRecursion, NotSeparable> {
    let pred = def.pred;
    let arity = def.arity;

    // Canonical head variables C0..C{k-1}.
    let canon_vars: Vec<Sym> = (0..arity).map(|i| interner.fresh(&format!("C{i}"))).collect();

    let normalize = |rule: &Rule, interner: &mut Interner| -> Rule {
        let rect = rectify_rule(rule, interner);
        standardize_head(&rect, &canon_vars, interner)
    };

    let mut recursive_rules: Vec<Rule> = Vec::new();
    let mut source_indices: Vec<usize> = Vec::new();
    for (si, rule) in def.recursive_rules.iter().enumerate() {
        let norm = normalize(rule, interner);
        // Drop tautologies (t :- t with identical instances): they derive
        // nothing and have no nonrecursive body to classify.
        if let Some(rec) = norm.recursive_atom(pred) {
            let nonrec_empty =
                norm.body.iter().all(|l| matches!(l, Literal::Atom(a) if a.pred == pred));
            if nonrec_empty && rec.terms == norm.head.terms {
                continue;
            }
        }
        recursive_rules.push(norm);
        source_indices.push(si);
    }
    let exit_rules: Vec<Rule> = def.exit_rules.iter().map(|r| normalize(r, interner)).collect();

    let mut violations = Vec::new();
    let mut rule_cols: Vec<Vec<usize>> = Vec::new();

    for (ri, rule) in recursive_rules.iter().enumerate() {
        let rec_atom = rule
            .recursive_atom(pred)
            .expect("linear recursive rule has one recursive atom")
            .clone();

        // --- Condition 1: no shifting variables.
        for (head_pos, term) in rule.head.terms.iter().enumerate() {
            let v = term.as_var().expect("normalized head is all variables");
            for body_pos in rec_atom.positions_of(v) {
                if body_pos != head_pos {
                    violations.push(Violation::ShiftingVariable {
                        rule: ri,
                        var: v,
                        head_pos,
                        body_pos,
                    });
                }
            }
        }

        // The nonrecursive "units": nonrecursive atoms and equality
        // literals, each reduced to its variable set.
        let units: Vec<Vec<Sym>> = nonrecursive_units(rule, pred);
        let unit_vars: BTreeSet<Sym> = units.iter().flatten().copied().collect();

        // --- Condition 2: t_i^h == t_i^b.
        let head_cols: Vec<usize> = rule
            .head
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().filter(|v| unit_vars.contains(v)).map(|_| i))
            .collect();
        let body_cols: Vec<usize> = rec_atom
            .terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().filter(|v| unit_vars.contains(v)).map(|_| i))
            .collect();
        if head_cols != body_cols {
            violations.push(Violation::HeadBodyMismatch {
                rule: ri,
                head_cols: head_cols.clone(),
                body_cols: body_cols.clone(),
            });
        }

        // --- Condition 4: the units form one connected component.
        let components = connected_components(&units);
        if components > 1 && !options.allow_disconnected_bodies {
            violations.push(Violation::DisconnectedBody { rule: ri, components });
        }

        rule_cols.push(body_cols);
    }

    // --- Condition 3: pairwise equal or disjoint column sets.
    for i in 0..rule_cols.len() {
        for j in (i + 1)..rule_cols.len() {
            let a: BTreeSet<usize> = rule_cols[i].iter().copied().collect();
            let b: BTreeSet<usize> = rule_cols[j].iter().copied().collect();
            if a != b && !a.is_disjoint(&b) {
                violations.push(Violation::OverlappingClasses {
                    rule_a: i,
                    rule_b: j,
                    cols_a: rule_cols[i].clone(),
                    cols_b: rule_cols[j].clone(),
                });
            }
        }
    }

    if !violations.is_empty() {
        return Err(NotSeparable { violations, rules: recursive_rules, source_indices });
    }

    // Group rules into equivalence classes by column set.
    let mut classes: Vec<EquivClass> = Vec::new();
    for (ri, cols) in rule_cols.iter().enumerate() {
        if let Some(class) = classes.iter_mut().find(|c| &c.columns == cols) {
            class.rules.push(ri);
        } else {
            classes.push(EquivClass { columns: cols.clone(), rules: vec![ri] });
        }
    }
    let in_class: BTreeSet<usize> =
        classes.iter().flat_map(|c| c.columns.iter().copied()).collect();
    let persistent: Vec<usize> = (0..arity).filter(|p| !in_class.contains(p)).collect();

    Ok(SeparableRecursion {
        pred,
        arity,
        canon_vars,
        recursive_rules,
        exit_rules,
        classes,
        persistent,
    })
}

/// The nonrecursive "units" of a rule body: every nonrecursive atom's
/// variable set, plus every equality literal's variable set. (Equalities
/// come from rectification and connect exactly like a binary predicate.)
fn nonrecursive_units(rule: &Rule, pred: Sym) -> Vec<Vec<Sym>> {
    let mut units = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Atom(a) if a.pred == pred => continue,
            other => units.push(other.vars()),
        }
    }
    units
}

/// Counts connected components among units linked by shared variables.
/// Zero units count as zero components (the caller never passes that for a
/// non-tautological rule).
fn connected_components(units: &[Vec<Sym>]) -> usize {
    let n = units.len();
    if n == 0 {
        return 0;
    }
    // Union-find over unit indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if units[i].iter().any(|v| units[j].contains(v)) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let roots: BTreeSet<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    roots.len()
}

/// Convenience: extract a definition from a program and detect it in one
/// call.
pub fn detect_in_program(
    program: &sepra_ast::Program,
    pred: Sym,
    interner: &mut Interner,
) -> Result<SeparableRecursion, DetectError> {
    let def = RecursiveDef::extract(program, pred, interner).map_err(DetectError::Shape)?;
    detect(&def, interner).map_err(DetectError::NotSeparable)
}

/// Either the program shape is wrong, or Definition 2.4 fails.
#[derive(Debug, Clone)]
pub enum DetectError {
    /// The definition is not a set of linear rules plus exit rules.
    Shape(sepra_ast::AstError),
    /// The definition violates Definition 2.4.
    NotSeparable(NotSeparable),
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::Shape(e) => write!(f, "{e}"),
            DetectError::NotSeparable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DetectError {}

/// Returns the recursive body atom of a normalized rule.
pub(crate) fn recursive_atom(rule: &Rule, pred: Sym) -> &Atom {
    rule.recursive_atom(pred).expect("separable rule has a recursive atom")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    fn detect_src(src: &str, pred: &str) -> Result<SeparableRecursion, DetectError> {
        let mut i = Interner::new();
        let program = parse_program(src, &mut i).unwrap();
        let p = i.intern(pred);
        detect_in_program(&program, p, &mut i)
    }

    #[test]
    fn example_1_1_is_separable_one_class() {
        // buys with friend+idol: one equivalence class on column 0,
        // column 1 persistent (Example 2.3).
        let sep = detect_src(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- idol(X, W), buys(W, Y).\n\
             buys(X, Y) :- perfectFor(X, Y).\n",
            "buys",
        )
        .unwrap();
        assert_eq!(sep.classes.len(), 1);
        assert_eq!(sep.classes[0].columns, vec![0]);
        assert_eq!(sep.classes[0].rules, vec![0, 1]);
        assert_eq!(sep.persistent, vec![1]);
    }

    #[test]
    fn example_1_2_is_separable_two_classes() {
        // buys with friend+cheaper: two classes, no persistent columns
        // (Example 2.3).
        let sep = detect_src(
            "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
             buys(X, Y) :- buys(X, W), cheaper(Y, W).\n\
             buys(X, Y) :- perfectFor(X, Y).\n",
            "buys",
        )
        .unwrap();
        assert_eq!(sep.classes.len(), 2);
        assert_eq!(sep.classes[0].columns, vec![0]);
        assert_eq!(sep.classes[1].columns, vec![1]);
        assert!(sep.persistent.is_empty());
    }

    #[test]
    fn example_2_4_three_ary() {
        let sep = detect_src(
            "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
             t(X, Y, Z) :- t(X, Y, W), b(W, Z).\n\
             t(X, Y, Z) :- t0(X, Y, Z).\n",
            "t",
        )
        .unwrap();
        assert_eq!(sep.classes.len(), 2);
        assert_eq!(sep.classes[0].columns, vec![0, 1]);
        assert_eq!(sep.classes[1].columns, vec![2]);
        assert!(sep.persistent.is_empty());
        assert_eq!(sep.width(0), 2);
        assert_eq!(sep.class_of_column(1), Some(0));
        assert_eq!(sep.class_of_column(2), Some(1));
    }

    #[test]
    fn shifting_variables_are_rejected() {
        // t(X, Y) :- a(X, W), t(Y, W): Y shifts from head pos 1 to body pos 0.
        let err = detect_src(
            "t(X, Y) :- a(X, W), t(Y, W).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap_err();
        let DetectError::NotSeparable(ns) = err else { panic!("expected NotSeparable") };
        assert!(ns.violations.iter().any(|v| matches!(v, Violation::ShiftingVariable { .. })));
    }

    #[test]
    fn head_body_mismatch_is_rejected() {
        // `a` touches head columns {0, 1} but only body column 1 of the
        // recursive instance (W is constrained by nothing).
        let err = detect_src(
            "t(X, Y) :- a(X, Y), t(W, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap_err();
        let DetectError::NotSeparable(ns) = err else { panic!("expected NotSeparable") };
        assert!(
            ns.violations.iter().any(|v| matches!(v, Violation::HeadBodyMismatch { .. })),
            "{ns}"
        );
    }

    #[test]
    fn overlapping_classes_are_rejected() {
        // Rule 1 binds {0,1}; rule 2 binds {1}: overlap without equality.
        let err = detect_src(
            "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
             t(X, Y, Z) :- b(Y, W), t(X, W, Z).\n\
             t(X, Y, Z) :- t0(X, Y, Z).\n",
            "t",
        )
        .unwrap_err();
        let DetectError::NotSeparable(ns) = err else { panic!("expected NotSeparable") };
        assert!(
            ns.violations.iter().any(|v| matches!(v, Violation::OverlappingClasses { .. })),
            "{ns}"
        );
    }

    #[test]
    fn disconnected_body_is_rejected() {
        // Section 5's example: a(X, W) & t(W, Z) & b(Z, Y) — removing t
        // disconnects a from b.
        let err = detect_src(
            "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap_err();
        let DetectError::NotSeparable(ns) = err else { panic!("expected NotSeparable") };
        assert!(ns
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DisconnectedBody { components: 2, .. })));
    }

    #[test]
    fn transitive_closure_is_separable() {
        let sep = detect_src(
            "t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, Y).\n",
            "t",
        )
        .unwrap();
        assert_eq!(sep.classes.len(), 1);
        assert_eq!(sep.classes[0].columns, vec![0]);
        assert_eq!(sep.persistent, vec![1]);
    }

    #[test]
    fn nonlinear_is_a_shape_error() {
        let err = detect_src(
            "t(X, Y) :- t(X, W), t(W, Y).\n\
             t(X, Y) :- e(X, Y).\n",
            "t",
        )
        .unwrap_err();
        assert!(matches!(err, DetectError::Shape(_)));
    }

    #[test]
    fn multi_atom_connected_body_is_accepted() {
        // Two nonrecursive atoms chained through W: one connected set.
        let sep = detect_src(
            "t(X, Y) :- a(X, W), b(W, U), t(U, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap();
        assert_eq!(sep.classes[0].columns, vec![0]);
    }

    #[test]
    fn tautological_rules_are_dropped() {
        let sep = detect_src(
            "t(X, Y) :- t(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap();
        assert_eq!(sep.recursive_rules.len(), 1);
    }

    #[test]
    fn normalized_heads_are_canonical() {
        // Rules written with different head variable names normalize to a
        // shared head vector.
        let sep = detect_src(
            "t(A, B) :- f(A, W), t(W, B).\n\
             t(P, Q) :- g(P, W), t(W, Q).\n\
             t(U, V) :- base(U, V).\n",
            "t",
        )
        .unwrap();
        let h0 = &sep.recursive_rules[0].head;
        let h1 = &sep.recursive_rules[1].head;
        let he = &sep.exit_rules[0].head;
        assert_eq!(h0.terms, h1.terms);
        assert_eq!(h0.terms, he.terms);
        assert_eq!(sep.classes.len(), 1);
        assert_eq!(sep.classes[0].rules, vec![0, 1]);
    }

    #[test]
    fn rectified_head_constants_are_handled() {
        // Head constant: rectification adds V = tom; the equality is a unit
        // connected to nothing else, so condition 4 fails (two components)
        // unless it connects. Here it makes the rule non-separable because
        // V = tom shares no variable with a(X, W).
        let err = detect_src(
            "t(X, tom) :- a(X, W), t(W, tom).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        );
        // Whatever the verdict, detection must not panic and must produce a
        // structured answer.
        match err {
            Ok(sep) => {
                assert!(!sep.classes.is_empty());
            }
            Err(DetectError::NotSeparable(ns)) => assert!(!ns.violations.is_empty()),
            Err(DetectError::Shape(e)) => panic!("unexpected shape error: {e}"),
        }
    }

    #[test]
    fn section_5_relaxation_accepts_disconnected_bodies() {
        // Section 5's example is rejected by default but accepted with the
        // relaxation, forming a single two-column class.
        let mut i = Interner::new();
        let program = parse_program(
            "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            &mut i,
        )
        .unwrap();
        let t = i.intern("t");
        let def = sepra_ast::RecursiveDef::extract(&program, t, &i).unwrap();
        assert!(detect(&def, &mut i).is_err());
        let sep =
            detect_with_options(&def, &mut i, DetectOptions { allow_disconnected_bodies: true })
                .unwrap();
        assert_eq!(sep.classes.len(), 1);
        assert_eq!(sep.classes[0].columns, vec![0, 1]);
        assert!(sep.persistent.is_empty());
    }

    #[test]
    fn cartesian_rule_gets_empty_class() {
        // Nonrecursive atom sharing nothing with t: one unit, empty columns.
        let sep = detect_src(
            "t(X, Y) :- flag(Z), t(X, Y).\n\
             t(X, Y) :- t0(X, Y).\n",
            "t",
        )
        .unwrap();
        assert_eq!(sep.classes.len(), 1);
        assert!(sep.classes[0].columns.is_empty());
        assert_eq!(sep.persistent, vec![0, 1]);
    }
}
