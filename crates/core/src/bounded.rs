//! Boundedness analysis: sufficient conditions under which a linear
//! recursion is equivalent to a *nonrecursive* program.
//!
//! Boundedness is undecidable in general (Gaifman et al.), so this module
//! implements a sound, incomplete test built on three sufficient
//! conditions, checked in order of increasing cost:
//!
//! 1. **Vacuous recursive call** — after equality propagation the
//!    recursive subgoal is identical to the rule head (or the body is
//!    unsatisfiable). Such a rule can only rederive facts it consumed and
//!    is dropped outright.
//! 2. **Exit subsumption** — a nonrecursive rule θ-subsumes the recursive
//!    rule: every fact the recursive rule derives, the exit rule derives
//!    from the same database. The recursive rule is redundant.
//! 3. **Unfolding stabilization** — the chain `U_0, U_1, ...` where `U_0`
//!    is the set of exit rules and `U_{d+1}` resolves each remaining
//!    recursive rule against each rule of `U_d` reaches a depth `k` past
//!    which every new resolvent is θ-subsumed by an already-kept rule.
//!    The kept (nonrecursive) rules are then equivalent to the recursion.
//!
//! **EDB seeding.** The evaluator seeds a derived predicate with the EDB
//! facts asserted under the same name (`t(a, b).` alongside rules for
//! `t`), so a verdict that only considered the program's rules would be
//! unsound: a later fact insertion could feed the recursion new tuples at
//! depth 0. The analysis therefore includes a *synthetic exit rule*
//! `t(V1, ..., Vn) :- t@edb(V1, ..., Vn).` in `U_0`, where `t@edb` is an
//! opaque predicate standing for whatever facts `t` has directly asserted.
//! The verdict is thus a property of the program alone, stable under any
//! mutation of the database; the rewrite realizes `t@edb` by copying `t`'s
//! EDB relation at evaluation time.
//!
//! **Soundness** (why "stabilized" implies "bounded"): by strong induction
//! on derivation depth. A depth-0 fact comes from an exit rule or the EDB
//! (the synthetic rule), both in `U_0`. A depth-`d` fact is a recursive
//! rule `r` applied to a depth-`d-1` fact `g`; by induction `g` is
//! derivable by some kept rule `u`, the lifting lemma makes the fact an
//! instance of `unfold(r, u)`, and at stabilization every such resolvent
//! is θ-subsumed by a kept rule — θ-subsumption only ever *shrinks* the
//! body and *generalizes* the head, so the subsuming rule derives the fact
//! too. Derivations never need more than `k` recursive steps.

use std::collections::BTreeMap;

use sepra_ast::{Atom, Interner, Literal, RecursiveDef, Rule, Sym, Term};

/// Caps for the unfolding chain, so the analysis gives up gracefully on
/// programs where stabilization (if any) is too deep to be worth the
/// nonrecursive expansion.
#[derive(Debug, Clone)]
pub struct BoundedOptions {
    /// Maximum unfolding depth to try before declaring "not provably
    /// bounded".
    pub max_depth: usize,
    /// Maximum number of kept (nonrecursive replacement) rules; chains
    /// that blow past this are abandoned even if they would stabilize.
    pub max_rules: usize,
}

impl Default for BoundedOptions {
    fn default() -> Self {
        BoundedOptions { max_depth: 4, max_rules: 64 }
    }
}

/// Per-recursive-rule classification, parallel to
/// [`RecursiveDef::recursive_rules`]. Drives the BND diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleStatus {
    /// Condition 1: the recursive call is vacuous (subgoal equals the head
    /// after equality propagation, or the body is unsatisfiable).
    Vacuous,
    /// Condition 2: θ-subsumed by the exit rule at this index within
    /// [`RecursiveDef::exit_rules`].
    ExitSubsumed(usize),
    /// Neither shortcut applied; the rule participated in the unfolding
    /// chain (condition 3).
    Unfolded,
}

/// A proof that a recursion is bounded, with the nonrecursive replacement.
#[derive(Debug, Clone)]
pub struct BoundedRecursion {
    /// The recursive predicate.
    pub pred: Sym,
    /// Its arity.
    pub arity: usize,
    /// The stabilization depth `k`: every derivation needs at most `k`
    /// applications of a recursive rule. `0` when every recursive rule was
    /// vacuous or exit-subsumed.
    pub depth: usize,
    /// Nonrecursive replacement rules for `pred` (the kept chain
    /// `U_0 ∪ ... ∪ U_k`, with θ-subsumed members pruned). Bodies may
    /// reference [`BoundedRecursion::edb_pred`].
    pub rules: Vec<Rule>,
    /// The synthetic predicate standing for `pred`'s directly-asserted EDB
    /// facts; the evaluator must bind it to a copy of that relation.
    pub edb_pred: Sym,
    /// Classification of each recursive rule, in source order.
    pub statuses: Vec<RuleStatus>,
}

/// Analyzes `def` for boundedness with default caps. `None` means "not
/// provably bounded" — never "definitely unbounded".
pub fn analyze(def: &RecursiveDef, interner: &mut Interner) -> Option<BoundedRecursion> {
    analyze_with_options(def, interner, &BoundedOptions::default())
}

/// [`analyze`] with explicit chain caps.
pub fn analyze_with_options(
    def: &RecursiveDef,
    interner: &mut Interner,
    opts: &BoundedOptions,
) -> Option<BoundedRecursion> {
    let pred = def.pred;
    let edb_name = format!("{}@edb", interner.resolve(pred));
    let edb_pred = interner.intern(&edb_name);

    // U_0: simplified exit rules plus the synthetic EDB rule, with
    // θ-subsumed members pruned as they arrive.
    let mut kept: Vec<Rule> = Vec::new();
    let simplified_exits: Vec<Option<Rule>> =
        def.exit_rules.iter().map(|r| simplify(r.clone())).collect();
    for rule in simplified_exits.iter().flatten() {
        push_unless_subsumed(&mut kept, rule.clone());
    }
    let vars: Vec<Term> =
        (0..def.arity).map(|i| Term::Var(interner.fresh(&format!("V{i}")))).collect();
    let synthetic =
        Rule::new(Atom::new(pred, vars.clone()), vec![Literal::Atom(Atom::new(edb_pred, vars))]);
    push_unless_subsumed(&mut kept, synthetic);

    // Classify each recursive rule; the survivors drive the chain.
    let mut statuses: Vec<RuleStatus> = Vec::new();
    let mut active: Vec<Rule> = Vec::new();
    for rule in &def.recursive_rules {
        let Some(simplified) = simplify(rule.clone()) else {
            statuses.push(RuleStatus::Vacuous);
            continue;
        };
        let rec_atom = simplified.recursive_atom(pred).expect("recursive rule keeps its subgoal");
        if *rec_atom == simplified.head {
            statuses.push(RuleStatus::Vacuous);
            continue;
        }
        let subsumed_by = simplified_exits
            .iter()
            .enumerate()
            .find(|(_, e)| e.as_ref().is_some_and(|e| subsumes(e, &simplified)));
        if let Some((i, _)) = subsumed_by {
            statuses.push(RuleStatus::ExitSubsumed(i));
            continue;
        }
        statuses.push(RuleStatus::Unfolded);
        active.push(simplified);
    }

    let mut depth = 0;
    if !active.is_empty() {
        let mut frontier: Vec<Rule> = kept.clone();
        let mut stabilized = false;
        for d in 1..=opts.max_depth {
            let mut next: Vec<Rule> = Vec::new();
            for r in &active {
                for u in &frontier {
                    let Some(w) = unfold(r, pred, u, interner) else { continue };
                    if kept.iter().chain(&next).any(|k| subsumes(k, &w)) {
                        continue;
                    }
                    next.push(w);
                }
            }
            if next.is_empty() {
                depth = d - 1;
                stabilized = true;
                break;
            }
            kept.extend(next.clone());
            if kept.len() > opts.max_rules {
                return None;
            }
            frontier = next;
        }
        if !stabilized {
            return None;
        }
    }

    Some(BoundedRecursion { pred, arity: def.arity, depth, rules: kept, edb_pred, statuses })
}

fn push_unless_subsumed(kept: &mut Vec<Rule>, rule: Rule) {
    if !kept.iter().any(|k| subsumes(k, &rule)) {
        kept.push(rule);
    }
}

// ---------------------------------------------------------------------------
// Substitutions and unification (function-free terms).

type Subst = BTreeMap<Sym, Term>;

/// Chases variable bindings to a fixed representative.
fn walk(subst: &Subst, mut t: Term) -> Term {
    while let Term::Var(v) = t {
        match subst.get(&v) {
            Some(&next) => t = next,
            None => break,
        }
    }
    t
}

/// Unifies two terms under `subst`, extending it. Either side may bind.
fn unify_terms(a: Term, b: Term, subst: &mut Subst) -> bool {
    let a = walk(subst, a);
    let b = walk(subst, b);
    match (a, b) {
        _ if a == b => true,
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            subst.insert(v, other);
            true
        }
        _ => false,
    }
}

fn unify_atoms(a: &Atom, b: &Atom, subst: &mut Subst) -> bool {
    a.pred == b.pred
        && a.arity() == b.arity()
        && a.terms.iter().zip(&b.terms).all(|(&x, &y)| unify_terms(x, y, subst))
}

fn apply_subst_rule(rule: &Rule, subst: &Subst) -> Rule {
    rule.substitute(&|v| match walk(subst, Term::Var(v)) {
        Term::Var(w) if w == v => None,
        t => Some(t),
    })
}

/// Renames every variable of `rule` to a fresh one.
fn rename_apart(rule: &Rule, interner: &mut Interner) -> Rule {
    let mut map: BTreeMap<Sym, Sym> = BTreeMap::new();
    for v in rule.vars() {
        let name = interner.resolve(v).to_string();
        let fresh = interner.fresh(&name);
        map.insert(v, fresh);
    }
    rule.substitute(&|v| map.get(&v).map(|&w| Term::Var(w)))
}

// ---------------------------------------------------------------------------
// Equality propagation.

/// Propagates `Eq` literals through the rule (binding variables, dropping
/// trivial equalities, deduplicating the body). Returns `None` when the
/// body contains an unsatisfiable equality between distinct constants —
/// the rule can never fire.
fn simplify(rule: Rule) -> Option<Rule> {
    let mut rule = rule;
    loop {
        let mut action: Option<(usize, Option<(Sym, Term)>)> = None;
        for (i, lit) in rule.body.iter().enumerate() {
            if let Literal::Eq(l, r) = lit {
                match (*l, *r) {
                    (Term::Var(v), t) | (t, Term::Var(v)) => {
                        if t == Term::Var(v) {
                            action = Some((i, None));
                        } else {
                            action = Some((i, Some((v, t))));
                        }
                        break;
                    }
                    (Term::Const(a), Term::Const(b)) => {
                        if a == b {
                            action = Some((i, None));
                            break;
                        }
                        return None;
                    }
                }
            }
        }
        match action {
            None => break,
            Some((i, binding)) => {
                rule.body.remove(i);
                if let Some((v, t)) = binding {
                    rule = rule.substitute(&|w| (w == v).then_some(t));
                }
            }
        }
    }
    let mut deduped: Vec<Literal> = Vec::with_capacity(rule.body.len());
    for lit in rule.body {
        if !deduped.contains(&lit) {
            deduped.push(lit);
        }
    }
    rule.body = deduped;
    Some(rule)
}

// ---------------------------------------------------------------------------
// θ-subsumption.

/// One-way matching: extends `subst` so `pat`θ == `tgt`, binding only
/// variables on the pattern side (target variables are treated as inert —
/// Skolem constants). Returns the bindings added, for backtracking.
fn match_term(pat: Term, tgt: Term, subst: &mut Subst) -> Option<Option<Sym>> {
    match pat {
        Term::Var(v) => match subst.get(&v) {
            Some(&bound) => (bound == tgt).then_some(None),
            None => {
                subst.insert(v, tgt);
                Some(Some(v))
            }
        },
        Term::Const(_) => (pat == tgt).then_some(None),
    }
}

fn match_atom(pat: &Atom, tgt: &Atom, subst: &mut Subst) -> Option<Vec<Sym>> {
    if pat.pred != tgt.pred || pat.arity() != tgt.arity() {
        return None;
    }
    let mut added = Vec::new();
    for (&p, &t) in pat.terms.iter().zip(&tgt.terms) {
        match match_term(p, t, subst) {
            Some(Some(v)) => added.push(v),
            Some(None) => {}
            None => {
                for v in added {
                    subst.remove(&v);
                }
                return None;
            }
        }
    }
    Some(added)
}

fn match_literal(pat: &Literal, tgt: &Literal, subst: &mut Subst) -> Option<Vec<Sym>> {
    match (pat, tgt) {
        (Literal::Atom(p), Literal::Atom(t)) => match_atom(p, t, subst),
        (Literal::Eq(pl, pr), Literal::Eq(tl, tr)) => {
            // Equality is symmetric: try both orientations.
            for (l, r) in [(tl, tr), (tr, tl)] {
                let mut added = Vec::new();
                let ok =
                    [(pl, l), (pr, r)].into_iter().all(|(&p, &t)| match match_term(p, t, subst) {
                        Some(Some(v)) => {
                            added.push(v);
                            true
                        }
                        Some(None) => true,
                        None => false,
                    });
                if ok {
                    return Some(added);
                }
                for v in added {
                    subst.remove(&v);
                }
            }
            None
        }
        _ => None,
    }
}

/// Whether `general` θ-subsumes `specific`: some substitution θ over
/// `general`'s variables makes its head equal to `specific`'s head and its
/// body a sub-multiset of `specific`'s body. Backtracks over the choice of
/// target literal for each pattern literal.
fn subsumes(general: &Rule, specific: &Rule) -> bool {
    let mut subst = Subst::new();
    if match_atom(&general.head, &specific.head, &mut subst).is_none() {
        return false;
    }
    fn cover(pats: &[Literal], tgts: &[Literal], subst: &mut Subst) -> bool {
        let Some(pat) = pats.first() else { return true };
        for tgt in tgts {
            if let Some(added) = match_literal(pat, tgt, subst) {
                if cover(&pats[1..], tgts, subst) {
                    return true;
                }
                for v in added {
                    subst.remove(&v);
                }
            }
        }
        false
    }
    cover(&general.body, &specific.body, &mut subst)
}

// ---------------------------------------------------------------------------
// Unfolding.

/// Resolves the recursive subgoal of `rec` (its single `pred` atom)
/// against the head of the nonrecursive rule `with`: the resolvent derives
/// exactly what `rec` derives when the subgoal fact came from `with`.
/// `None` when the heads do not unify (e.g. clashing head constants).
fn unfold(rec: &Rule, pred: Sym, with: &Rule, interner: &mut Interner) -> Option<Rule> {
    let with = rename_apart(with, interner);
    let rec_atom = rec.recursive_atom(pred).expect("recursive rule has its subgoal");
    let mut subst = Subst::new();
    if !unify_atoms(rec_atom, &with.head, &mut subst) {
        return None;
    }
    let mut body: Vec<Literal> = Vec::new();
    for lit in &rec.body {
        match lit {
            Literal::Atom(a) if a == rec_atom => body.extend(with.body.iter().cloned()),
            other => body.push(other.clone()),
        }
    }
    simplify(apply_subst_rule(&Rule::new(rec.head.clone(), body), &subst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::parse_program;

    fn analyze_src(src: &str, pred: &str) -> (Option<BoundedRecursion>, Interner) {
        let mut interner = Interner::new();
        let program = parse_program(src, &mut interner).expect("parses");
        let sym = interner.get(pred).expect("pred interned");
        let def = RecursiveDef::extract(&program, sym, &interner).expect("extracts");
        let bounded = analyze(&def, &mut interner);
        (bounded, interner)
    }

    #[test]
    fn vacuous_recursive_call_is_bounded_at_zero() {
        let (b, _) = analyze_src("t(X, Y) :- e(X, Y), t(X, Y).\nt(X, Y) :- t0(X, Y).\n", "t");
        let b = b.expect("bounded");
        assert_eq!(b.depth, 0);
        assert_eq!(b.statuses, vec![RuleStatus::Vacuous]);
        // Replacement: the exit rule plus the synthetic EDB rule.
        assert_eq!(b.rules.len(), 2);
    }

    #[test]
    fn constant_propagation_detects_vacuous_call() {
        // W = Y makes the recursive subgoal identical to the head.
        let (b, _) =
            analyze_src("t(X, Y) :- e(X, Y), W = Y, t(X, W).\nt(X, Y) :- t0(X, Y).\n", "t");
        assert_eq!(b.expect("bounded").statuses, vec![RuleStatus::Vacuous]);
    }

    #[test]
    fn unsatisfiable_body_is_vacuous() {
        let (b, _) = analyze_src("t(X) :- e(X), a = b, t(X).\nt(X) :- t0(X).\n", "t");
        assert_eq!(b.expect("bounded").statuses, vec![RuleStatus::Vacuous]);
    }

    #[test]
    fn exit_subsumption_is_bounded_at_zero() {
        // Whenever e(X, Y) and t(Y, X) hold, the exit rule already derives
        // t(X, Y) from e(X, Y) alone.
        let (b, _) = analyze_src("t(X, Y) :- e(X, Y), t(Y, X).\nt(X, Y) :- e(X, Y).\n", "t");
        let b = b.expect("bounded");
        assert_eq!(b.depth, 0);
        assert_eq!(b.statuses, vec![RuleStatus::ExitSubsumed(0)]);
    }

    #[test]
    fn swap_recursion_stabilizes_at_depth_one() {
        // One application flips an existing fact's orientation; a second
        // application lands back on facts depth one already covers.
        let (b, _) = analyze_src("t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n", "t");
        let b = b.expect("bounded");
        assert_eq!(b.depth, 1);
        assert_eq!(b.statuses, vec![RuleStatus::Unfolded]);
        // U_0 (exit + synthetic) plus the two depth-1 resolvents.
        assert_eq!(b.rules.len(), 4);
    }

    #[test]
    fn transitive_closure_is_not_bounded() {
        let (b, _) = analyze_src("t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\n", "t");
        assert!(b.is_none());
    }

    #[test]
    fn exit_head_constant_restricts_unfolding() {
        // The recursive subgoal t(Y, W) only resolves against the exit head
        // t(a, Z) by binding Y = a; the chain still must account for the
        // synthetic EDB rule, which keeps this recursion unbounded.
        let (b, _) = analyze_src("t(X, Y) :- e(X, Y), t(Y, W).\nt(a, Z) :- s(Z).\n", "t");
        assert!(b.is_none());
    }

    #[test]
    fn edb_seeding_blocks_unsound_verdicts() {
        // The exit rule subsumes every exit-branch resolvent (depth-1
        // unfolding only adds literals), so a chain that ignored directly
        // asserted t-facts would report bounded at depth 0. But an EDB
        // fact t(a, b) with a outside `u` feeds the recursion fresh
        // tuples along e-paths — a real fixpoint, and the synthetic
        // `t@edb` branch correctly refuses to stabilize.
        let (b, _) =
            analyze_src("t(X, Y) :- e(X, Z), u(X), t(Z, Y).\nt(X, Y) :- u(X), u(Y).\n", "t");
        assert!(b.is_none());
    }

    #[test]
    fn replacement_rules_are_nonrecursive() {
        let (b, interner) =
            analyze_src("t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n", "t");
        let b = b.expect("bounded");
        let t = interner.get("t").unwrap();
        for rule in &b.rules {
            assert_eq!(rule.head.pred, t);
            assert!(!rule.is_recursive_in(t), "replacement must not recurse");
        }
        assert!(interner.get("t@edb").is_some());
    }

    #[test]
    fn depth_caps_are_respected() {
        let opts = BoundedOptions { max_depth: 0, max_rules: 64 };
        let mut interner = Interner::new();
        let program = parse_program(
            "t(X, Y) :- sym(X, Y), t(Y, X).\nt(X, Y) :- base(X, Y).\n",
            &mut interner,
        )
        .unwrap();
        let sym = interner.get("t").unwrap();
        let def = RecursiveDef::extract(&program, sym, &interner).unwrap();
        assert!(analyze_with_options(&def, &mut interner, &opts).is_none());
    }

    #[test]
    fn subsumption_matches_instances_not_generalizations() {
        let mut i = Interner::new();
        let p = parse_program(
            "t(X, Y) :- e(X, Y).\nt(a, Y) :- e(a, Y), f(Y).\nt(X, X) :- e(X, X), g(X).\n",
            &mut i,
        )
        .unwrap();
        // General rule subsumes both specialized ones...
        assert!(subsumes(&p.rules[0], &p.rules[1]));
        assert!(subsumes(&p.rules[0], &p.rules[2]));
        // ...but not vice versa.
        assert!(!subsumes(&p.rules[1], &p.rules[0]));
        assert!(!subsumes(&p.rules[2], &p.rules[0]));
    }

    #[test]
    fn subsumption_requires_body_containment() {
        let mut i = Interner::new();
        let p = parse_program("t(X, Y) :- e(X, Y), f(Y).\nt(X, Y) :- e(X, Y).\n", &mut i).unwrap();
        assert!(!subsumes(&p.rules[0], &p.rules[1]), "larger body cannot subsume");
        assert!(subsumes(&p.rules[1], &p.rules[0]));
    }

    #[test]
    fn subsumption_backtracks_over_literal_choices() {
        // Matching e(X, W) against e(a, b) first (binding X=a, W=b) dead-ends
        // at f(W); the cover must backtrack and pick e(a, c) instead.
        let mut i = Interner::new();
        let p = parse_program("t(X) :- e(X, W), f(W).\nt(a) :- e(a, b), e(a, c), f(c).\n", &mut i)
            .unwrap();
        assert!(subsumes(&p.rules[0], &p.rules[1]));
    }

    #[test]
    fn spk_family_is_not_bounded() {
        for (k, p) in [(1, 1), (2, 2), (3, 1)] {
            let src = sepra_gen_free_spk(k, p);
            let (b, _) = analyze_src(&src, "t");
            assert!(b.is_none(), "S_p^k must not be marked bounded:\n{src}");
        }
    }

    /// Local copy of the `S_p^k` shape (the gen crate depends on core, so
    /// core tests cannot depend back on gen).
    fn sepra_gen_free_spk(k: usize, p: usize) -> String {
        use std::fmt::Write as _;
        let head_vars: Vec<String> = (1..=k).map(|i| format!("X{i}")).collect();
        let head = head_vars.join(", ");
        let tail = if k > 1 { format!(", {}", head_vars[1..].join(", ")) } else { String::new() };
        let mut out = String::new();
        for i in 1..=p {
            let _ = writeln!(out, "t({head}) :- a{i}(X1, W), t(W{tail}).");
        }
        let _ = writeln!(out, "t({head}) :- t0({head}).");
        out
    }
}
