//! Polarity-aware stratification analysis.
//!
//! Pure positive Datalog needs only a dependency *order* (strongly connected
//! components, callees first). Negation and aggregation additionally need a
//! *stratification*: a level assignment in which a negated or aggregated
//! predicate is fully computed in a strictly lower stratum than every rule
//! that reads it through the negation/aggregation, so the fixpoint never
//! retracts what a higher stratum already consumed.
//!
//! This crate labels every dependency edge with a [`Polarity`], finds the
//! strongly connected components, and either assigns stratum numbers
//! (longest path over the condensation, bumping across negative and
//! aggregate boundaries) or produces a cycle witness naming both offending
//! rules. Monotonic aggregates follow Zaniolo et al. ("Fixpoint Semantics
//! and Optimization of Recursive Datalog Programs with Aggregates"):
//! `min`/`max` retain least-fixpoint semantics inside a self-recursion, so a
//! predicate may read *itself* through `min`/`max`; `count`/`sum` grow with
//! every contribution and are confined to non-recursive strata.

use std::collections::BTreeMap;

use sepra_ast::{AggFunc, Program, Span, Sym};

/// How a rule body reaches a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// A plain positive atom.
    Positive,
    /// A negated atom (`!p(...)`).
    Negative,
    /// A positive atom read by a rule whose head aggregates with `AggFunc`.
    Aggregate(AggFunc),
}

impl Polarity {
    /// Whether crossing this edge forces a stratum boundary.
    fn is_boundary(self) -> bool {
        !matches!(self, Polarity::Positive)
    }
}

/// One labeled dependency edge: the head predicate of `rule` reads `to`.
#[derive(Debug, Clone)]
struct Edge {
    from: usize,
    to: usize,
    polarity: Polarity,
    /// Span of the whole rule this edge comes from.
    rule_span: Span,
    /// Span of the body atom (for `Negative`) or of the aggregate
    /// annotation (for `Aggregate`); the rule span otherwise.
    site_span: Span,
}

/// A successful stratification.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum number of every predicate (EDB predicates sit in stratum 0).
    pub stratum_of: BTreeMap<Sym, usize>,
    /// Predicates grouped by stratum, lowest first; within a stratum,
    /// first-occurrence order.
    pub strata: Vec<Vec<Sym>>,
}

impl Stratification {
    /// Number of strata (at least 1 for a non-empty program).
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether there are no predicates at all.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }
}

/// Why a program cannot be stratified. Each variant cites the rule
/// containing the offending construct *and* a rule on the dependency path
/// that closes the cycle (the same rule twice for a self-cycle).
#[derive(Debug, Clone)]
pub enum StratError {
    /// A negated predicate is reachable from the negating rule's head:
    /// `p` reads `!q` while `q` (transitively) reads `p`.
    NegationInCycle {
        /// Head predicate of the negating rule.
        head: Sym,
        /// The negated predicate.
        negated: Sym,
        /// Span of the rule containing the negated literal.
        rule_span: Span,
        /// Span of the negated atom itself.
        site_span: Span,
        /// Span of a rule on the path from `negated` back to `head`.
        back_span: Span,
        /// The predicates on the cycle, starting at `head`.
        cycle: Vec<Sym>,
    },
    /// Two proper rules for the same head disagree on the aggregate
    /// annotation (different function, different position, or only one of
    /// them aggregates) — evaluation would have to pick one arbitrarily.
    /// Facts are exempt: a fact for an aggregate head is a contribution,
    /// exactly like an EDB tuple.
    MixedAggregate {
        /// The predicate with conflicting definitions.
        head: Sym,
        /// Span of the later, disagreeing rule.
        rule_span: Span,
        /// Span of its annotation (the whole rule if it has none).
        site_span: Span,
        /// Span of the first rule that fixed the expected annotation.
        back_span: Span,
    },
    /// An aggregate participates in recursion it cannot support: `count`
    /// or `sum` in any cycle, or `min`/`max` in a cycle through *other*
    /// predicates (only direct self-recursion keeps their least-fixpoint
    /// reading).
    AggregateInCycle {
        /// Head predicate of the aggregating rule.
        head: Sym,
        /// The aggregate function.
        func: AggFunc,
        /// Span of the aggregating rule.
        rule_span: Span,
        /// Span of the aggregate annotation (`min<C>`).
        site_span: Span,
        /// Span of a rule on the path closing the cycle.
        back_span: Span,
        /// The predicates on the cycle, starting at `head`.
        cycle: Vec<Sym>,
    },
}

impl StratError {
    /// Renders the error as one line with predicate names resolved —
    /// evaluators embed this in their structured errors; `sepra check`
    /// renders the spans instead.
    pub fn describe(&self, interner: &sepra_ast::Interner) -> String {
        let join = |cycle: &[Sym]| {
            let mut parts: Vec<&str> = cycle.iter().map(|&p| interner.resolve(p)).collect();
            parts.push(interner.resolve(cycle[0]));
            parts.join(" -> ")
        };
        match self {
            StratError::NegationInCycle { head, negated, cycle, .. } => format!(
                "`{}` negates `{}`, but `{}` depends on `{}` (cycle: {}); \
                 negation must read a strictly lower stratum",
                interner.resolve(*head),
                interner.resolve(*negated),
                interner.resolve(*negated),
                interner.resolve(*head),
                join(cycle),
            ),
            StratError::MixedAggregate { head, .. } => format!(
                "the rules defining `{}` disagree on its aggregate annotation; every \
                 proper rule for an aggregate head must carry the same `func<Var>`",
                interner.resolve(*head),
            ),
            StratError::AggregateInCycle { head, func, cycle, .. } => format!(
                "`{}` aggregates with `{}` inside recursion (cycle: {}); only `min`/`max` \
                 may read their own head back, and only through direct self-recursion",
                interner.resolve(*head),
                func.keyword(),
                join(cycle),
            ),
        }
    }
}

/// Stratifies `program`, or explains why it cannot be stratified.
///
/// The returned strata are *levels*, not evaluation units: evaluation still
/// proceeds SCC-by-SCC (see `sepra_ast::DependencyGraph::strata`), but every
/// SCC lies entirely within one level, negated/aggregated predicates lie in
/// strictly lower levels than their readers (except the sanctioned
/// `min`/`max` self-recursion), and the level of a predicate only depends
/// on predicates at its own or lower levels.
pub fn stratify(program: &Program) -> Result<Stratification, StratError> {
    // Aggregate annotations must agree across every proper rule of a head:
    // evaluation keeps exactly one stored tuple per group, so two rules
    // pulling in different directions have no coherent reading. (Facts are
    // contributions, like EDB tuples, and carry no annotation anyway.)
    let mut agg_of: BTreeMap<Sym, &sepra_ast::Rule> = BTreeMap::new();
    for rule in program.proper_rules() {
        let Some(first) = agg_of.get(&rule.head.pred) else {
            agg_of.insert(rule.head.pred, rule);
            continue;
        };
        if first.agg != rule.agg {
            return Err(StratError::MixedAggregate {
                head: rule.head.pred,
                rule_span: rule.span(),
                site_span: rule.agg.as_ref().map_or(rule.span(), |a| a.span),
                back_span: first.span(),
            });
        }
    }

    let preds = program.predicates();
    let index: BTreeMap<Sym, usize> = preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let mut edges: Vec<Edge> = Vec::new();
    for rule in &program.rules {
        let from = index[&rule.head.pred];
        for atom in rule.body_atoms() {
            let polarity = match &rule.agg {
                Some(spec) => Polarity::Aggregate(spec.func),
                None => Polarity::Positive,
            };
            let site_span = match &rule.agg {
                Some(spec) => spec.span,
                None => rule.span(),
            };
            edges.push(Edge {
                from,
                to: index[&atom.pred],
                polarity,
                rule_span: rule.span(),
                site_span,
            });
        }
        for atom in rule.negated_atoms() {
            edges.push(Edge {
                from,
                to: index[&atom.pred],
                polarity: Polarity::Negative,
                rule_span: rule.span(),
                site_span: atom.span,
            });
        }
    }

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); preds.len()];
    for (i, e) in edges.iter().enumerate() {
        adj[e.from].push(i);
    }
    let (scc_of, scc_count) = tarjan(preds.len(), &adj, &edges);

    // Reject boundary edges inside a cycle.
    for edge in &edges {
        if !edge.polarity.is_boundary() || scc_of[edge.from] != scc_of[edge.to] {
            continue;
        }
        // `min`/`max` may close a *direct* self-recursion: the SCC is the
        // head predicate alone, reading itself through the aggregate.
        if let Polarity::Aggregate(func) = edge.polarity {
            let scc = scc_of[edge.from];
            let scc_size = scc_of.iter().filter(|&&c| c == scc).count();
            if func.monotonic_in_recursion() && scc_size == 1 {
                continue;
            }
        }
        let (back_span, cycle) = cycle_witness(edge, &adj, &edges, &scc_of, &preds);
        return Err(match edge.polarity {
            Polarity::Negative => StratError::NegationInCycle {
                head: preds[edge.from],
                negated: preds[edge.to],
                rule_span: edge.rule_span,
                site_span: edge.site_span,
                back_span,
                cycle,
            },
            Polarity::Aggregate(func) => StratError::AggregateInCycle {
                head: preds[edge.from],
                func,
                rule_span: edge.rule_span,
                site_span: edge.site_span,
                back_span,
                cycle,
            },
            Polarity::Positive => unreachable!("positive edges are never boundaries"),
        });
    }

    // Assign stratum numbers: longest path over the condensation. Tarjan
    // numbers components in reverse topological order (callees first), so a
    // single forward sweep over components sees every dependency resolved.
    let mut scc_stratum = vec![0usize; scc_count];
    let mut order: Vec<usize> = (0..preds.len()).collect();
    order.sort_by_key(|&n| scc_of[n]);
    for &node in &order {
        for &ei in &adj[node] {
            let edge = &edges[ei];
            if scc_of[edge.from] == scc_of[edge.to] {
                continue; // sanctioned self-recursion, no bump
            }
            let bump = usize::from(edge.polarity.is_boundary());
            let wanted = scc_stratum[scc_of[edge.to]] + bump;
            let own = &mut scc_stratum[scc_of[edge.from]];
            *own = (*own).max(wanted);
        }
    }

    let mut stratum_of = BTreeMap::new();
    let mut n_strata = 0usize;
    for (i, &p) in preds.iter().enumerate() {
        let s = scc_stratum[scc_of[i]];
        stratum_of.insert(p, s);
        n_strata = n_strata.max(s + 1);
    }
    let mut strata = vec![Vec::new(); n_strata];
    for &p in &preds {
        strata[stratum_of[&p]].push(p);
    }
    Ok(Stratification { stratum_of, strata })
}

/// Finds a dependency path from `edge.to` back to `edge.from` inside their
/// shared SCC, returning the span of the first rule on that path and the
/// full predicate cycle starting at `edge.from`. A self-loop (the rule
/// negates/aggregates its own head) cites the offending rule itself.
fn cycle_witness(
    edge: &Edge,
    adj: &[Vec<usize>],
    edges: &[Edge],
    scc_of: &[usize],
    preds: &[Sym],
) -> (Span, Vec<Sym>) {
    if edge.from == edge.to {
        return (edge.rule_span, vec![preds[edge.from]]);
    }
    let scc = scc_of[edge.from];
    // BFS from edge.to to edge.from over same-SCC edges, recording the edge
    // that discovered each node.
    let mut prev: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::from([edge.to]);
    let mut seen = vec![false; adj.len()];
    seen[edge.to] = true;
    while let Some(node) = queue.pop_front() {
        if node == edge.from {
            break;
        }
        for &ei in &adj[node] {
            let e = &edges[ei];
            if scc_of[e.to] != scc || seen[e.to] {
                continue;
            }
            seen[e.to] = true;
            prev[e.to] = Some(ei);
            queue.push_back(e.to);
        }
    }
    // Walk back from edge.from to edge.to collecting the path.
    let mut path_edges = Vec::new();
    let mut node = edge.from;
    while node != edge.to {
        let Some(ei) = prev[node] else { break };
        path_edges.push(ei);
        node = edges[ei].from;
    }
    path_edges.reverse();
    let back_span = path_edges.first().map_or(edge.rule_span, |&ei| edges[ei].rule_span);
    let mut cycle = vec![preds[edge.from], preds[edge.to]];
    for &ei in &path_edges {
        let p = preds[edges[ei].to];
        if *cycle.last().unwrap() != p && cycle[0] != p {
            cycle.push(p);
        }
    }
    (back_span, cycle)
}

/// Iterative Tarjan SCC over the edge-list representation. Components are
/// numbered in reverse topological order: callees get smaller ids.
fn tarjan(n: usize, adj: &[Vec<usize>], edges: &[Edge]) -> (Vec<usize>, usize) {
    let mut index_of = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    for root in 0..n {
        if index_of[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index_of[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = frames.last_mut() {
            let node = frame.0;
            if let Some(&ei) = adj[node].get(frame.1) {
                frame.1 += 1;
                let next = edges[ei].to;
                if index_of[next] == usize::MAX {
                    index_of[next] = next_index;
                    low[next] = next_index;
                    next_index += 1;
                    stack.push(next);
                    on_stack[next] = true;
                    frames.push((next, 0));
                } else if on_stack[next] {
                    low[node] = low[node].min(index_of[next]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[node]);
                }
                if low[node] == index_of[node] {
                    loop {
                        let member = stack.pop().expect("scc stack underflow");
                        on_stack[member] = false;
                        scc_of[member] = scc_count;
                        if member == node {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program_raw, Interner};

    fn strat(src: &str) -> (Result<Stratification, StratError>, Interner) {
        let mut i = Interner::new();
        let p = parse_program_raw(src, &mut i).unwrap();
        (stratify(&p), i)
    }

    #[test]
    fn pure_positive_is_one_stratum() {
        let (s, mut i) = strat(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n",
        );
        let s = s.unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.stratum_of[&i.intern("t")], 0);
        assert_eq!(s.stratum_of[&i.intern("e")], 0);
    }

    #[test]
    fn negation_bumps_a_stratum() {
        let (s, mut i) = strat(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n",
        );
        let s = s.unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stratum_of[&i.intern("t")], 0);
        assert_eq!(s.stratum_of[&i.intern("unreach")], 1);
    }

    #[test]
    fn negation_in_cycle_is_rejected_with_both_rules() {
        let src = "p(X) :- a(X), !q(X).\n\
                   q(X) :- b(X), p(X).\n";
        let (s, mut i) = strat(src);
        let Err(StratError::NegationInCycle { head, negated, rule_span, back_span, cycle, .. }) = s
        else {
            panic!("expected NegationInCycle, got {s:?}");
        };
        assert_eq!(head, i.intern("p"));
        assert_eq!(negated, i.intern("q"));
        let text = |sp: Span| &src[sp.start as usize..sp.end as usize];
        assert_eq!(text(rule_span), "p(X) :- a(X), !q(X).");
        assert_eq!(text(back_span), "q(X) :- b(X), p(X).");
        assert_eq!(cycle, vec![i.intern("p"), i.intern("q")]);
    }

    #[test]
    fn self_negation_cites_the_rule_twice() {
        let src = "p(X) :- a(X), !p(X).\n";
        let (s, _) = strat(src);
        let Err(StratError::NegationInCycle { rule_span, back_span, cycle, .. }) = s else {
            panic!("expected NegationInCycle, got {s:?}");
        };
        assert_eq!(rule_span, back_span);
        assert_eq!(cycle.len(), 1);
    }

    #[test]
    fn min_self_recursion_is_allowed() {
        let (s, mut i) = strat(
            "shortest(Y, min<C>) :- source(X), edge(X, Y, C).\n\
             shortest(Y, min<C>) :- shortest(X, D), edge(X, Y, W), C = D + W.\n",
        );
        let s = s.unwrap();
        // Aggregation over edge/source forces a boundary below `shortest`.
        assert_eq!(s.stratum_of[&i.intern("shortest")], 1);
        assert_eq!(s.stratum_of[&i.intern("edge")], 0);
    }

    #[test]
    fn count_in_recursion_is_rejected() {
        let src = "reach(X, count<C>) :- reach(Y, C), e(Y, X).\n";
        let (s, _) = strat(src);
        let Err(StratError::AggregateInCycle { func, rule_span, back_span, .. }) = s else {
            panic!("expected AggregateInCycle, got {s:?}");
        };
        assert_eq!(func, AggFunc::Count);
        assert_eq!(rule_span, back_span);
    }

    #[test]
    fn min_through_mutual_recursion_is_rejected() {
        let src = "p(X, min<C>) :- q(X, C).\n\
                   q(X, C) :- p(X, C), e(X).\n";
        let (s, mut i) = strat(src);
        let Err(StratError::AggregateInCycle { func, head, cycle, .. }) = s else {
            panic!("expected AggregateInCycle, got {s:?}");
        };
        assert_eq!(func, AggFunc::Min);
        assert_eq!(head, i.intern("p"));
        assert!(cycle.contains(&i.intern("q")));
    }

    #[test]
    fn strata_levels_chain() {
        let (s, mut i) = strat(
            "a(X) :- e(X).\n\
             b(X) :- a(X), !f(X).\n\
             c(X) :- a(X), !b(X).\n\
             d(X) :- c(X).\n",
        );
        let s = s.unwrap();
        assert_eq!(s.stratum_of[&i.intern("a")], 0);
        assert_eq!(s.stratum_of[&i.intern("b")], 1);
        assert_eq!(s.stratum_of[&i.intern("c")], 2);
        assert_eq!(s.stratum_of[&i.intern("d")], 2);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn count_outside_recursion_is_allowed() {
        let (s, mut i) = strat(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, W), t(W, Y).\n\
             reach(X, count<Y>) :- t(X, Y).\n",
        );
        let s = s.unwrap();
        assert_eq!(s.stratum_of[&i.intern("reach")], 1);
    }

    #[test]
    fn mixed_aggregate_annotations_are_rejected() {
        // Different function.
        let src = "best(X, min<C>) :- w(X, C).\nbest(X, max<C>) :- v(X, C).\n";
        let (s, mut i) = strat(src);
        let Err(StratError::MixedAggregate { head, rule_span, back_span, .. }) = s else {
            panic!("expected MixedAggregate, got {s:?}");
        };
        assert_eq!(head, i.intern("best"));
        let text = |sp: Span| &src[sp.start as usize..sp.end as usize];
        assert_eq!(text(back_span), "best(X, min<C>) :- w(X, C).");
        assert_eq!(text(rule_span), "best(X, max<C>) :- v(X, C).");
        // Annotated and plain rules for the same head.
        let (s, _) = strat("best(X, min<C>) :- w(X, C).\nbest(X, C) :- v(X, C).\n");
        assert!(matches!(s, Err(StratError::MixedAggregate { .. })), "{s:?}");
    }

    #[test]
    fn facts_for_aggregate_heads_are_contributions_not_conflicts() {
        let (s, mut i) = strat("best(a, 3).\nbest(X, min<C>) :- w(X, C).\n");
        let s = s.unwrap();
        assert_eq!(s.stratum_of[&i.intern("best")], 1);
    }

    #[test]
    fn empty_program_is_empty() {
        let (s, _) = strat("");
        assert!(s.unwrap().is_empty());
    }
}
