//! Separability diagnostics (`SEP0xx`): Definition 2.4 explained with
//! spans.
//!
//! For every recursive predicate the pass runs the paper's detector
//! ([`sepra_core::detect`]) and translates each violated condition into a
//! diagnostic that cites the exact rule and argument positions:
//!
//! | code   | severity | meaning                                            |
//! |--------|----------|----------------------------------------------------|
//! | SEP000 | note     | recursive but outside the compilable class         |
//! | SEP001 | warning  | condition 1: shifting variable                     |
//! | SEP002 | warning  | condition 2: head/body column sets differ          |
//! | SEP003 | warning  | condition 3: overlapping, unequal column sets      |
//! | SEP004 | warning  | condition 4: disconnected nonrecursive body        |
//! | SEP100 | note     | separable — class structure summary                |
//!
//! The detector reports violations against *normalized* rules
//! (rectified, heads standardized); [`NotSeparable::source_index`] maps
//! those indices back to the definition's source rules, whose spans point
//! into the file the user wrote. Normalization never permutes argument
//! positions, so a normalized position indexes the same argument of the
//! source rule.

use sepra_ast::pretty::term_to_string;
use sepra_ast::{AstError, DependencyGraph, Interner, RecursiveDef, Rule};
use sepra_core::detect::{detect, NotSeparable, Violation};

use crate::diagnostic::Diagnostic;
use crate::passes::{Pass, ProgramContext};

/// The separability pass. See the module docs for the codes it emits.
pub struct Separability;

impl Pass for Separability {
    fn name(&self) -> &'static str {
        "separability"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        let graph = DependencyGraph::build(ctx.program);
        for info in graph.classify(ctx.program) {
            if !info.is_recursive {
                continue;
            }
            let name = interner.resolve(info.pred).to_string();
            let def = match RecursiveDef::extract(ctx.program, info.pred, interner) {
                Ok(def) => def,
                Err(e) => {
                    let reason = match &e {
                        AstError::UnsupportedProgram { msg } => msg.clone(),
                        other => other.to_string(),
                    };
                    let first = ctx.program.definition_of(info.pred);
                    let mut diag = Diagnostic::note(
                        "SEP000",
                        format!("`{name}` is recursive but outside the compilable class: {reason}"),
                    );
                    if let Some(rule) = first.first() {
                        diag = diag.with_label(rule.span(), "defined here");
                    }
                    out.push(diag.with_note(
                        "separable compilation (Definition 2.4) applies to linear recursion \
                         with exit rules and no mutual recursion",
                    ));
                    continue;
                }
            };
            match detect(&def, interner) {
                Ok(sep) => {
                    let mut diag = Diagnostic::note(
                        "SEP100",
                        format!(
                            "`{name}` is a separable recursion: {} equivalence class(es), \
                             persistent columns {:?}",
                            sep.classes.len(),
                            sep.persistent
                        ),
                    )
                    .with_label(
                        def.recursive_rules[0].span(),
                        // A separable recursion inside a program that uses
                        // negation or aggregates still evaluates stratum by
                        // stratum on semi-naive: the specialized engine is
                        // refused for the whole program, not per predicate.
                        if ctx.program.uses_stratified_constructs() {
                            "separable in isolation, but the program's negation/aggregates \
                             route it to stratified semi-naive"
                        } else {
                            "compiled with the specialized separable algorithm"
                        },
                    );
                    for (i, class) in sep.classes.iter().enumerate() {
                        diag = diag.with_note(format!(
                            "class {i} binds columns {:?} via {} recursive rule(s)",
                            class.columns,
                            class.rules.len()
                        ));
                    }
                    out.push(diag);
                }
                Err(ns) => {
                    for v in &ns.violations {
                        out.push(violation_diagnostic(v, &ns, &def, &name, interner));
                    }
                }
            }
        }
    }
}

/// Translates one [`Violation`] into a span-carrying diagnostic against the
/// *source* rules of `def`.
fn violation_diagnostic(
    v: &Violation,
    ns: &NotSeparable,
    def: &RecursiveDef,
    name: &str,
    interner: &Interner,
) -> Diagnostic {
    // Violations index normalized rules; map back to the rule the user
    // wrote (normalization drops tautologies, so indices can differ). The
    // normalized copy is the fallback for synthesized inputs.
    let src = |i: usize| -> &Rule {
        ns.source_index(i)
            .and_then(|si| def.recursive_rules.get(si))
            .or_else(|| ns.rule(i))
            .expect("violation cites an existing rule")
    };
    let fallback =
        format!("queries on `{name}` fall back to the general engine (magic sets + seminaive)");
    match v {
        Violation::ShiftingVariable { rule, head_pos, body_pos, .. } => {
            let r = src(*rule);
            let rec = r.recursive_atom(def.pred).expect("linear recursive rule");
            let shown = term_to_string(&r.head.terms[*head_pos], interner);
            Diagnostic::warning(
                "SEP001",
                format!(
                    "`{name}` is not separable: head argument {head_pos} (`{shown}`) \
                     reappears at argument {body_pos} of the recursive call"
                ),
            )
            .with_label(
                rec.term_span(*body_pos),
                format!("the recursive call binds it at argument {body_pos}"),
            )
            .with_secondary(
                r.head.term_span(*head_pos),
                format!("the head binds it at argument {head_pos}"),
            )
            .with_note(
                "condition 1 of Definition 2.4: a variable shared by the head and the \
                 recursive call must occupy the same argument positions in both",
            )
            .with_note(fallback)
        }
        Violation::HeadBodyMismatch { rule, head_cols, body_cols } => {
            let r = src(*rule);
            let rec = r.recursive_atom(def.pred).expect("linear recursive rule");
            Diagnostic::warning(
                "SEP002",
                format!(
                    "`{name}` is not separable: nonrecursive subgoals bind head columns \
                     {head_cols:?} but recursive-call columns {body_cols:?}"
                ),
            )
            .with_label(rec.span, format!("bound columns of the recursive call: {body_cols:?}"))
            .with_secondary(r.head.span, format!("bound columns of the head: {head_cols:?}"))
            .with_note(
                "condition 2 of Definition 2.4: the nonrecursive subgoals must touch the \
                 same column set of the head and of the recursive call (t_i^h = t_i^b)",
            )
            .with_note(fallback)
        }
        Violation::OverlappingClasses { rule_a, rule_b, cols_a, cols_b } => {
            let ra = src(*rule_a);
            let rb = src(*rule_b);
            Diagnostic::warning(
                "SEP003",
                format!(
                    "`{name}` is not separable: recursive rules bind overlapping but \
                     unequal column sets {cols_a:?} and {cols_b:?}"
                ),
            )
            .with_label(ra.span(), format!("this rule binds columns {cols_a:?}"))
            .with_secondary(rb.span(), format!("this rule binds columns {cols_b:?}"))
            .with_note(
                "condition 3 of Definition 2.4: the column sets of any two recursive \
                 rules must be equal or disjoint, so rules partition into equivalence \
                 classes",
            )
            .with_note(fallback)
        }
        Violation::DisconnectedBody { rule, components } => {
            let r = src(*rule);
            Diagnostic::warning(
                "SEP004",
                format!(
                    "`{name}` is not separable: the nonrecursive body of a recursive \
                     rule splits into {components} disconnected parts"
                ),
            )
            .with_label(
                r.span(),
                format!(
                    "removing the recursive call leaves {components} unconnected subgoal groups"
                ),
            )
            .with_note(
                "condition 4 of Definition 2.4: the nonrecursive subgoals of a recursive \
                 rule must form a single connected component",
            )
            .with_note(
                "Section 5 relaxation: evaluation stays correct but disconnected parts \
                 join as cartesian products",
            )
            .with_note(fallback)
        }
    }
}

#[cfg(test)]
mod tests {
    use sepra_ast::Span;

    use crate::check_source;
    use crate::diagnostic::Diagnostic;

    fn sep_diags(src: &str) -> Vec<Diagnostic> {
        check_source("test.dl", src, None)
            .diagnostics
            .into_iter()
            .filter(|d| d.code.starts_with("SEP0"))
            .collect()
    }

    /// Byte span of the first occurrence of `needle` offset by `skip`
    /// bytes, `len` bytes long.
    fn at(src: &str, needle: &str, skip: usize, len: usize) -> Span {
        let pos = src.find(needle).unwrap() + skip;
        Span::new(pos, pos + len)
    }

    #[test]
    fn condition_1_cites_both_argument_positions() {
        let src = "t(X, Y) :- a(X, Y, W), t(Y, W).\n\
                   t(X, Y) :- t0(X, Y).\n\
                   a(m, n, o).\nt0(m, n).\n";
        let diags = sep_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "SEP001");
        assert!(d.message.contains("head argument 1 (`Y`)"), "{}", d.message);
        assert!(d.message.contains("argument 0 of the recursive call"), "{}", d.message);
        // Primary: the `Y` inside `t(Y, W)`. Secondary: the `Y` in the head.
        assert_eq!(d.primary_span(), Some(at(src, "t(Y, W)", 2, 1)));
        assert_eq!(d.labels[1].span, at(src, "t(X, Y)", 5, 1));
        assert!(d.notes.iter().any(|n| n.contains("condition 1 of Definition 2.4")));
    }

    #[test]
    fn condition_2_cites_both_column_sets() {
        let src = "t(X, Y) :- a(X, Y), t(W, Y).\n\
                   t(X, Y) :- t0(X, Y).\n\
                   a(m, n).\nt0(m, n).\n";
        let diags = sep_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "SEP002");
        assert!(d.message.contains("[0, 1]"), "{}", d.message);
        assert!(d.message.contains("recursive-call columns [1]"), "{}", d.message);
        // Primary: the whole recursive atom `t(W, Y)`.
        assert_eq!(d.primary_span(), Some(at(src, "t(W, Y)", 0, 7)));
        assert!(d.notes.iter().any(|n| n.contains("condition 2 of Definition 2.4")));
    }

    #[test]
    fn condition_3_cites_both_rules() {
        let src = "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).\n\
                   t(X, Y, Z) :- b(Y, W), t(X, W, Z).\n\
                   t(X, Y, Z) :- t0(X, Y, Z).\n\
                   a(m, n, o, p).\nb(n, o).\nt0(m, n, o).\n";
        let diags = sep_diags(src);
        let d = diags.iter().find(|d| d.code == "SEP003").expect("SEP003 emitted");
        assert!(d.message.contains("[0, 1]") && d.message.contains("[1]"), "{}", d.message);
        // Primary: rule 0 (the whole first line); secondary: rule 1.
        let rule0 = "t(X, Y, Z) :- a(X, Y, U, V), t(U, V, Z).";
        let rule1 = "t(X, Y, Z) :- b(Y, W), t(X, W, Z).";
        assert_eq!(d.primary_span(), Some(at(src, rule0, 0, rule0.len())));
        assert_eq!(d.labels[1].span, at(src, rule1, 0, rule1.len()));
        assert!(d.notes.iter().any(|n| n.contains("condition 3 of Definition 2.4")));
    }

    #[test]
    fn condition_4_cites_the_disconnected_rule() {
        let src = "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).\n\
                   t(X, Y) :- t0(X, Y).\n\
                   a(m, n).\nb(n, o).\nt0(m, n).\n";
        let diags = sep_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "SEP004");
        assert!(d.message.contains("2 disconnected parts"), "{}", d.message);
        let rule0 = "t(X, Y) :- a(X, W), t(W, Z), b(Z, Y).";
        assert_eq!(d.primary_span(), Some(at(src, rule0, 0, rule0.len())));
        assert!(d.notes.iter().any(|n| n.contains("condition 4 of Definition 2.4")));
    }

    #[test]
    fn violation_indices_survive_tautology_dropping() {
        // The tautology `t :- t` is dropped during normalization, so the
        // violating rule has normalized index 0 but source index 1; the
        // diagnostic must still point at the *second* source rule.
        let src = "t(X, Y) :- t(X, Y).\n\
                   t(X, Y) :- a(X, Y, W), t(Y, W).\n\
                   t(X, Y) :- t0(X, Y).\n\
                   a(m, n, o).\nt0(m, n).\n";
        let diags = sep_diags(src);
        let d = diags.iter().find(|d| d.code == "SEP001").expect("SEP001 emitted");
        assert_eq!(d.primary_span(), Some(at(src, "t(Y, W)", 2, 1)));
    }

    #[test]
    fn separable_programs_get_a_structure_note() {
        let src = "buys(X, Y) :- friend(X, W), buys(W, Y).\n\
                   buys(X, Y) :- perfectFor(X, Y).\n\
                   friend(m, n).\nperfectFor(n, o).\n";
        let result = check_source("buys.dl", src, None);
        let d = result.diagnostics.iter().find(|d| d.code == "SEP100").expect("SEP100 emitted");
        assert_eq!(d.severity, crate::Severity::Note);
        assert!(d.message.contains("separable recursion"), "{}", d.message);
        assert!(d.message.contains("persistent columns [1]"), "{}", d.message);
        assert!(!result.has_errors() && !result.has_warnings(), "{:?}", result.diagnostics);
    }

    #[test]
    fn out_of_class_recursion_gets_a_note() {
        let src = "t(X, Y) :- t(X, W), t(W, Y).\n\
                   t(X, Y) :- e(X, Y).\n\
                   e(m, n).\n";
        let result = check_source("nl.dl", src, None);
        let d = result.diagnostics.iter().find(|d| d.code == "SEP000").expect("SEP000 emitted");
        assert!(d.message.contains("non-linear"), "{}", d.message);
    }
}
