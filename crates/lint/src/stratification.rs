//! Stratification diagnostics (`STR0xx`): negation and aggregation.
//!
//! Programs using negated literals (`!p(X)`) or aggregate heads
//! (`shortest(X, min<C>) :- ...`) only have a meaning when they stratify:
//! every negated or aggregated predicate must be fully computed in a
//! strictly lower stratum than the rules reading it (with the sanctioned
//! exception of `min`/`max` direct self-recursion). The pass runs
//! [`sepra_strata::stratify`] and reports:
//!
//! | code   | severity | meaning                                             |
//! |--------|----------|-----------------------------------------------------|
//! | STR000 | note     | program stratifies — summary of the strata          |
//! | STR001 | error    | negation inside a dependency cycle                  |
//! | STR002 | error    | aggregate the recursion cannot support, or rules    |
//! |        |          | disagreeing on a head's aggregate annotation        |
//!
//! Pure positive programs stay silent — stratification is vacuous there.
//! The errors cite *both* ends of the offending cycle: the rule containing
//! the negation/aggregate and a rule on the dependency path that closes
//! the loop. The same analysis guards evaluation: an unstratifiable
//! program is refused by every engine with `EvalError::Unstratifiable`, so
//! an `STR` error here means the program will not run at all.

use sepra_ast::{Interner, Span, Sym};
use sepra_strata::{stratify, StratError, Stratification};

use crate::diagnostic::Diagnostic;
use crate::passes::{Pass, ProgramContext};

/// The stratification pass. See the module docs for the codes it emits.
pub struct StratificationPass;

impl Pass for StratificationPass {
    fn name(&self) -> &'static str {
        "stratification"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        if !ctx.program.uses_stratified_constructs() {
            return;
        }
        match stratify(ctx.program) {
            Ok(strat) => out.push(summary(ctx, interner, &strat)),
            Err(err) => out.push(error(&err, interner)),
        }
    }
}

/// STR000: the program stratifies; summarize the levels.
fn summary(ctx: &ProgramContext<'_>, interner: &Interner, strat: &Stratification) -> Diagnostic {
    let n = strat.len();
    let mut diag = Diagnostic::note(
        "STR000",
        format!(
            "stratified program: {n} {}; negation and aggregation read \
             only completed lower strata",
            if n == 1 { "stratum" } else { "strata" }
        ),
    )
    .with_label(first_boundary_site(ctx), "first stratum boundary introduced here");
    for (level, preds) in strat.strata.iter().enumerate() {
        let names: Vec<String> =
            preds.iter().map(|&p| format!("`{}`", interner.resolve(p))).collect();
        diag = diag.with_note(format!("stratum {level}: {}", names.join(", ")));
    }
    diag
}

/// The source-earliest negated atom or aggregate annotation.
fn first_boundary_site(ctx: &ProgramContext<'_>) -> Span {
    let mut best: Option<Span> = None;
    for rule in &ctx.program.rules {
        let mut consider = |span: Span| {
            if best.is_none_or(|b| span.start < b.start) {
                best = Some(span);
            }
        };
        if let Some(spec) = &rule.agg {
            consider(spec.span);
        }
        for atom in rule.negated_atoms() {
            consider(atom.span);
        }
    }
    best.unwrap_or(Span::DUMMY)
}

fn cycle_text(cycle: &[Sym], interner: &Interner) -> String {
    let mut parts: Vec<&str> = cycle.iter().map(|&p| interner.resolve(p)).collect();
    parts.push(interner.resolve(cycle[0]));
    parts.join(" -> ")
}

/// STR001/STR002: the program does not stratify; cite both offending rules.
fn error(err: &StratError, interner: &Interner) -> Diagnostic {
    match err {
        StratError::NegationInCycle { head, negated, site_span, back_span, cycle, .. } => {
            let head = interner.resolve(*head).to_string();
            let neg = interner.resolve(*negated).to_string();
            Diagnostic::error(
                "STR001",
                format!("unstratifiable negation: `{head}` negates `{neg}`, but `{neg}` depends on `{head}`"),
            )
            .with_label(*site_span, format!("`{neg}` is negated here"))
            .with_secondary(*back_span, format!("...and `{neg}` reaches `{head}` again through this rule"))
            .with_note(format!("dependency cycle: {}", cycle_text(cycle, interner)))
            .with_note("a negated predicate must be fully computed in a strictly lower stratum")
        }
        StratError::AggregateInCycle { head, func, site_span, back_span, cycle, .. } => {
            let head = interner.resolve(*head).to_string();
            Diagnostic::error(
                "STR002",
                format!(
                    "unsupported recursive aggregate: `{head}` aggregates with `{}` inside a dependency cycle",
                    func.keyword()
                ),
            )
            .with_label(*site_span, "this aggregate participates in the cycle")
            .with_secondary(*back_span, "...which closes through this rule")
            .with_note(format!("dependency cycle: {}", cycle_text(cycle, interner)))
            .with_note(
                "only `min`/`max` keep least-fixpoint semantics under recursion, and only \
                 reading their own head back directly; `count`/`sum` must sit in a \
                 non-recursive stratum",
            )
        }
        StratError::MixedAggregate { head, site_span, back_span, .. } => {
            let head = interner.resolve(*head).to_string();
            Diagnostic::error(
                "STR002",
                format!("the rules defining `{head}` disagree on its aggregate annotation"),
            )
            .with_label(*site_span, "this rule disagrees...")
            .with_secondary(*back_span, "...with the annotation this rule fixed")
            .with_note(
                "every proper rule for an aggregate head must carry the same `func<Var>`; \
                 facts are exempt (they contribute like EDB tuples)",
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use sepra_ast::Span;

    use crate::check_source;
    use crate::diagnostic::Diagnostic;

    fn str_diags(src: &str) -> Vec<Diagnostic> {
        check_source("test.dl", src, None)
            .diagnostics
            .into_iter()
            .filter(|d| d.code.starts_with("STR"))
            .collect()
    }

    /// Byte span of the first occurrence of `needle`.
    fn at(src: &str, needle: &str) -> Span {
        let pos = src.find(needle).unwrap();
        Span::new(pos, pos + needle.len())
    }

    #[test]
    fn pure_positive_programs_stay_silent() {
        let src = "t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).\ne(m, n).\n";
        assert!(str_diags(src).is_empty());
    }

    #[test]
    fn stratified_negation_gets_a_summary_note() {
        let src = "t(X, Y) :- e(X, Y).\n\
                   t(X, Y) :- e(X, W), t(W, Y).\n\
                   unreach(X, Y) :- node(X), node(Y), !t(X, Y).\n\
                   e(m, n).\nnode(m).\nnode(n).\n";
        let diags = str_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "STR000");
        assert_eq!(d.severity, crate::Severity::Note);
        assert!(d.message.contains("2 strata"), "{}", d.message);
        // The site is the negated atom itself, just past the `!`.
        let bang = src.find("!t(X, Y)").unwrap() + 1;
        assert_eq!(d.primary_span(), Some(Span::new(bang, bang + "t(X, Y)".len())));
        assert!(d.notes.iter().any(|n| n.contains("stratum 1: `unreach`")), "{d:?}");
    }

    #[test]
    fn min_self_recursion_is_sanctioned() {
        let src = "shortest(Y, min<C>) :- source(X), w(X, Y, C).\n\
                   shortest(Y, min<C>) :- shortest(X, D), w(X, Y, W2), C = D + W2.\n\
                   source(a).\nw(a, b, 1).\n";
        let diags = str_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "STR000");
    }

    #[test]
    fn negation_in_cycle_cites_both_rules() {
        let src = "p(X) :- a(X), !q(X).\nq(X) :- b(X), p(X).\na(m).\nb(m).\n";
        let diags = str_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "STR001");
        assert_eq!(d.severity, crate::Severity::Error);
        assert!(d.message.contains("`p` negates `q`"), "{}", d.message);
        assert_eq!(d.primary_span(), Some(at(src, "q(X)")));
        assert_eq!(d.labels[1].span, at(src, "q(X) :- b(X), p(X)."));
        assert!(d.notes.iter().any(|n| n.contains("p -> q -> p")), "{d:?}");
    }

    #[test]
    fn count_in_recursion_is_an_error() {
        let src = "reach(X, count<C>) :- reach(Y, C), e(Y, X).\ne(m, n).\n";
        let diags = str_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "STR002");
        assert!(d.message.contains("`count`"), "{}", d.message);
        assert_eq!(d.primary_span(), Some(at(src, "count<C>")));
    }

    #[test]
    fn mixed_aggregate_annotations_are_an_error() {
        let src = "best(X, min<C>) :- w(X, C).\nbest(X, max<C>) :- v(X, C).\nw(a, 1).\nv(a, 2).\n";
        let diags = str_diags(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.code, "STR002");
        assert!(d.message.contains("disagree"), "{}", d.message);
        assert_eq!(d.primary_span(), Some(at(src, "max<C>")));
        assert_eq!(d.labels[1].span, at(src, "best(X, min<C>) :- w(X, C)."));
    }
}
