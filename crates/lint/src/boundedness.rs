//! Boundedness diagnostics (`BND0xx`): recursions that need no fixpoint.
//!
//! For every recursive predicate the pass runs the boundedness analysis
//! ([`sepra_core::bounded`]) and, when a sufficient condition proves the
//! recursion equivalent to a nonrecursive program, reports which condition
//! fired against which source rule:
//!
//! | code   | severity | meaning                                              |
//! |--------|----------|------------------------------------------------------|
//! | BND000 | note     | bounded — equivalent to `k` unfoldings, no fixpoint  |
//! | BND001 | warning  | vacuous recursive call (equals the head after        |
//! |        |          | constant propagation, or unsatisfiable body)         |
//! | BND002 | warning  | recursive rule θ-subsumed by an exit rule            |
//! | BND003 | note     | rule stabilizes through the unfolding chain          |
//!
//! Predicates the analysis cannot prove bounded stay silent — boundedness
//! is undecidable, so the absence of a `BND` code never means "unbounded".
//! The analysis works on the definition's *source* rules directly (no
//! rectification or expansion happens first), so
//! [`sepra_core::bounded::BoundedRecursion::statuses`] indexes
//! [`RecursiveDef::recursive_rules`] one-to-one and every span below
//! points into the file the user wrote — the `source_indices` mapping the
//! SEP codes need is the identity here.
//!
//! The engine consumes the same verdict: a bounded predicate's queries are
//! answered by the nonrecursive rewrite with zero fixpoint iterations
//! (`--explain` shows `bounded(k)`).

use sepra_ast::{DependencyGraph, Interner, RecursiveDef};
use sepra_core::bounded::{analyze, RuleStatus};

use crate::diagnostic::Diagnostic;
use crate::passes::{Pass, ProgramContext};

/// The boundedness pass. See the module docs for the codes it emits.
pub struct Boundedness;

impl Pass for Boundedness {
    fn name(&self) -> &'static str {
        "boundedness"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        let graph = DependencyGraph::build(ctx.program);
        for info in graph.classify(ctx.program) {
            if !info.is_recursive {
                continue;
            }
            // Out-of-class recursion (mutual, non-linear, no exit rule) is
            // already explained by SEP000; boundedness needs the same
            // linear shape, so stay silent here.
            let Ok(def) = RecursiveDef::extract(ctx.program, info.pred, interner) else {
                continue;
            };
            let Some(bounded) = analyze(&def, interner) else {
                continue;
            };
            let name = interner.resolve(info.pred).to_string();

            let mut summary = Diagnostic::note(
                "BND000",
                format!(
                    "`{name}` is a bounded recursion: every derivation needs at most \
                     {} recursive step(s)",
                    bounded.depth
                ),
            )
            .with_label(
                def.recursive_rules[0].span(),
                format!("equivalent to {} nonrecursive rule(s)", bounded.rules.len()),
            )
            .with_note(format!(
                "the engine answers `{name}` queries with the unfolded rewrite — \
                 zero fixpoint iterations (`bounded({})` under --explain)",
                bounded.depth
            ));
            if bounded.depth > 0 {
                summary = summary.with_note(format!(
                    "unfolding the recursive rules stabilizes at depth {}: every deeper \
                     resolvent is θ-subsumed by a shallower rule",
                    bounded.depth
                ));
            }
            out.push(summary);

            for (i, status) in bounded.statuses.iter().enumerate() {
                let rule = &def.recursive_rules[i];
                match status {
                    RuleStatus::Vacuous => {
                        out.push(
                            Diagnostic::warning(
                                "BND001",
                                format!(
                                    "vacuous recursive call: this `{name}` rule can only \
                                     rederive facts it consumed"
                                ),
                            )
                            .with_label(
                                rule.span(),
                                "the recursive subgoal equals the head (after constant \
                                 propagation), or the body is unsatisfiable",
                            )
                            .with_note(
                                "the rule derives nothing new at any fixpoint depth and is \
                                 dropped by the bounded rewrite",
                            ),
                        );
                    }
                    RuleStatus::ExitSubsumed(e) => {
                        out.push(
                            Diagnostic::warning(
                                "BND002",
                                format!(
                                    "redundant recursive rule: an exit rule of `{name}` \
                                     θ-subsumes it"
                                ),
                            )
                            .with_label(rule.span(), "every fact this rule derives...")
                            .with_secondary(
                                def.exit_rules[*e].span(),
                                "...this nonrecursive rule already derives",
                            )
                            .with_note(
                                "the exit rule's body maps into this rule's body with the \
                                 same head, so the recursion adds no facts",
                            ),
                        );
                    }
                    RuleStatus::Unfolded => {
                        out.push(
                            Diagnostic::note(
                                "BND003",
                                format!(
                                    "this `{name}` rule stabilizes at unfolding depth {}",
                                    bounded.depth
                                ),
                            )
                            .with_label(
                                rule.span(),
                                format!(
                                    "resolving the recursive subgoal {} time(s) against the \
                                     exit rules covers every derivation",
                                    bounded.depth
                                ),
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use sepra_ast::Span;

    use crate::check_source;
    use crate::diagnostic::Diagnostic;

    fn bnd_diags(src: &str) -> Vec<Diagnostic> {
        check_source("test.dl", src, None)
            .diagnostics
            .into_iter()
            .filter(|d| d.code.starts_with("BND"))
            .collect()
    }

    /// Byte span of the first occurrence of `needle` offset by `skip`
    /// bytes, `len` bytes long.
    fn at(src: &str, needle: &str, skip: usize, len: usize) -> Span {
        let pos = src.find(needle).unwrap() + skip;
        Span::new(pos, pos + len)
    }

    #[test]
    fn vacuous_rule_gets_summary_and_warning() {
        let src = "t(X, Y) :- e(X, Y), t(X, Y).\n\
                   t(X, Y) :- t0(X, Y).\n\
                   e(m, n).\nt0(m, n).\n";
        let diags = bnd_diags(src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        let summary = &diags[0];
        assert_eq!(summary.code, "BND000");
        assert!(summary.message.contains("at most 0 recursive step(s)"), "{}", summary.message);
        let vac = diags.iter().find(|d| d.code == "BND001").expect("BND001 emitted");
        let rule0 = "t(X, Y) :- e(X, Y), t(X, Y).";
        assert_eq!(vac.primary_span(), Some(at(src, rule0, 0, rule0.len())));
        assert_eq!(vac.severity, crate::Severity::Warning);
    }

    #[test]
    fn exit_subsumption_cites_both_rules() {
        let src = "t(X, Y) :- e(X, Y), t(Y, X).\n\
                   t(X, Y) :- e(X, Y).\n\
                   e(m, n).\n";
        let diags = bnd_diags(src);
        let d = diags.iter().find(|d| d.code == "BND002").expect("BND002 emitted");
        let rec = "t(X, Y) :- e(X, Y), t(Y, X).";
        let exit = "t(X, Y) :- e(X, Y).";
        assert_eq!(d.primary_span(), Some(at(src, rec, 0, rec.len())));
        assert_eq!(d.labels[1].span, at(src, exit, 0, exit.len()));
    }

    #[test]
    fn stabilizing_chain_reports_its_depth() {
        let src = "t(X, Y) :- sym(X, Y), t(Y, X).\n\
                   t(X, Y) :- base(X, Y).\n\
                   sym(m, n).\nbase(n, m).\n";
        let diags = bnd_diags(src);
        let summary = diags.iter().find(|d| d.code == "BND000").expect("BND000 emitted");
        assert!(summary.message.contains("at most 1 recursive step(s)"), "{}", summary.message);
        let chain = diags.iter().find(|d| d.code == "BND003").expect("BND003 emitted");
        let rec = "t(X, Y) :- sym(X, Y), t(Y, X).";
        assert_eq!(chain.primary_span(), Some(at(src, rec, 0, rec.len())));
        assert_eq!(chain.severity, crate::Severity::Note);
    }

    #[test]
    fn unbounded_recursions_stay_silent() {
        for src in [
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(m, n).\n",
            "sg(X, Y) :- flat(X, Y).\nsg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
             flat(m, n).\nup(m, n).\ndown(n, m).\n",
        ] {
            let diags = bnd_diags(src);
            assert!(diags.is_empty(), "no BND codes expected:\n{src}\n{diags:?}");
        }
    }

    #[test]
    fn out_of_class_recursion_stays_silent() {
        // Non-linear: SEP000 territory, not ours.
        let src = "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(m, n).\n";
        assert!(bnd_diags(src).is_empty());
    }
}
