//! The diagnostic model: stable codes, severities, and labeled spans.
//!
//! Every finding the checker produces is a [`Diagnostic`]: a stable code
//! (`SEP001`…`SEP004` for the four conditions of Definition 2.4, `LNT0xx`
//! for general lints), a severity, a one-line message, zero or more
//! [`Label`]s pointing into the source, and free-form notes. Rendering to
//! text or JSON lives in [`crate::render`].

use sepra_ast::Span;

/// How serious a diagnostic is.
///
/// Ordered so that `max` gives the worst severity: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing is wrong (e.g. a separability summary).
    Note,
    /// Suspicious but evaluable; fails `--deny warnings`.
    Warning,
    /// The program is malformed; `sepra check` exits nonzero.
    Error,
}

impl Severity {
    /// The lowercase name used by both renderers (`error`, `warning`,
    /// `note`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A span with an explanatory message attached.
///
/// The *primary* label is where the diagnostic points (rendered with `^`
/// carets); secondary labels give supporting context (rendered with `-`
/// underlines). A label whose span is [`Span::DUMMY`] renders without a
/// source snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where in the source this label points.
    pub span: Span,
    /// What to say about that location.
    pub message: String,
    /// Whether this is the diagnostic's primary location.
    pub primary: bool,
}

/// One finding: code, severity, message, labeled spans, and notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`SEP001`, `LNT003`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// One-line human-readable summary.
    pub message: String,
    /// Labeled source locations; by convention the primary label comes
    /// first.
    pub labels: Vec<Label>,
    /// Additional free-form remarks rendered after the snippet(s).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no labels or notes.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Shorthand for an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// Shorthand for a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Warning, message)
    }

    /// Shorthand for a note-severity diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Note, message)
    }

    /// Adds the primary label.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label { span, message: message.into(), primary: true });
        self
    }

    /// Adds a secondary (context) label.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label { span, message: message.into(), primary: false });
        self
    }

    /// Adds a trailing note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// The primary label's span, if it has a real source location.
    pub fn primary_span(&self) -> Option<Span> {
        self.labels.iter().find(|l| l.primary && !l.span.is_dummy()).map(|l| l.span)
    }

    /// Sort key: diagnostics are presented in source order, span-less ones
    /// last, ties broken by code then severity (errors before warnings).
    pub fn sort_key(&self) -> (u32, &'static str, std::cmp::Reverse<Severity>) {
        let start = self.primary_span().map_or(u32::MAX, |s| s.start);
        (start, self.code, std::cmp::Reverse(self.severity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_notes_below_errors() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn builder_assembles_labels_and_notes() {
        let d = Diagnostic::warning("LNT007", "singleton variable `W`")
            .with_label(Span::new(4, 5), "appears only here")
            .with_secondary(Span::new(0, 1), "in this rule")
            .with_note("prefix with `_` to silence");
        assert_eq!(d.labels.len(), 2);
        assert!(d.labels[0].primary);
        assert!(!d.labels[1].primary);
        assert_eq!(d.primary_span(), Some(Span::new(4, 5)));
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn dummy_primary_spans_sort_last() {
        let located = Diagnostic::error("LNT001", "x").with_label(Span::new(9, 10), "here");
        let floating = Diagnostic::error("LNT001", "y");
        assert!(located.sort_key() < floating.sort_key());
    }
}
