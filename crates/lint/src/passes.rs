//! The general lint passes (`LNT0xx` codes).
//!
//! Each pass walks the raw-parsed program (see
//! [`parse_program_raw`](sepra_ast::parse_program_raw) — arity and safety
//! problems arrive here as diagnostics, not hard errors) and appends
//! [`Diagnostic`]s. Passes are registered in [`registry`]; the driver in
//! [`crate::check_source`] runs them all and sorts the result by source
//! position.
//!
//! | code   | severity | meaning                                             |
//! |--------|----------|-----------------------------------------------------|
//! | LNT000 | error    | syntax error (parse failed)                         |
//! | LNT001 | error    | unsafe rule / non-ground fact                       |
//! | LNT002 | error    | predicate used with inconsistent arities            |
//! | LNT003 | warning  | predicate used but never defined                    |
//! | LNT004 | warning  | fact predicate never used by any rule (no query)    |
//! | LNT005 | warning  | predicate unreachable from the query                |
//! | LNT006 | warning  | non-linear or mutual recursion                      |
//! | LNT007 | warning  | singleton variable (occurs once, not `_`-prefixed)  |
//! | LNT008 | warning  | duplicate rule                                      |
//! | LNT009 | warning  | duplicate fact                                      |
//!
//! Separability analysis (`SEP0xx`) lives in [`crate::separability`];
//! boundedness analysis (`BND0xx`) in [`crate::boundedness`];
//! stratification analysis (`STR0xx`) in [`crate::stratification`].

use std::collections::BTreeMap;

use sepra_ast::pretty::{atom_to_string, query_to_string, rule_to_string};
use sepra_ast::{Atom, DependencyGraph, Interner, Literal, Program, Query, Span, Sym, Term};

use crate::boundedness::Boundedness;
use crate::diagnostic::Diagnostic;
use crate::separability::Separability;
use crate::stratification::StratificationPass;

/// Everything a pass can look at.
pub struct ProgramContext<'a> {
    /// The raw-parsed program.
    pub program: &'a Program,
    /// The query diagnostics are computed relative to, if any.
    pub query: Option<&'a Query>,
}

/// A lint pass: inspects the program and appends diagnostics.
///
/// Passes receive a mutable [`Interner`] because separability detection
/// interns fresh canonical variables while normalizing rules.
pub trait Pass {
    /// Stable pass name (used in `DESIGN.md` and debugging output).
    fn name(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>);
}

/// Every pass, in execution order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnsafeRules),
        Box::new(ArityConsistency),
        Box::new(UndefinedPredicates),
        Box::new(UnusedPredicates),
        Box::new(UnreachableFromQuery),
        Box::new(NonLinearRecursion),
        Box::new(SingletonVariables),
        Box::new(DuplicateRules),
        Box::new(DuplicateFacts),
        Box::new(Separability),
        Box::new(Boundedness),
        Box::new(StratificationPass),
    ]
}

/// LNT001: rules whose head variables are not bound by the body, and
/// non-ground facts. These rules would be rejected by the validating
/// parser; here they become structured diagnostics.
pub struct UnsafeRules;

impl Pass for UnsafeRules {
    fn name(&self) -> &'static str {
        "unsafe-rules"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        for rule in &ctx.program.rules {
            if rule.is_safe() {
                continue;
            }
            // A negated literal filters bound rows; it never binds. Only
            // positive literals (atoms, equalities, sums) count.
            let positive = |v: sepra_ast::Sym| {
                !rule.is_fact()
                    && rule.body.iter().any(|l| !matches!(l, Literal::Neg(_)) && l.contains_var(v))
            };
            for v in rule.head.vars() {
                if positive(v) {
                    continue;
                }
                let pos = rule.head.positions_of(v)[0];
                let name = interner.resolve(v).to_string();
                let pred = interner.resolve(rule.head.pred).to_string();
                let diag = if rule.is_fact() {
                    Diagnostic::error(
                        "LNT001",
                        format!("fact for `{pred}` is not ground: variable `{name}`"),
                    )
                    .with_label(rule.head.term_span(pos), "facts must not contain variables")
                } else {
                    Diagnostic::error(
                        "LNT001",
                        format!("unsafe rule: head variable `{name}` of `{pred}` is not bound by the body"),
                    )
                    .with_label(rule.head.term_span(pos), "not bound by any positive body literal")
                    .with_note("every head variable must occur in a positive body atom or equality")
                };
                out.push(diag);
            }
            // Variables of negated atoms must also occur positively.
            for atom in rule.negated_atoms() {
                for v in atom.vars() {
                    // Head variables were already reported above.
                    if positive(v) || rule.head.contains_var(v) {
                        continue;
                    }
                    let pos = atom.positions_of(v)[0];
                    let name = interner.resolve(v).to_string();
                    let pred = interner.resolve(atom.pred).to_string();
                    out.push(
                        Diagnostic::error(
                            "LNT001",
                            format!(
                                "unsafe rule: variable `{name}` of negated `{pred}` has no positive occurrence"
                            ),
                        )
                        .with_label(atom.term_span(pos), "only occurs under negation")
                        .with_note(
                            "a negated literal filters bound rows; every variable in it \
                             must be bound by a positive body literal",
                        ),
                    );
                }
            }
        }
    }
}

/// LNT002: a predicate used with two different arities. The first
/// occurrence fixes the expected arity; every later disagreement is
/// reported against it.
pub struct ArityConsistency;

impl Pass for ArityConsistency {
    fn name(&self) -> &'static str {
        "arity-consistency"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        let mut first: BTreeMap<Sym, (usize, Span)> = BTreeMap::new();
        let mut check = |atom: &Atom, interner: &Interner, out: &mut Vec<Diagnostic>| {
            let (expected, first_span) =
                *first.entry(atom.pred).or_insert((atom.arity(), atom.span));
            if atom.arity() != expected {
                let pred = interner.resolve(atom.pred).to_string();
                out.push(
                    Diagnostic::error(
                        "LNT002",
                        format!(
                            "predicate `{pred}` used with {} arguments, but earlier with {expected}",
                            atom.arity()
                        ),
                    )
                    .with_label(atom.span, format!("used here with {} arguments", atom.arity()))
                    .with_secondary(first_span, format!("first used here with {expected} arguments")),
                );
            }
        };
        for rule in &ctx.program.rules {
            check(&rule.head, interner, out);
            // Negated atoms participate in arity checking too, in source
            // order alongside the positive ones.
            for lit in &rule.body {
                if let Literal::Atom(atom) | Literal::Neg(atom) = lit {
                    check(atom, interner, out);
                }
            }
        }
        if let Some(query) = ctx.query {
            let atom = &query.atom;
            if let Some(&(expected, first_span)) = first.get(&atom.pred) {
                if atom.arity() != expected {
                    let pred = interner.resolve(atom.pred).to_string();
                    out.push(
                        Diagnostic::error(
                            "LNT002",
                            format!(
                                "query uses `{pred}` with {} arguments, but the program uses {expected}",
                                atom.arity()
                            ),
                        )
                        .with_label(Span::DUMMY, format!("in the query `{}`", query_to_string(query, interner)))
                        .with_secondary(first_span, format!("first used here with {expected} arguments")),
                    );
                }
            }
        }
    }
}

/// LNT003: a predicate appears in a rule body (or the query) but heads no
/// rule and no fact — it denotes the empty relation, which is almost
/// always a typo.
pub struct UndefinedPredicates;

impl Pass for UndefinedPredicates {
    fn name(&self) -> &'static str {
        "undefined-predicates"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        let defined: Vec<Sym> = ctx.program.rules.iter().map(|r| r.head.pred).collect();
        let mut first_use: BTreeMap<Sym, Span> = BTreeMap::new();
        let mut order: Vec<Sym> = Vec::new();
        for rule in &ctx.program.rules {
            for lit in &rule.body {
                let (Literal::Atom(atom) | Literal::Neg(atom)) = lit else {
                    continue;
                };
                if !defined.contains(&atom.pred) && !first_use.contains_key(&atom.pred) {
                    first_use.insert(atom.pred, atom.span);
                    order.push(atom.pred);
                }
            }
        }
        for pred in order {
            let name = interner.resolve(pred).to_string();
            out.push(
                Diagnostic::warning(
                    "LNT003",
                    format!("predicate `{name}` is never defined by a rule or fact"),
                )
                .with_label(first_use[&pred], "used here")
                .with_note("an undefined predicate denotes the empty relation"),
            );
        }
        if let Some(query) = ctx.query {
            if !defined.contains(&query.atom.pred) {
                let name = interner.resolve(query.atom.pred).to_string();
                out.push(
                    Diagnostic::warning(
                        "LNT003",
                        format!("query predicate `{name}` is never defined by a rule or fact"),
                    )
                    .with_label(
                        Span::DUMMY,
                        format!("in the query `{}`", query_to_string(query, interner)),
                    )
                    .with_note("the query result is necessarily empty"),
                );
            }
        }
    }
}

/// LNT004: a predicate defined only by facts (a base relation) that no
/// rule body ever reads. Runs only when no query is given —
/// [`UnreachableFromQuery`] subsumes it otherwise.
pub struct UnusedPredicates;

impl Pass for UnusedPredicates {
    fn name(&self) -> &'static str {
        "unused-predicates"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        if ctx.query.is_some() {
            return;
        }
        let heads_proper_rule = |p: Sym| ctx.program.proper_rules().any(|r| r.head.pred == p);
        let used_in_body = |p: Sym| {
            ctx.program
                .rules
                .iter()
                .any(|r| r.body_atoms().chain(r.negated_atoms()).any(|a| a.pred == p))
        };
        let mut seen: Vec<Sym> = Vec::new();
        for rule in ctx.program.facts() {
            let pred = rule.head.pred;
            if seen.contains(&pred) || heads_proper_rule(pred) || used_in_body(pred) {
                continue;
            }
            seen.push(pred);
            let name = interner.resolve(pred).to_string();
            let count = ctx.program.facts().filter(|f| f.head.pred == pred).count();
            out.push(
                Diagnostic::warning(
                    "LNT004",
                    format!("fact predicate `{name}` is never used by any rule"),
                )
                .with_label(rule.span(), format!("{count} fact(s) define it"))
                .with_note("dead data: no rule body or query can reach this relation"),
            );
        }
    }
}

/// LNT005: with a query given, every predicate from which the query
/// predicate is unreachable in the dependency graph is dead code.
pub struct UnreachableFromQuery;

impl Pass for UnreachableFromQuery {
    fn name(&self) -> &'static str {
        "unreachable-from-query"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        let Some(query) = ctx.query else {
            return;
        };
        let goal = query.atom.pred;
        let graph = DependencyGraph::build(ctx.program);
        let reachable = |p: Sym| p == goal || graph.depends_on(goal, p);
        let mut seen: Vec<Sym> = Vec::new();
        for rule in &ctx.program.rules {
            let pred = rule.head.pred;
            if seen.contains(&pred) || reachable(pred) {
                continue;
            }
            seen.push(pred);
            let name = interner.resolve(pred).to_string();
            let count = ctx.program.rules.iter().filter(|r| r.head.pred == pred).count();
            out.push(
                Diagnostic::warning(
                    "LNT005",
                    format!(
                        "`{name}` is unreachable from the query `{}`",
                        query_to_string(query, interner)
                    ),
                )
                .with_label(
                    rule.span(),
                    format!("{count} clause(s) can never contribute to the answer"),
                ),
            );
        }
    }
}

/// LNT006: recursion outside the paper's linear class — a rule whose body
/// mentions its own head predicate more than once, or a set of mutually
/// recursive predicates.
pub struct NonLinearRecursion;

impl Pass for NonLinearRecursion {
    fn name(&self) -> &'static str {
        "non-linear-recursion"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        for rule in ctx.program.proper_rules() {
            let pred = rule.head.pred;
            let occurrences: Vec<&Atom> = rule.body_atoms().filter(|a| a.pred == pred).collect();
            if occurrences.len() < 2 {
                continue;
            }
            let name = interner.resolve(pred).to_string();
            out.push(
                Diagnostic::warning(
                    "LNT006",
                    format!(
                        "non-linear recursion: `{name}` occurs {} times in the body of its own rule",
                        occurrences.len()
                    ),
                )
                .with_label(occurrences[1].span, "second recursive occurrence")
                .with_secondary(occurrences[0].span, "first recursive occurrence")
                .with_note(
                    "separable compilation (Definition 2.4) requires linear recursion; \
                     evaluation falls back to the general engine",
                ),
            );
        }
        // Mutual recursion: any nontrivial strongly connected component.
        let graph = DependencyGraph::build(ctx.program);
        for group in graph.strata() {
            if group.len() < 2 {
                continue;
            }
            let mut names: Vec<String> =
                group.iter().map(|&p| format!("`{}`", interner.resolve(p))).collect();
            names.sort();
            let first_rule = ctx
                .program
                .rules
                .iter()
                .find(|r| group.contains(&r.head.pred))
                .expect("SCC members head at least one rule");
            out.push(
                Diagnostic::warning(
                    "LNT006",
                    format!("mutually recursive predicates: {}", names.join(", ")),
                )
                .with_label(first_rule.span(), "cycle starts here")
                .with_note(
                    "the paper's class excludes mutual recursion; separable compilation \
                     does not apply",
                ),
            );
        }
    }
}

/// LNT007: a variable occurring exactly once in a rule. Usually a typo;
/// prefix with `_` to mark the occurrence as intentionally unused.
pub struct SingletonVariables;

impl Pass for SingletonVariables {
    fn name(&self) -> &'static str {
        "singleton-variables"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        for rule in ctx.program.proper_rules() {
            // Every variable occurrence with its span, in source order.
            let mut occurrences: Vec<(Sym, Span)> = Vec::new();
            for (i, t) in rule.head.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    occurrences.push((*v, rule.head.term_span(i)));
                }
            }
            for lit in &rule.body {
                match lit {
                    Literal::Atom(a) => {
                        for (i, t) in a.terms.iter().enumerate() {
                            if let Term::Var(v) = t {
                                occurrences.push((*v, a.term_span(i)));
                            }
                        }
                    }
                    Literal::Neg(a) => {
                        for (i, t) in a.terms.iter().enumerate() {
                            if let Term::Var(v) = t {
                                occurrences.push((*v, a.term_span(i)));
                            }
                        }
                    }
                    Literal::Eq(l, r) => {
                        for t in [l, r] {
                            if let Term::Var(v) = t {
                                occurrences.push((*v, rule.span()));
                            }
                        }
                    }
                    Literal::Sum(d, a, b) => {
                        for t in [d, a, b] {
                            if let Term::Var(v) = t {
                                occurrences.push((*v, rule.span()));
                            }
                        }
                    }
                }
            }
            for (idx, &(v, span)) in occurrences.iter().enumerate() {
                let count = occurrences.iter().filter(|(w, _)| *w == v).count();
                let is_first = occurrences.iter().position(|(w, _)| *w == v) == Some(idx);
                if count != 1 || !is_first {
                    continue;
                }
                let name = interner.resolve(v).to_string();
                if name.starts_with('_') {
                    continue;
                }
                let pred = interner.resolve(rule.head.pred).to_string();
                out.push(
                    Diagnostic::warning(
                        "LNT007",
                        format!("singleton variable `{name}` in rule for `{pred}`"),
                    )
                    .with_label(span, "appears only here")
                    .with_note("prefix with `_` if the variable is intentionally unused"),
                );
            }
        }
    }
}

/// LNT008: a rule textually identical (up to spans) to an earlier rule.
pub struct DuplicateRules;

impl Pass for DuplicateRules {
    fn name(&self) -> &'static str {
        "duplicate-rules"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        report_duplicates(ctx, interner, out, false, "LNT008", "rule");
    }
}

/// LNT009: a fact identical to an earlier fact. Facts are ground, so
/// among facts duplication and subsumption coincide: a fact is subsumed
/// exactly by a copy of itself.
pub struct DuplicateFacts;

impl Pass for DuplicateFacts {
    fn name(&self) -> &'static str {
        "duplicate-facts"
    }

    fn run(&self, ctx: &ProgramContext<'_>, interner: &mut Interner, out: &mut Vec<Diagnostic>) {
        report_duplicates(ctx, interner, out, true, "LNT009", "fact");
    }
}

fn report_duplicates(
    ctx: &ProgramContext<'_>,
    interner: &Interner,
    out: &mut Vec<Diagnostic>,
    facts: bool,
    code: &'static str,
    what: &str,
) {
    let rules: Vec<&sepra_ast::Rule> =
        ctx.program.rules.iter().filter(|r| r.is_fact() == facts).collect();
    for (i, rule) in rules.iter().enumerate() {
        // Rule equality ignores spans, so re-parsed or reformatted copies
        // still match. Programs are small; the quadratic scan keeps the
        // report order deterministic.
        let Some(first) = rules[..i].iter().find(|r| ***r == **rule) else {
            continue;
        };
        let shown = if facts {
            atom_to_string(&rule.head, interner)
        } else {
            rule_to_string(rule, interner)
        };
        out.push(
            Diagnostic::warning(code, format!("duplicate {what}: `{shown}`"))
                .with_label(rule.span(), format!("duplicate {what}"))
                .with_secondary(first.span(), "first written here"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sepra_ast::{parse_program_raw, parse_query};

    fn run_passes(src: &str, query: Option<&str>) -> Vec<Diagnostic> {
        let mut interner = Interner::new();
        let program = parse_program_raw(src, &mut interner).unwrap();
        let query = query.map(|q| parse_query(q, &mut interner).unwrap());
        let ctx = ProgramContext { program: &program, query: query.as_ref() };
        let mut out = Vec::new();
        for pass in registry() {
            pass.run(&ctx, &mut interner, &mut out);
        }
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unsafe_rule_and_open_fact_are_errors() {
        let diags = run_passes("p(X, Y) :- q(X).\nf(Z).\nq(a).\n", None);
        let lnt1: Vec<_> = diags.iter().filter(|d| d.code == "LNT001").collect();
        assert_eq!(lnt1.len(), 2, "{diags:?}");
        assert!(lnt1[0].message.contains("`Y`"), "{}", lnt1[0].message);
        assert!(lnt1[1].message.contains("not ground"), "{}", lnt1[1].message);
        assert!(lnt1.iter().all(|d| d.primary_span().is_some()));
    }

    #[test]
    fn arity_mismatch_points_at_both_uses() {
        let diags = run_passes("e(a, b).\np(X) :- e(X).\n", None);
        let d = diags.iter().find(|d| d.code == "LNT002").unwrap();
        assert!(d.message.contains("1 arguments, but earlier with 2"), "{}", d.message);
        assert_eq!(d.labels.len(), 2);
        assert!(d.labels[0].primary && !d.labels[1].primary);
    }

    #[test]
    fn undefined_and_unused_predicates_are_flagged() {
        let diags = run_passes("p(X) :- ghost(X).\norphan(a).\n", None);
        assert!(codes(&diags).contains(&"LNT003"), "{diags:?}");
        assert!(codes(&diags).contains(&"LNT004"), "{diags:?}");
        let undef = diags.iter().find(|d| d.code == "LNT003").unwrap();
        assert!(undef.message.contains("`ghost`"));
    }

    #[test]
    fn query_silences_unused_but_enables_unreachable() {
        let src = "e(a, b).\nt(X, Y) :- e(X, Y).\nisland(X) :- e(X, X).\n";
        let with_query = run_passes(src, Some("t(a, Y)?"));
        assert!(codes(&with_query).contains(&"LNT005"), "{with_query:?}");
        assert!(!codes(&with_query).contains(&"LNT004"));
        let d = with_query.iter().find(|d| d.code == "LNT005").unwrap();
        assert!(d.message.contains("`island`"), "{}", d.message);
        let without = run_passes(src, None);
        assert!(!codes(&without).contains(&"LNT005"));
    }

    #[test]
    fn nonlinear_and_mutual_recursion_are_flagged() {
        let diags =
            run_passes("t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(a, b).\n", None);
        let d = diags.iter().find(|d| d.code == "LNT006").unwrap();
        assert!(d.message.contains("occurs 2 times"), "{}", d.message);
        let diags = run_passes(
            "p(X) :- e(X, Y), q(Y).\nq(X) :- f(X, Y), p(Y).\np(X) :- b(X).\n\
             q(X) :- c(X).\nb(a).\nc(a).\ne(a, a).\nf(a, a).\n",
            None,
        );
        let d = diags.iter().find(|d| d.message.contains("mutually recursive")).unwrap();
        assert_eq!(d.code, "LNT006");
        assert!(d.message.contains("`p`") && d.message.contains("`q`"), "{}", d.message);
    }

    #[test]
    fn singleton_variables_respect_underscore_convention() {
        let diags =
            run_passes("p(X) :- e(X, Waste).\np(X) :- f(X, _Ok).\ne(a, b).\nf(a, b).\n", None);
        let singles: Vec<_> = diags.iter().filter(|d| d.code == "LNT007").collect();
        assert_eq!(singles.len(), 1, "{diags:?}");
        assert!(singles[0].message.contains("`Waste`"));
    }

    #[test]
    fn duplicates_cite_the_first_copy() {
        let diags = run_passes("p(X) :- e(X, X).\np(X) :- e(X, X).\ne(a, a).\ne(a, a).\n", None);
        let rule_dup = diags.iter().find(|d| d.code == "LNT008").unwrap();
        assert_eq!(rule_dup.labels.len(), 2);
        let fact_dup = diags.iter().find(|d| d.code == "LNT009").unwrap();
        assert!(fact_dup.message.contains("e(a, a)"), "{}", fact_dup.message);
        // The duplicate is the *second* occurrence; its span differs from
        // the first's even though the rules compare equal.
        assert_ne!(rule_dup.labels[0].span, rule_dup.labels[1].span);
    }

    #[test]
    fn clean_program_produces_no_lints() {
        let diags = run_passes(
            "t(X, Y) :- e(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).\ne(a, b).\ne(b, c).\n",
            Some("t(a, Y)?"),
        );
        let non_note: Vec<_> =
            diags.iter().filter(|d| d.severity != crate::Severity::Note).collect();
        assert!(non_note.is_empty(), "{non_note:?}");
    }
}
