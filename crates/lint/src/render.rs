//! Rendering diagnostics: a rustc-style text renderer with source snippets
//! and carets, and a hand-rolled machine-readable JSON emitter.
//!
//! The JSON emitter is written by hand because the build environment is
//! offline and the workspace deliberately carries no serialization
//! dependency; the schema is small and stable (see `render_json`).

use std::fmt::Write as _;

use sepra_ast::Span;

use crate::diagnostic::{Diagnostic, Label, Severity};
use crate::source::SourceFile;

/// Renders one diagnostic in rustc style:
///
/// ```text
/// warning[SEP001]: shifting variable `Y`: head position 1, body position 0
///   --> examples/datalog/shift.dl:1:23
///    |
///  1 | t(X, Y) :- a(X, W), t(Y, W).
///    |                       ^ bound to argument 0 of the recursive call
///   --> examples/datalog/shift.dl:1:6
///    |
///  1 | t(X, Y) :- a(X, W), t(Y, W).
///    |      - bound to head argument 1
///    = note: condition 1 of Definition 2.4 forbids shifting variables
/// ```
pub fn render_diagnostic_text(diag: &Diagnostic, file: &SourceFile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", diag.severity.as_str(), diag.code, diag.message);

    // Gutter width: digits of the widest line number referenced.
    let width = diag
        .labels
        .iter()
        .filter(|l| !l.span.is_dummy())
        .map(|l| digits(file.line_col(l.span.start as usize).line))
        .max()
        .unwrap_or(1);

    for label in &diag.labels {
        render_label(&mut out, label, file, width);
    }
    for note in &diag.notes {
        let _ = writeln!(out, "{} = note: {}", " ".repeat(width + 1), note);
    }
    out
}

fn render_label(out: &mut String, label: &Label, file: &SourceFile, width: usize) {
    if label.span.is_dummy() {
        // No source location: render the message alone, aligned with notes.
        let _ = writeln!(out, "{} = {}", " ".repeat(width + 1), label.message);
        return;
    }
    let start = label.span.start as usize;
    let lc = file.line_col(start);
    let line = file.line_text(start);
    let _ = writeln!(out, "{}--> {}:{}:{}", " ".repeat(width + 1), file.name, lc.line, lc.col);
    let _ = writeln!(out, "{} |", " ".repeat(width + 1));
    let _ = writeln!(out, " {:>width$} | {}", lc.line, line, width = width);
    // Underline within this line only; a span running past the line end is
    // clamped, and an empty span still gets one marker.
    let col0 = lc.col - 1;
    let len = label.span.len().min(line.len().saturating_sub(col0)).max(1);
    let marker = if label.primary { "^" } else { "-" };
    let _ = writeln!(
        out,
        "{} | {}{}{}",
        " ".repeat(width + 1),
        " ".repeat(col0),
        marker.repeat(len),
        if label.message.is_empty() { String::new() } else { format!(" {}", label.message) },
    );
}

fn digits(n: usize) -> usize {
    n.to_string().len()
}

/// Renders a full report: every diagnostic (blank-line separated) followed
/// by a one-line summary.
pub fn render_report_text(diagnostics: &[Diagnostic], file: &SourceFile) -> String {
    let mut out = String::new();
    for diag in diagnostics {
        out.push_str(&render_diagnostic_text(diag, file));
        out.push('\n');
    }
    out.push_str(&summary_line(diagnostics, file));
    out.push('\n');
    out
}

/// The trailing `file: N errors, M warnings, K notes` line.
pub fn summary_line(diagnostics: &[Diagnostic], file: &SourceFile) -> String {
    if diagnostics.is_empty() {
        return format!("{}: no diagnostics", file.name);
    }
    let count = |sev: Severity| diagnostics.iter().filter(|d| d.severity == sev).count();
    let mut parts = Vec::new();
    for (sev, singular) in
        [(Severity::Error, "error"), (Severity::Warning, "warning"), (Severity::Note, "note")]
    {
        let n = count(sev);
        if n > 0 {
            parts.push(format!("{n} {singular}{}", if n == 1 { "" } else { "s" }));
        }
    }
    format!("{}: {}", file.name, parts.join(", "))
}

/// Renders a full report as pretty-printed JSON.
///
/// Schema (stable; the `lint-examples` CI job diffs this output):
///
/// ```json
/// {
///   "file": "examples/datalog/shift.dl",
///   "diagnostics": [
///     {
///       "code": "SEP001",
///       "severity": "warning",
///       "message": "...",
///       "labels": [
///         { "primary": true, "message": "...",
///           "span": { "start": 22, "end": 23,
///                     "line": 1, "col": 23, "end_line": 1, "end_col": 24 } }
///       ],
///       "notes": ["..."]
///     }
///   ],
///   "summary": { "errors": 0, "warnings": 1, "notes": 0 }
/// }
/// ```
///
/// Spans are byte offsets; `line`/`col` are 1-based. A label with no source
/// location has `"span": null`.
pub fn render_report_json(diagnostics: &[Diagnostic], file: &SourceFile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": {},", json_string(&file.name));
    if diagnostics.is_empty() {
        out.push_str("  \"diagnostics\": [],\n");
    } else {
        out.push_str("  \"diagnostics\": [\n");
        for (i, diag) in diagnostics.iter().enumerate() {
            render_diagnostic_json(&mut out, diag, file);
            out.push_str(if i + 1 < diagnostics.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
    }
    let count = |sev: Severity| diagnostics.iter().filter(|d| d.severity == sev).count();
    let _ = writeln!(
        out,
        "  \"summary\": {{ \"errors\": {}, \"warnings\": {}, \"notes\": {} }}",
        count(Severity::Error),
        count(Severity::Warning),
        count(Severity::Note)
    );
    out.push_str("}\n");
    out
}

fn render_diagnostic_json(out: &mut String, diag: &Diagnostic, file: &SourceFile) {
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"code\": {},", json_string(diag.code));
    let _ = writeln!(out, "      \"severity\": {},", json_string(diag.severity.as_str()));
    let _ = writeln!(out, "      \"message\": {},", json_string(&diag.message));
    if diag.labels.is_empty() {
        out.push_str("      \"labels\": [],\n");
    } else {
        out.push_str("      \"labels\": [\n");
        for (i, label) in diag.labels.iter().enumerate() {
            out.push_str("        { ");
            let _ = write!(
                out,
                "\"primary\": {}, \"message\": {}, \"span\": {}",
                label.primary,
                json_string(&label.message),
                json_span(label.span, file)
            );
            out.push_str(if i + 1 < diag.labels.len() { " },\n" } else { " }\n" });
        }
        out.push_str("      ],\n");
    }
    if diag.notes.is_empty() {
        out.push_str("      \"notes\": []\n");
    } else {
        out.push_str("      \"notes\": [\n");
        for (i, note) in diag.notes.iter().enumerate() {
            let _ = write!(out, "        {}", json_string(note));
            out.push_str(if i + 1 < diag.notes.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
    }
    out.push_str("    }");
}

fn json_span(span: Span, file: &SourceFile) -> String {
    if span.is_dummy() {
        return "null".to_string();
    }
    let start = file.line_col(span.start as usize);
    let end = file.line_col(span.end as usize);
    format!(
        "{{ \"start\": {}, \"end\": {}, \"line\": {}, \"col\": {}, \"end_line\": {}, \"end_col\": {} }}",
        span.start, span.end, start.line, start.col, end.line, end.col
    )
}

/// Escapes a string as a JSON string literal (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (SourceFile, Diagnostic) {
        let file = SourceFile::new("a.dl", "t(X, Y) :- a(X, W), t(Y, W).\n");
        let diag = Diagnostic::warning("SEP001", "shifting variable `Y`")
            .with_label(Span::new(22, 23), "bound to argument 0 of the recursive call")
            .with_secondary(Span::new(5, 6), "bound to head argument 1")
            .with_note("condition 1 of Definition 2.4 forbids shifting variables");
        (file, diag)
    }

    #[test]
    fn text_renderer_draws_carets_under_the_span() {
        let (file, diag) = sample();
        let text = render_diagnostic_text(&diag, &file);
        assert!(text.starts_with("warning[SEP001]: shifting variable `Y`\n"), "{text}");
        assert!(text.contains("--> a.dl:1:23"), "{text}");
        assert!(text.contains(" 1 | t(X, Y) :- a(X, W), t(Y, W)."), "{text}");
        // Caret under byte 22 (column 23) and dash under byte 5 (column 6).
        assert!(text.contains("   |                       ^ bound to argument 0"), "{text}");
        assert!(text.contains("   |      - bound to head argument 1"), "{text}");
        assert!(text.contains("   = note: condition 1"), "{text}");
    }

    #[test]
    fn dummy_span_labels_render_without_snippets() {
        let file = SourceFile::new("a.dl", "p.\n");
        let diag = Diagnostic::error("LNT000", "boom").with_label(Span::DUMMY, "somewhere");
        let text = render_diagnostic_text(&diag, &file);
        assert!(text.contains("  = somewhere"), "{text}");
        assert!(!text.contains("-->"), "{text}");
    }

    #[test]
    fn summary_counts_and_pluralizes() {
        let file = SourceFile::new("a.dl", "");
        assert_eq!(summary_line(&[], &file), "a.dl: no diagnostics");
        let diags = vec![
            Diagnostic::error("LNT001", "x"),
            Diagnostic::warning("LNT007", "y"),
            Diagnostic::warning("LNT007", "z"),
        ];
        assert_eq!(summary_line(&diags, &file), "a.dl: 1 error, 2 warnings");
    }

    #[test]
    fn json_report_has_stable_shape() {
        let (file, diag) = sample();
        let json = render_report_json(&[diag], &file);
        assert!(json.contains("\"file\": \"a.dl\""), "{json}");
        assert!(json.contains("\"code\": \"SEP001\""), "{json}");
        assert!(json.contains("\"severity\": \"warning\""), "{json}");
        assert!(
            json.contains("\"span\": { \"start\": 22, \"end\": 23, \"line\": 1, \"col\": 23,"),
            "{json}"
        );
        assert!(json.contains("\"summary\": { \"errors\": 0, \"warnings\": 1, \"notes\": 0 }"));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
