//! `sepra-lint`: span-tracked static analysis and diagnostics for Datalog
//! programs.
//!
//! This crate is the analysis half of `sepra check` and the REPL's
//! `:lint`. It parses a program *without* hard validation
//! ([`sepra_ast::parse_program_raw`]), runs a registry of lint passes plus
//! the paper's separability detector over it, and renders the findings as
//! rustc-style text snippets or machine-readable JSON:
//!
//! * [`diagnostic`] — the [`Diagnostic`] model: stable codes, severities,
//!   primary/secondary labeled [`Span`](sepra_ast::Span)s, notes;
//! * [`passes`] — the general lints (`LNT001`…`LNT009`): unsafe rules,
//!   arity inconsistencies, undefined/unused predicates, reachability,
//!   non-linear recursion, singleton variables, duplicates;
//! * [`separability`] — `SEP001`…`SEP004`, one per condition of
//!   Definition 2.4, each citing the exact rule and argument positions
//!   that break it, plus `SEP100`/`SEP000` structure notes;
//! * [`boundedness`] — `BND000`…`BND003`, reporting recursions provably
//!   equivalent to a bounded unfolding (which the engine then evaluates
//!   without a fixpoint), citing the condition and rule responsible;
//! * [`stratification`] — `STR000`…`STR002`, validating negation and
//!   aggregate use: a stratum summary when the program stratifies, and
//!   errors citing both ends of the offending cycle when it does not;
//! * [`render`] — the text renderer and the hand-rolled JSON emitter;
//! * [`source`] — [`SourceFile`], mapping byte spans to lines/columns.
//!
//! ```
//! use sepra_lint::check_source;
//!
//! let src = "t(X, Y) :- a(X, Y, W), t(Y, W).\n\
//!            t(X, Y) :- t0(X, Y).\n\
//!            a(m, n, o).\nt0(m, n).\n";
//! let result = check_source("shift.dl", src, None);
//! let sep = result.diagnostics.iter().find(|d| d.code == "SEP001").unwrap();
//! assert!(sep.message.contains("not separable"));
//! assert!(result.render_text().contains("--> shift.dl:1:"));
//! ```

pub mod boundedness;
pub mod diagnostic;
pub mod passes;
pub mod render;
pub mod separability;
pub mod source;
pub mod stratification;

use sepra_ast::{parse_program_raw, parse_query, AstError, Interner, Program, Query, Span};

pub use diagnostic::{Diagnostic, Label, Severity};
pub use passes::{registry, Pass, ProgramContext};
pub use render::{render_diagnostic_text, render_report_json, render_report_text, summary_line};
pub use source::SourceFile;

/// The outcome of checking one source file.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The file that was checked (name + text, for rendering).
    pub file: SourceFile,
    /// The findings, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckResult {
    /// Renders the full report as rustc-style text.
    pub fn render_text(&self) -> String {
        render_report_text(&self.diagnostics, &self.file)
    }

    /// Renders the full report as JSON (see [`render_report_json`] for the
    /// schema).
    pub fn render_json(&self) -> String {
        render_report_json(&self.diagnostics, &self.file)
    }

    /// Number of diagnostics at a given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any error-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether any warning-severity diagnostic was produced.
    pub fn has_warnings(&self) -> bool {
        self.count(Severity::Warning) > 0
    }

    /// The process exit code `sepra check` should use: nonzero on errors,
    /// or on warnings when `deny_warnings` is set.
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        i32::from(self.has_errors() || (deny_warnings && self.has_warnings()))
    }
}

/// Checks a program given as source text, optionally relative to a query
/// (`buys(tom, Y)?` syntax).
///
/// Parse failures yield a single `LNT000` diagnostic carrying the full
/// error span; otherwise every registered pass runs and the results are
/// sorted by source position.
pub fn check_source(name: &str, src: &str, query: Option<&str>) -> CheckResult {
    let file = SourceFile::new(name, src);
    let mut interner = Interner::new();
    let mut diagnostics = Vec::new();
    let program = match parse_program_raw(src, &mut interner) {
        Ok(program) => program,
        Err(e) => {
            diagnostics.push(parse_error_diagnostic(&e));
            return CheckResult { file, diagnostics };
        }
    };
    let query = query.and_then(|q| match parse_query(q, &mut interner) {
        Ok(query) => Some(query),
        Err(e) => {
            diagnostics.push(
                Diagnostic::error("LNT000", format!("invalid query `{q}`: {e}"))
                    .with_note("queries are written `pred(args)?` or `?- pred(args).`"),
            );
            None
        }
    });
    diagnostics.extend(check_program(&program, query.as_ref(), &mut interner));
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    CheckResult { file, diagnostics }
}

/// Runs every registered pass over an already-parsed program. The result
/// is unsorted; [`check_source`] is the usual entry point.
pub fn check_program(
    program: &Program,
    query: Option<&Query>,
    interner: &mut Interner,
) -> Vec<Diagnostic> {
    let ctx = ProgramContext { program, query };
    let mut out = Vec::new();
    for pass in registry() {
        pass.run(&ctx, interner, &mut out);
    }
    out
}

/// Converts a frontend error into an `LNT000` diagnostic with its span.
pub fn parse_error_diagnostic(e: &AstError) -> Diagnostic {
    let message = match e {
        AstError::Parse { msg, .. } => format!("syntax error: {msg}"),
        other => other.to_string(),
    };
    let diag = Diagnostic::error("LNT000", message);
    match e.span() {
        Some(span) => diag.with_label(span, "here"),
        None => diag.with_label(Span::DUMMY, "no source location"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_become_lnt000_with_spans() {
        let result = check_source("bad.dl", "p(X :- q(X).\n", None);
        assert_eq!(result.diagnostics.len(), 1);
        let d = &result.diagnostics[0];
        assert_eq!(d.code, "LNT000");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.primary_span().is_some(), "{d:?}");
        assert_eq!(result.exit_code(false), 1);
        let text = result.render_text();
        assert!(text.contains("--> bad.dl:1:"), "{text}");
        assert!(text.contains('^'), "{text}");
    }

    #[test]
    fn invalid_queries_are_reported_not_fatal() {
        let result = check_source("ok.dl", "e(a, b).\n", Some("e(a,"));
        assert!(result.diagnostics.iter().any(|d| d.code == "LNT000"), "{:?}", result.diagnostics);
        // The program itself is still analyzed (e is defined and... unused).
        assert!(result.diagnostics.iter().any(|d| d.code == "LNT004"));
    }

    #[test]
    fn diagnostics_are_sorted_by_source_position() {
        let src = "p(X) :- e(X, Lone).\nq(Y) :- e(Y, Solo).\ne(a, b).\n";
        let result = check_source("s.dl", src, None);
        let singles: Vec<u32> = result
            .diagnostics
            .iter()
            .filter(|d| d.code == "LNT007")
            .map(|d| d.primary_span().unwrap().start)
            .collect();
        assert_eq!(singles.len(), 2);
        assert!(singles[0] < singles[1]);
    }

    #[test]
    fn exit_code_honours_deny_warnings() {
        let result = check_source("w.dl", "p(X) :- e(X, Lone).\ne(a, b).\n", None);
        assert!(result.has_warnings() && !result.has_errors());
        assert_eq!(result.exit_code(false), 0);
        assert_eq!(result.exit_code(true), 1);
    }

    #[test]
    fn clean_file_renders_no_diagnostics() {
        let result = check_source("c.dl", "e(a, b).\np(X, Y) :- e(X, Y).\n", Some("p(a, Y)?"));
        assert_eq!(result.count(Severity::Error), 0);
        assert_eq!(result.count(Severity::Warning), 0);
        assert!(
            result.render_text().ends_with("c.dl: no diagnostics\n"),
            "{}",
            result.render_text()
        );
    }

    #[test]
    fn json_report_is_emitted_for_errors_too() {
        let result = check_source("bad.dl", "p(X :- q(X).\n", None);
        let json = result.render_json();
        assert!(json.contains("\"code\": \"LNT000\""), "{json}");
        assert!(json.contains("\"summary\": { \"errors\": 1, \"warnings\": 0, \"notes\": 0 }"));
    }
}
