//! A named source file, for mapping byte spans to lines and columns.

use sepra_ast::span::{line_col, line_text};
use sepra_ast::{LineCol, Span};

/// A source file: a display name (usually the path the user passed) plus
/// its full text. All span arithmetic for rendering goes through here.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display name (`examples/datalog/buys.dl`, `<repl>`, …).
    pub name: String,
    /// The complete source text.
    pub text: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile { name: name.into(), text: text.into() }
    }

    /// The 1-based line/column of a byte offset.
    pub fn line_col(&self, offset: usize) -> LineCol {
        line_col(&self.text, offset)
    }

    /// The full text of the line containing a byte offset (no newline).
    pub fn line_text(&self, offset: usize) -> &str {
        line_text(&self.text, offset)
    }

    /// `name:line:col` for the start of a span.
    pub fn locate(&self, span: Span) -> String {
        let lc = self.line_col(span.start as usize);
        format!("{}:{}:{}", self.name, lc.line, lc.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_formats_name_line_col() {
        let f = SourceFile::new("a.dl", "p(x).\nq(y).\n");
        assert_eq!(f.locate(Span::new(6, 7)), "a.dl:2:1");
        assert_eq!(f.line_text(6), "q(y).");
    }
}
