//! Cross-version checkpoint compatibility, pinned by a committed fixture.
//!
//! `fixtures/ckpt-v1.sepra` is a version-1 checkpoint container (row-major
//! body) written by the pre-columnar encoder and committed to the repo.
//! It must keep loading forever: replicas and `sepra restore` meet such
//! files during any rollout, and a decoder change that breaks them is a
//! wire-format regression no round-trip test can catch (round-trips test
//! today's writer against today's reader; the fixture tests *yesterday's*
//! writer).
//!
//! To regenerate after an intentional format change (which must bump the
//! container version, never mutate v1):
//!
//! ```text
//! SEPRA_REGEN_FIXTURES=1 cargo test -p sepra-wal --test format_compat
//! ```

use sepra_storage::Database;
use sepra_wal::checkpoint::{decode_checkpoint, encode_checkpoint};
use sepra_wal::codec;

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/ckpt-v1.sepra");

/// The fixture's facts. Covers symbols (incl. a multi-byte UTF-8 name,
/// inserted directly since the surface syntax is ASCII-only), negative
/// and positive integers, and a zero-arity predicate — every value shape
/// v1 can carry.
const FIXTURE_FACTS: &str = "edge(a, b). edge(b, c). weight(a, 42). weight(b, -7). flag.";
const FIXTURE_GENERATION: u64 = 6;

fn fixture_db() -> Database {
    let mut db = Database::new();
    db.load_fact_text(FIXTURE_FACTS).unwrap();
    db.insert_named("nom", &["émile"]).unwrap();
    db
}

fn fingerprint(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db
        .relations()
        .flat_map(|(p, rel)| {
            let name = db.interner().resolve(p).to_string();
            rel.iter()
                .map(move |t| format!("{name}{}", t.display(db.interner())))
                .collect::<Vec<_>>()
        })
        .collect();
    out.sort();
    out
}

#[test]
fn v1_fixture_still_loads() {
    if std::env::var_os("SEPRA_REGEN_FIXTURES").is_some() {
        let db = fixture_db();
        assert_eq!(db.generation(), FIXTURE_GENERATION);
        let body = codec::encode_database(&db);
        let bytes = encode_checkpoint(db.generation(), &body);
        // The fixture must be a *version-1* container; if this trips, the
        // row-major encoder changed, which is exactly the regression this
        // fixture exists to forbid.
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().unwrap()).unwrap();
        std::fs::write(FIXTURE, &bytes).unwrap();
    }

    let bytes = std::fs::read(FIXTURE).expect(
        "missing fixture; regenerate with SEPRA_REGEN_FIXTURES=1 \
         cargo test -p sepra-wal --test format_compat",
    );
    let (generation, body) =
        decode_checkpoint(&bytes, std::path::Path::new(FIXTURE)).expect("fixture validates");
    assert_eq!(generation, FIXTURE_GENERATION);

    // The format-agnostic snapshot reader (recovery, restore, replica
    // cold-sync) loads the v1 body.
    let mut restored = Database::new();
    let body_generation = codec::decode_snapshot_into(&body, &mut restored).unwrap();
    assert_eq!(body_generation, FIXTURE_GENERATION);
    assert_eq!(fingerprint(&restored), fingerprint(&fixture_db()));

    // And today's row-major writer still produces the fixture bit for
    // bit — the v1 format is frozen, not merely still readable.
    assert_eq!(codec::encode_database(&fixture_db()), body);
}

#[test]
fn v1_and_v2_bodies_describe_the_same_database() {
    let db = fixture_db();
    let mut via_v1 = Database::new();
    codec::decode_snapshot_into(&codec::encode_database(&db), &mut via_v1).unwrap();
    let mut via_v2 = Database::new();
    codec::decode_snapshot_into(&codec::encode_database_columnar(&db), &mut via_v2).unwrap();
    assert_eq!(fingerprint(&via_v1), fingerprint(&via_v2));
    assert_eq!(via_v1.generation(), via_v2.generation());
}
