//! Property tests for the durability layer.
//!
//! Two families:
//!
//! * **Codec round-trips** — arbitrary deltas and databases survive
//!   encode → decode into a *different* interner → re-encode, bit for
//!   bit. This is the property that lets frames cross process
//!   boundaries: interned ids are private, symbol names are not.
//! * **Torn-log recovery** — truncating a WAL file at *any* byte offset
//!   never panics recovery and always yields a prefix of the committed
//!   generations (the crash-recovery invariant, minus the process
//!   boundary, which the server e2e test covers).

use proptest::prelude::*;

use sepra_ast::Interner;
use sepra_storage::{Database, EdbDelta, Tuple, Value};
use sepra_wal::codec::{decode_delta, encode_database, encode_delta};
use sepra_wal::log::{read_records, WalFollower};
use sepra_wal::store::WAL_FILE;
use sepra_wal::{codec, DurableStore, FsyncPolicy, WalWriter};

/// Predicate pool; each predicate's arity is fixed by its index so every
/// generated delta is arity-consistent.
const PREDS: [&str; 5] = ["edge", "node", "weight", "flagged", "p_q"];
/// Symbol pool, including multi-byte UTF-8 to exercise the string table.
const SYMS: [&str; 6] = ["a", "b", "c", "delta", "émile", "x1"];

fn arity_of(pred: usize) -> usize {
    1 + pred % 3
}

/// One generated cell: `(tag, sym index, int)` picks a symbol or integer.
type CellSpec = (u8, usize, i64);
/// One generated fact: predicate index, insert-vs-remove side, cells.
type OpSpec = (usize, u8, Vec<CellSpec>);

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (
        0usize..PREDS.len(),
        0u8..=1,
        proptest::collection::vec((0u8..=1, 0usize..SYMS.len(), -1_000_000i64..=1_000_000), 3),
    )
}

fn build_value(spec: &CellSpec, interner: &mut Interner) -> Value {
    if spec.0 == 0 {
        Value::sym(interner.intern(SYMS[spec.1]))
    } else {
        Value::int(spec.2).expect("generated ints are in range")
    }
}

/// Materializes generated op specs as an [`EdbDelta`] against `interner`.
fn build_delta(ops: &[OpSpec], interner: &mut Interner) -> EdbDelta {
    let mut delta = EdbDelta::default();
    for (pred, side, cells) in ops {
        let sym = interner.intern(PREDS[*pred]);
        let tuple = Tuple::new(
            cells[..arity_of(*pred)]
                .iter()
                .map(|cell| build_value(cell, interner))
                .collect::<Vec<_>>(),
        );
        let bucket = if *side == 0 { &mut delta.insert } else { &mut delta.remove };
        bucket.entry(sym).or_default().push(tuple);
    }
    delta
}

/// Renders a delta as sorted, interner-independent fact strings.
fn delta_fingerprint(delta: &EdbDelta, interner: &Interner) -> Vec<String> {
    let mut out = Vec::new();
    for (section, bucket) in [("+", &delta.insert), ("-", &delta.remove)] {
        for (pred, tuples) in bucket {
            for tuple in tuples {
                out.push(format!(
                    "{section}{}({})",
                    interner.resolve(*pred),
                    tuple
                        .values()
                        .iter()
                        .map(|v| v.display(interner).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
        }
    }
    out.sort();
    out
}

fn db_fingerprint(db: &Database) -> Vec<String> {
    let mut out = Vec::new();
    for (pred, relation) in db.relations() {
        for tuple in relation.iter() {
            out.push(format!(
                "{}({})",
                db.interner().resolve(pred),
                tuple
                    .values()
                    .map(|v| v.display(db.interner()).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
    }
    out.sort();
    out
}

fn scratch_dir(name: &str, case: &[OpSpec], extra: usize) -> std::path::PathBuf {
    // Differentiate per-case so parallel test binaries never collide.
    let tag = case.len() * 31 + extra;
    let dir =
        std::env::temp_dir().join(format!("sepra_wal_prop_{name}_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #[test]
    fn delta_roundtrips_across_interners(ops in proptest::collection::vec(op_strategy(), 0..12)) {
        let mut writer_interner = Interner::new();
        // Pre-intern noise so ids differ between writer and reader.
        writer_interner.intern("noise");
        writer_interner.intern("more_noise");
        let delta = build_delta(&ops, &mut writer_interner);
        let bytes = encode_delta(&delta, &writer_interner);

        let mut reader_interner = Interner::new();
        let decoded = decode_delta(&bytes, &mut reader_interner).expect("valid frame");
        prop_assert_eq!(
            delta_fingerprint(&delta, &writer_interner),
            delta_fingerprint(&decoded, &reader_interner)
        );
        // Re-encoding from the decoder's interner reproduces the bytes:
        // the encoding is canonical, independent of interner history.
        prop_assert_eq!(bytes, encode_delta(&decoded, &reader_interner));
    }

    #[test]
    fn database_frame_roundtrips(ops in proptest::collection::vec(op_strategy(), 0..12)) {
        let mut db = Database::new();
        let mut interner = Interner::new();
        let mut delta = build_delta(&ops, &mut interner);
        delta.remove.clear();
        // Move the delta's symbols into the database's interner by
        // rebuilding against it (cheap: specs are deterministic).
        let delta = {
            let inserts = build_delta(&ops, db.interner_mut());
            EdbDelta { insert: inserts.insert, remove: Default::default() }
        };
        db.apply_delta(&delta).expect("consistent arities by construction");

        let bytes = encode_database(&db);
        let mut restored = Database::new();
        let generation =
            codec::decode_database_into(&bytes, &mut restored).expect("valid frame");
        prop_assert_eq!(generation, db.generation());
        prop_assert_eq!(db_fingerprint(&db), db_fingerprint(&restored));
    }

    #[test]
    fn truncated_wal_recovers_a_generation_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        cut_seed in 0usize..10_000,
    ) {
        // Build a log of one record per op, stamped 1..=n.
        let dir = scratch_dir("torn", &ops, cut_seed);
        let wal = dir.join(WAL_FILE);
        let mut interner = Interner::new();
        let mut committed = Vec::new();
        {
            let mut writer = WalWriter::open(&wal, FsyncPolicy::Never).unwrap();
            for (generation, op) in ops.iter().enumerate() {
                let delta = build_delta(std::slice::from_ref(op), &mut interner);
                writer.append(generation as u64 + 1, &encode_delta(&delta, &interner)).unwrap();
                committed.push(generation as u64 + 1);
            }
        }
        let full_len = std::fs::metadata(&wal).unwrap().len() as usize;

        // Tear the file at an arbitrary offset.
        let cut = cut_seed % (full_len + 1);
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        // Scanning never fails, and yields a prefix of the committed
        // generation sequence.
        let scan = read_records(&wal).expect("torn logs scan, never error");
        let generations: Vec<u64> = scan.records.iter().map(|r| r.generation).collect();
        prop_assert_eq!(&committed[..generations.len()], &generations[..]);
        prop_assert!(scan.valid_len as usize <= cut);

        // Opening the store repairs the tail and recovers the same
        // prefix; every payload still decodes.
        let (_store, recovery) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        let recovered: Vec<u64> = recovery.records.iter().map(|r| r.generation).collect();
        prop_assert_eq!(&generations, &recovered);
        let mut reader = Interner::new();
        for record in &recovery.records {
            prop_assert!(decode_delta(&record.payload, &mut reader).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The log-shipping follower contract under arbitrary interleavings
    /// of appends, checkpoint truncations, and polls: every committed
    /// generation is either delivered by the follower exactly once or
    /// covered by a checkpoint the (modelled) feeder shipped instead —
    /// no loss, no duplication, order preserved. This includes the
    /// truncate-and-regrow race where the file never shrinks between two
    /// polls: the follower's rotation flag alone cannot see it, so the
    /// model, like the real feeder, also watches the newest checkpoint
    /// generation before each poll.
    #[test]
    fn follower_never_loses_or_duplicates_across_rotations(
        steps in proptest::collection::vec((1u8..=3, 1u64..=3), 1..24),
    ) {
        let tag: u64 = steps
            .iter()
            .enumerate()
            .map(|(i, (op, step))| (i as u64 + 1) * (u64::from(*op) * 7 + step))
            .sum();
        let dir = std::env::temp_dir().join(format!(
            "sepra_wal_prop_follow_{}_{}_{tag}",
            std::process::id(),
            steps.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join(WAL_FILE);
        let mut writer = WalWriter::open(&wal, FsyncPolicy::Never).unwrap();

        let mut generation = 0u64; // advances in non-dense steps, like the db's
        let mut appended: Vec<u64> = Vec::new();
        let mut checkpoint_generation = 0u64; // newest snapshot's stamp
        let mut follower = WalFollower::new(&wal, 0);
        let mut delivered: Vec<u64> = Vec::new();
        let mut covered = 0u64; // generations <= covered were shipped via checkpoint

        // The feeder step before each poll: a checkpoint newer than the
        // floor covers every generation up to its stamp.
        fn resolve(follower: &mut WalFollower, covered: &mut u64, checkpoint_generation: u64) {
            if checkpoint_generation > follower.floor() {
                *covered = (*covered).max(checkpoint_generation);
                follower.advance_floor(checkpoint_generation);
            }
        }

        for (op, step) in &steps {
            match op {
                1 => {
                    generation += step;
                    writer.append(generation, b"payload").unwrap();
                    appended.push(generation);
                }
                2 => {
                    // A checkpoint at the current generation truncates
                    // the log (the snapshot covers everything in it).
                    checkpoint_generation = generation;
                    writer.truncate().unwrap();
                }
                _ => {
                    resolve(&mut follower, &mut covered, checkpoint_generation);
                    let poll = follower.poll().unwrap();
                    if !poll.rotated {
                        delivered.extend(poll.records.iter().map(|r| r.generation));
                    }
                }
            }
        }
        // Drain: the follower catches up once writes stop.
        loop {
            resolve(&mut follower, &mut covered, checkpoint_generation);
            let poll = follower.poll().unwrap();
            if poll.rotated {
                continue;
            }
            if poll.records.is_empty() {
                break;
            }
            delivered.extend(poll.records.iter().map(|r| r.generation));
        }

        // Strictly increasing delivery: unique and in commit order.
        prop_assert!(delivered.windows(2).all(|w| w[0] < w[1]), "delivered {delivered:?}");
        // Nothing phantom: everything delivered was committed.
        for g in &delivered {
            prop_assert!(appended.contains(g), "phantom generation {g}");
        }
        // Nothing lost: every commit arrived by log or by checkpoint.
        for g in &appended {
            prop_assert!(
                delivered.contains(g) || *g <= covered,
                "generation {g} lost (delivered {delivered:?}, covered {covered})"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let mut interner = Interner::new();
        let _ = decode_delta(&bytes, &mut interner);
        let mut db = Database::new();
        let _ = codec::decode_database_into(&bytes, &mut db);
        let mut db = Database::new();
        let _ = codec::decode_snapshot_into(&bytes, &mut db);
        // Forcing the columnar path: the same noise behind a valid magic.
        let mut framed = codec::COLUMNAR_MAGIC.to_vec();
        framed.extend_from_slice(&bytes);
        let mut db = Database::new();
        let _ = codec::decode_database_columnar_into(&framed, &mut db);
    }

    /// The columnar frame round-trips arbitrary databases across
    /// interners, and both formats agree on what they carry.
    #[test]
    fn columnar_frame_roundtrips(ops in proptest::collection::vec(op_strategy(), 0..12)) {
        let mut db = Database::new();
        let delta = {
            let inserts = build_delta(&ops, db.interner_mut());
            EdbDelta { insert: inserts.insert, remove: Default::default() }
        };
        db.apply_delta(&delta).expect("consistent arities by construction");

        let bytes = codec::encode_database_columnar(&db);
        // The receiving database has a different symbol space: pre-intern
        // noise so ids cannot accidentally line up.
        let mut restored = Database::new();
        restored.intern("noise");
        restored.intern("émile");
        let generation =
            codec::decode_snapshot_into(&bytes, &mut restored).expect("valid frame");
        prop_assert_eq!(generation, db.generation());
        prop_assert_eq!(db_fingerprint(&db), db_fingerprint(&restored));

        // Canonical: re-encoding the restored database reproduces the
        // frame bit for bit, and the row-major frame carries the same
        // facts.
        prop_assert_eq!(bytes, codec::encode_database_columnar(&restored));
        let mut via_v1 = Database::new();
        codec::decode_snapshot_into(&encode_database(&db), &mut via_v1).expect("valid frame");
        prop_assert_eq!(db_fingerprint(&via_v1), db_fingerprint(&db));
    }

    /// Truncating a columnar frame at *any* offset is an error, never a
    /// panic and never a partially installed EDB — the all-or-none
    /// contract recovery relies on when a checkpoint file is damaged.
    #[test]
    fn truncated_columnar_frames_install_nothing(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        cut_seed in 0usize..10_000,
    ) {
        let mut db = Database::new();
        let delta = {
            let inserts = build_delta(&ops, db.interner_mut());
            EdbDelta { insert: inserts.insert, remove: Default::default() }
        };
        db.apply_delta(&delta).expect("consistent arities by construction");
        let bytes = codec::encode_database_columnar(&db);
        let cut = cut_seed % bytes.len();

        let mut fresh = Database::new();
        prop_assert!(codec::decode_snapshot_into(&bytes[..cut], &mut fresh).is_err());
        prop_assert_eq!(fresh.total_tuples(), 0);
    }
}
