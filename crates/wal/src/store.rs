//! [`DurableStore`]: one data directory, opened for a running server.
//!
//! The directory holds the WAL (`wal.log`) and checkpoint snapshots
//! (`ckpt-<generation>.sepra`). Opening it performs recovery:
//!
//! 1. Load the newest checkpoint that validates (corrupt ones are
//!    skipped, they only cost extra replay).
//! 2. Scan the WAL; a torn or corrupt tail marks the end of the valid
//!    prefix and is truncated.
//! 3. Hand back the checkpoint body plus the WAL records stamped *after*
//!    the checkpoint's generation — the caller decodes and replays them.
//!    Records at or below the checkpoint generation are redundant (a
//!    crash can land between "checkpoint written" and "log truncated")
//!    and are dropped from replay.
//!
//! The store works in encoded bytes, never in [`Database`] values: the
//! caller owns the interner the frames decode into.
//!
//! [`Database`]: sepra_storage::Database

use std::path::{Path, PathBuf};

use crate::checkpoint::{
    checkpoint_file_name, load_newest_checkpoint, prune_checkpoints, write_checkpoint_file,
    LeaseSet,
};
use crate::log::{read_records, repair, WalRecord, WalWriter};
use crate::{FsyncPolicy, WalError};

/// The WAL's filename inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// How many checkpoint generations to retain (newest kept, older pruned).
pub const KEEP_CHECKPOINTS: usize = 2;

/// What recovery found in a data directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Generation of the loaded checkpoint, if one validated.
    pub checkpoint_generation: Option<u64>,
    /// The checkpoint's encoded database frame, if one validated.
    pub checkpoint_body: Option<Vec<u8>>,
    /// WAL records to replay, in commit order, all stamped after the
    /// checkpoint generation.
    pub records: Vec<WalRecord>,
    /// Torn/corrupt WAL tail bytes that were (or would be) truncated.
    pub truncated_bytes: u64,
    /// Checkpoint files skipped because they failed validation.
    pub skipped_checkpoints: usize,
    /// Valid WAL records dropped as already covered by the checkpoint.
    pub stale_records: usize,
}

impl Recovery {
    /// The generation the directory recovers to: the last replayable
    /// record's stamp, else the checkpoint's, else 0 (empty store).
    pub fn recovered_generation(&self) -> u64 {
        self.records.last().map(|r| r.generation).or(self.checkpoint_generation).unwrap_or(0)
    }
}

/// Reads a data directory's recoverable state **without modifying it** —
/// no tail truncation, no lock. Offline tools (`sepra dump`) use this so
/// inspecting a directory can never race or alter a live server's files.
pub fn read_recovery(dir: &Path) -> Result<Recovery, WalError> {
    let mut recovery = Recovery::default();
    if let Some(loaded) = load_newest_checkpoint(dir)? {
        recovery.checkpoint_generation = Some(loaded.generation);
        recovery.checkpoint_body = Some(loaded.body);
        recovery.skipped_checkpoints = loaded.skipped;
    }
    let scan = read_records(&dir.join(WAL_FILE))?;
    recovery.truncated_bytes = scan.torn_bytes;
    let floor = recovery.checkpoint_generation.unwrap_or(0);
    for record in scan.records {
        if record.generation > floor {
            recovery.records.push(record);
        } else {
            recovery.stale_records += 1;
        }
    }
    Ok(recovery)
}

/// An open data directory: appends deltas to the WAL and rolls
/// checkpoints. Construct with [`DurableStore::open`].
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    writer: WalWriter,
    records_since_checkpoint: u64,
    last_checkpoint_generation: u64,
    /// Read-leases sync feeders hold on checkpoint files they are
    /// streaming; [`DurableStore::checkpoint`]'s prune skips them.
    leases: LeaseSet,
}

impl DurableStore {
    /// Opens (creating if needed) a data directory, performs recovery —
    /// including truncating a torn WAL tail — and returns the store ready
    /// for appends alongside what must be replayed.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> Result<(Self, Recovery), WalError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| WalError::io(format!("creating data dir {}", dir.display()), e))?;
        let recovery = read_recovery(dir)?;
        let wal_path = dir.join(WAL_FILE);
        if recovery.truncated_bytes > 0 {
            let scan = read_records(&wal_path)?;
            repair(&wal_path, scan.valid_len)?;
        }
        let writer = WalWriter::open(&wal_path, policy)?;
        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                writer,
                records_since_checkpoint: (recovery.records.len() + recovery.stale_records) as u64,
                last_checkpoint_generation: recovery.checkpoint_generation.unwrap_or(0),
                leases: LeaseSet::new(),
            },
            recovery,
        ))
    }

    /// Appends one encoded delta stamped with the generation its commit
    /// reached. On `Ok` the record is queryable by recovery (and durable
    /// under [`FsyncPolicy::Always`]).
    pub fn append_delta(&mut self, generation: u64, payload: &[u8]) -> Result<(), WalError> {
        self.writer.append(generation, payload)?;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    /// Writes a checkpoint of the encoded database frame at `generation`,
    /// truncates the WAL (its records are now redundant), and prunes old
    /// checkpoints down to [`KEEP_CHECKPOINTS`].
    pub fn checkpoint(&mut self, generation: u64, body: &[u8]) -> Result<(), WalError> {
        let path = self.dir.join(checkpoint_file_name(generation));
        write_checkpoint_file(&path, generation, body)?;
        self.writer.truncate()?;
        self.records_since_checkpoint = 0;
        self.last_checkpoint_generation = generation;
        let _ = prune_checkpoints(&self.dir, KEEP_CHECKPOINTS, &self.leases)?;
        Ok(())
    }

    /// Forces any policy-deferred WAL writes to disk (clean shutdown).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.writer.sync()
    }

    /// Flushes policy-deferred appends if the fsync interval has elapsed
    /// (see [`WalWriter::sync_if_stale`]); a no-op outside
    /// [`FsyncPolicy::Interval`]. A server drives this periodically so the
    /// interval policy's loss window stays bounded when mutations pause.
    pub fn sync_if_stale(&mut self) -> Result<bool, WalError> {
        self.writer.sync_if_stale()
    }

    /// Current WAL file size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Records appended (or recovered) since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.records_since_checkpoint
    }

    /// Generation of the most recent checkpoint (0 if none yet).
    pub fn last_checkpoint_generation(&self) -> u64 {
        self.last_checkpoint_generation
    }

    /// The data directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The WAL file inside the data directory.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// A handle on this store's checkpoint lease table — hand one to each
    /// sync feeder so the leases it takes are the ones
    /// [`DurableStore::checkpoint`] respects.
    pub fn leases(&self) -> LeaseSet {
        self.leases.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sepra_wal_store_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_dir_recovers_empty() {
        let dir = tmp_dir("fresh");
        let (store, recovery) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(recovery.checkpoint_body.is_none());
        assert!(recovery.records.is_empty());
        assert_eq!(recovery.recovered_generation(), 0);
        assert_eq!(store.records_since_checkpoint(), 0);
        assert!(dir.join(WAL_FILE).exists());
    }

    #[test]
    fn appends_recover_in_order() {
        let dir = tmp_dir("appends");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
            store.append_delta(3, b"delta a").unwrap();
            store.append_delta(7, b"delta b").unwrap();
        }
        let (store, recovery) = DurableStore::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovery.recovered_generation(), 7);
        assert_eq!(recovery.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(store.records_since_checkpoint(), 2);
    }

    #[test]
    fn checkpoint_truncates_and_bounds_replay() {
        let dir = tmp_dir("ckpt");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.append_delta(1, b"pre").unwrap();
            store.append_delta(2, b"pre2").unwrap();
            store.checkpoint(2, b"snapshot@2").unwrap();
            assert_eq!(store.records_since_checkpoint(), 0);
            assert_eq!(store.last_checkpoint_generation(), 2);
            store.append_delta(5, b"post").unwrap();
        }
        let (store, recovery) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovery.checkpoint_generation, Some(2));
        assert_eq!(recovery.checkpoint_body.as_deref(), Some(&b"snapshot@2"[..]));
        assert_eq!(recovery.records.iter().map(|r| r.generation).collect::<Vec<_>>(), vec![5]);
        assert_eq!(store.last_checkpoint_generation(), 2);
        assert_eq!(store.records_since_checkpoint(), 1);
    }

    #[test]
    fn checkpoint_roll_spares_snapshots_a_follower_is_streaming() {
        let dir = tmp_dir("leased_roll");
        let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        store.checkpoint(10, b"s10").unwrap();
        // A sync feeder starts streaming the generation-10 snapshot.
        let lease = store.leases().acquire(10);
        // Two newer rolls would normally prune 10 (KEEP_CHECKPOINTS = 2).
        store.checkpoint(20, b"s20").unwrap();
        store.checkpoint(30, b"s30").unwrap();
        let kept: Vec<u64> = crate::checkpoint::list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(kept, vec![10, 20, 30]);
        // Stream done: the next roll reclaims it.
        drop(lease);
        store.checkpoint(40, b"s40").unwrap();
        let kept: Vec<u64> = crate::checkpoint::list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(kept, vec![30, 40]);
    }

    #[test]
    fn crash_between_checkpoint_and_truncate_skips_stale_records() {
        let dir = tmp_dir("stale");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.append_delta(1, b"a").unwrap();
            store.append_delta(2, b"b").unwrap();
        }
        // Simulate: checkpoint file landed but the process died before
        // truncating the WAL.
        write_checkpoint_file(&dir.join(checkpoint_file_name(2)), 2, b"snap").unwrap();
        let (_, recovery) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovery.checkpoint_generation, Some(2));
        assert!(recovery.records.is_empty());
        assert_eq!(recovery.stale_records, 2);
        assert_eq!(recovery.recovered_generation(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_on_open_but_not_by_read_recovery() {
        let dir = tmp_dir("torn");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.append_delta(1, b"whole").unwrap();
            store.append_delta(2, b"gets torn").unwrap();
        }
        let wal = dir.join(WAL_FILE);
        let len = fs::metadata(&wal).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(len - 4).unwrap();
        drop(file);

        // Read-only recovery reports the tear without repairing it.
        let peek = read_recovery(&dir).unwrap();
        assert_eq!(peek.records.len(), 1);
        assert!(peek.truncated_bytes > 0);
        assert_eq!(fs::metadata(&wal).unwrap().len(), len - 4);

        // Opening the store repairs the file.
        let (store, recovery) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovery.records.len(), 1);
        assert_eq!(recovery.recovered_generation(), 1);
        assert_eq!(fs::metadata(&wal).unwrap().len(), store.wal_bytes());
        let clean = read_recovery(&dir).unwrap();
        assert_eq!(clean.truncated_bytes, 0);
    }
}
