//! Checkpoint snapshots: a full EDB image that bounds WAL replay.
//!
//! A checkpoint is one self-validating file, `ckpt-<generation>.sepra`:
//!
//! ```text
//! file := "SPRACKP1" u32 version, u64 generation,
//!         u32 crc32(body), u64 body-len, body
//! ```
//!
//! where `body` is a [`codec`](crate::codec) database frame: container
//! version 1 carries a row-major frame, version 2 a columnar
//! (`SEPRCOL2`) frame. The writer derives the version from the body it
//! is handed, and the version must agree with the body's own magic — so
//! a pre-columnar reader handed a columnar checkpoint fails cleanly on
//! "unsupported checkpoint version" instead of misparsing. Checkpoints
//! are written atomically — build a temp sibling, `fsync` it, rename over
//! the final name, `fsync` the directory — so a crash mid-checkpoint
//! leaves at most a stray `.tmp` file, never a half-written checkpoint
//! under the real name. Recovery walks candidates newest-first and skips
//! any that fail validation, so even a corrupted newest checkpoint only
//! costs extra WAL replay, not the database.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::crc::crc32;
use crate::WalError;

/// The 8-byte checkpoint file magic.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"SPRACKP1";

/// The original container version: the body is a row-major database
/// frame.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Container version 2: the body is a columnar (`SEPRCOL2`) database
/// frame.
pub const CHECKPOINT_VERSION_COLUMNAR: u32 = 2;

/// The container version a body demands, derived from its leading magic.
fn body_version(body: &[u8]) -> u32 {
    if body.len() >= 8 && body[..8] == crate::codec::COLUMNAR_MAGIC {
        CHECKPOINT_VERSION_COLUMNAR
    } else {
        CHECKPOINT_VERSION
    }
}

/// Fixed header size: magic, version, generation, crc, body length.
const HEADER: usize = 8 + 4 + 8 + 4 + 8;

/// The filename for a checkpoint at `generation` (zero-padded so
/// lexicographic order is generation order).
pub fn checkpoint_file_name(generation: u64) -> String {
    format!("ckpt-{generation:020}.sepra")
}

fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".sepra")?.parse().ok()
}

/// Serialises a checkpoint container around an encoded database frame.
/// The container version is derived from the body's format (columnar
/// bodies get version 2), so callers hand over whichever frame they
/// encoded and the container stays honest about it.
pub fn encode_checkpoint(generation: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + body.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&body_version(body).to_le_bytes());
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes a checkpoint atomically: temp sibling, fsync, rename, fsync the
/// directory. `path` should be inside the data directory so the rename
/// stays on one filesystem.
pub fn write_checkpoint_file(path: &Path, generation: u64, body: &[u8]) -> Result<(), WalError> {
    let bytes = encode_checkpoint(generation, body);
    let tmp = path.with_extension("sepra.tmp");
    let io = |context: String, e| WalError::io(context, e);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io(format!("creating {}", tmp.display()), e))?;
        file.write_all(&bytes).map_err(|e| io(format!("writing {}", tmp.display()), e))?;
        file.sync_all().map_err(|e| io(format!("syncing {}", tmp.display()), e))?;
    }
    fs::rename(&tmp, path)
        .map_err(|e| io(format!("renaming {} to {}", tmp.display(), path.display()), e))?;
    // Make the rename itself durable. Directory fsync is a unix-ism;
    // elsewhere the rename's atomicity is the best we can do.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates one checkpoint file, returning its generation and
/// database-frame body. Fails (rather than skipping) so `sepra restore`
/// can tell the user *why* a file is unusable; recovery catches the error
/// and moves to the next candidate.
pub fn read_checkpoint_file(path: &Path) -> Result<(u64, Vec<u8>), WalError> {
    let io = |context: String, e| WalError::io(context, e);
    let mut file = File::open(path).map_err(|e| io(format!("opening {}", path.display()), e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(|e| io(format!("reading {}", path.display()), e))?;
    decode_checkpoint(&bytes, path)
}

/// Validates checkpoint container bytes (see [`read_checkpoint_file`]).
pub fn decode_checkpoint(bytes: &[u8], path: &Path) -> Result<(u64, Vec<u8>), WalError> {
    let corrupt = |what: &str| {
        WalError::io(
            format!("validating {}", path.display()),
            std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string()),
        )
    };
    if bytes.len() < HEADER {
        return Err(corrupt("file shorter than the checkpoint header"));
    }
    if &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(WalError::BadMagic { path: path.display().to_string() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION && version != CHECKPOINT_VERSION_COLUMNAR {
        return Err(corrupt("unsupported checkpoint version"));
    }
    let generation = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let body_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    if body_len != (bytes.len() - HEADER) as u64 {
        return Err(corrupt("body length does not match file size"));
    }
    let body = &bytes[HEADER..];
    if crc32(body) != stored_crc {
        return Err(corrupt("body checksum mismatch"));
    }
    if body_version(body) != version {
        return Err(corrupt("container version does not match body format"));
    }
    Ok((generation, body.to_vec()))
}

/// All checkpoint files in `dir` by name convention, generation-ascending.
/// Contents are *not* validated here.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(WalError::io(format!("listing {}", dir.display()), e)),
    };
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| WalError::io(format!("listing {}", dir.display()), e))?;
        if let Some(generation) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            found.push((generation, entry.path()));
        }
    }
    found.sort();
    Ok(found)
}

/// The newest checkpoint that validates, plus how many newer candidates
/// had to be skipped as corrupt. `Ok(None)` when no usable checkpoint
/// exists (including the empty/missing-dir case).
pub fn load_newest_checkpoint(dir: &Path) -> Result<Option<LoadedCheckpoint>, WalError> {
    let mut skipped = 0;
    for (generation, path) in list_checkpoints(dir)?.into_iter().rev() {
        match read_checkpoint_file(&path) {
            Ok((file_generation, body)) => {
                // Trust the validated header over the filename.
                let _ = generation;
                return Ok(Some(LoadedCheckpoint { generation: file_generation, body, skipped }));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// A successfully loaded checkpoint (see [`load_newest_checkpoint`]).
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The generation the snapshot captures.
    pub generation: u64,
    /// The encoded database frame.
    pub body: Vec<u8>,
    /// Newer checkpoint files skipped because they failed validation.
    pub skipped: usize,
}

/// Shared read-leases on checkpoint generations. A sync feeder streaming
/// a checkpoint file to a follower holds a lease on its generation for
/// the duration of the stream; [`prune_checkpoints`] skips leased files,
/// so a checkpoint roll on the primary can never delete a snapshot out
/// from under a mid-stream follower. Clones share the same lease table.
#[derive(Debug, Clone, Default)]
pub struct LeaseSet {
    held: Arc<Mutex<HashMap<u64, usize>>>,
}

impl LeaseSet {
    /// An empty lease table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a lease on `generation`, released when the returned guard
    /// drops. Leases nest: the generation stays protected until every
    /// holder released.
    pub fn acquire(&self, generation: u64) -> CheckpointLease {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        *held.entry(generation).or_insert(0) += 1;
        CheckpointLease { set: self.clone(), generation }
    }

    /// Whether any lease on `generation` is outstanding.
    pub fn is_leased(&self, generation: u64) -> bool {
        self.held.lock().unwrap_or_else(|e| e.into_inner()).contains_key(&generation)
    }
}

/// An RAII read-lease from [`LeaseSet::acquire`].
#[derive(Debug)]
pub struct CheckpointLease {
    set: LeaseSet,
    generation: u64,
}

impl CheckpointLease {
    /// The generation this lease protects.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

impl Drop for CheckpointLease {
    fn drop(&mut self) {
        let mut held = self.set.held.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = held.get_mut(&self.generation) {
            *count -= 1;
            if *count == 0 {
                held.remove(&self.generation);
            }
        }
    }
}

/// Deletes all but the newest `keep` checkpoints (and any stale `.tmp`
/// leftovers from interrupted writes), skipping generations with an
/// outstanding read-lease in `leases` — a follower may be mid-stream on
/// them; they are reclaimed by the next prune after the lease drops.
/// Returns how many files were removed. Best effort: an unremovable file
/// is left behind, not fatal.
pub fn prune_checkpoints(dir: &Path, keep: usize, leases: &LeaseSet) -> Result<usize, WalError> {
    let mut removed = 0;
    let all = list_checkpoints(dir)?;
    let excess = all.len().saturating_sub(keep);
    for (generation, path) in all.into_iter().take(excess) {
        if leases.is_leased(generation) {
            continue;
        }
        if fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if name.to_str().is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".tmp"))
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sepra_wal_ckpt_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(checkpoint_file_name(42));
        write_checkpoint_file(&path, 42, b"snapshot body bytes").unwrap();
        let (generation, body) = read_checkpoint_file(&path).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(body, b"snapshot body bytes");
        // No temp file left behind.
        assert_eq!(list_checkpoints(&dir).unwrap(), vec![(42, path)]);
    }

    #[test]
    fn newest_valid_wins_and_corrupt_is_skipped() {
        let dir = tmp_dir("skip");
        write_checkpoint_file(&dir.join(checkpoint_file_name(10)), 10, b"old").unwrap();
        write_checkpoint_file(&dir.join(checkpoint_file_name(20)), 20, b"newer").unwrap();
        // Corrupt the newest by flipping a body byte.
        let newest = dir.join(checkpoint_file_name(30));
        write_checkpoint_file(&newest, 30, b"newest").unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let loaded = load_newest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.generation, 20);
        assert_eq!(loaded.body, b"newer");
        assert_eq!(loaded.skipped, 1);
    }

    #[test]
    fn empty_or_missing_dir_yields_none() {
        let dir = tmp_dir("empty");
        assert!(load_newest_checkpoint(&dir).unwrap().is_none());
        let missing = dir.join("does-not-exist");
        assert!(load_newest_checkpoint(&missing).unwrap().is_none());
        assert!(list_checkpoints(&missing).unwrap().is_empty());
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        for generation in [5u64, 15, 25, 35] {
            write_checkpoint_file(&dir.join(checkpoint_file_name(generation)), generation, b"body")
                .unwrap();
        }
        // A stale temp file from a hypothetical crash.
        fs::write(dir.join("ckpt-junk.tmp"), b"partial").unwrap();
        let removed = prune_checkpoints(&dir, 2, &LeaseSet::new()).unwrap();
        assert_eq!(removed, 3); // two old checkpoints + the temp file
        let kept: Vec<u64> = list_checkpoints(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(kept, vec![25, 35]);
    }

    #[test]
    fn prune_skips_leased_checkpoints_until_released() {
        let dir = tmp_dir("lease");
        for generation in [5u64, 15, 25, 35] {
            write_checkpoint_file(&dir.join(checkpoint_file_name(generation)), generation, b"body")
                .unwrap();
        }
        let leases = LeaseSet::new();
        // A follower is mid-stream on the oldest checkpoint when two
        // newer ones make it prunable.
        let guard = leases.acquire(5);
        let inner = leases.acquire(5); // a second follower on the same file
        assert_eq!(prune_checkpoints(&dir, 2, &leases).unwrap(), 1); // only 15 goes
        let kept: Vec<u64> = list_checkpoints(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(kept, vec![5, 25, 35]);
        // One holder releasing is not enough; the generation stays
        // protected until every lease dropped.
        drop(inner);
        assert!(leases.is_leased(5));
        assert_eq!(prune_checkpoints(&dir, 2, &leases).unwrap(), 0);
        drop(guard);
        assert!(!leases.is_leased(5));
        assert_eq!(prune_checkpoints(&dir, 2, &leases).unwrap(), 1);
        let kept: Vec<u64> = list_checkpoints(&dir).unwrap().into_iter().map(|(g, _)| g).collect();
        assert_eq!(kept, vec![25, 35]);
    }

    #[test]
    fn columnar_bodies_get_container_version_2() {
        let dir = tmp_dir("colv2");
        let path = dir.join(checkpoint_file_name(9));
        let mut body = crate::codec::COLUMNAR_MAGIC.to_vec();
        body.extend_from_slice(&[0u8; 24]); // empty columnar frame fields
        write_checkpoint_file(&path, 9, &body).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 2);
        let (generation, read_body) = read_checkpoint_file(&path).unwrap();
        assert_eq!(generation, 9);
        assert_eq!(read_body, body);

        // A container claiming v1 around a columnar body (or vice versa)
        // is rejected rather than misparsed.
        let mut lied = bytes.clone();
        lied[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(decode_checkpoint(&lied, &path).is_err());
        // And an unknown future version fails cleanly.
        let mut future = bytes;
        future[8..12].copy_from_slice(&3u32.to_le_bytes());
        assert!(decode_checkpoint(&future, &path).is_err());
    }

    #[test]
    fn truncated_header_is_invalid_data_not_panic() {
        let dir = tmp_dir("short");
        let path = dir.join(checkpoint_file_name(7));
        write_checkpoint_file(&path, 7, b"whole body").unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 5, 12, 31] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(read_checkpoint_file(&path).is_err(), "cut at {cut} accepted");
        }
    }
}
